//! Swapping the application: the coordination layer is generic.
//!
//! §4.5: "other applications can swap out our domain-specific components
//! in exchange for other suitable components via the same interfaces."
//! This example targets a different (toy) science problem — a
//! two-scale parameter study of damped oscillators — while reusing the
//! whole coordination stack unchanged:
//!
//! - a *different encoder* (plain PCA over trajectory statistics),
//! - a *different selector* (one farthest-point queue instead of five),
//! - *different job classes* and runtimes,
//! - the *same* WorkflowManager, scheduler, data stores, and feedback API.
//!
//! Run with: `cargo run --release --example custom_application`

use mummi::core::{WmConfig, WorkflowManager};
use mummi::datastore::FsStore;
use mummi::dynim::{FarthestPointSampler, FpsConfig, HdPoint, KdTreeNn, Sampler};
use mummi::ml::{Matrix, Pca};
use mummi::resources::{MachineSpec, MatchPolicy, NodeSpec, ResourceGraph};
use mummi::sched::{Costs, Coupling, SchedEngine};
use mummi::simcore::{SimDuration, SimTime};

/// The "coarse model" of this application: a cheap closed-form oscillator
/// x(t) = e^{-γt} cos(ωt), summarized by sampled statistics.
fn oscillator_features(gamma: f64, omega: f64) -> Vec<f64> {
    (0..16)
        .map(|i| {
            let t = i as f64 * 0.5;
            (-gamma * t).exp() * (omega * t).cos()
        })
        .collect()
}

fn main() {
    // Application part 1: generate coarse candidates over parameter space.
    let mut raw: Vec<(String, Vec<f64>)> = Vec::new();
    for gi in 0..20 {
        for wi in 0..20 {
            let gamma = 0.05 + gi as f64 * 0.05;
            let omega = 0.5 + wi as f64 * 0.25;
            raw.push((
                format!("osc-g{gi}-w{wi}"),
                oscillator_features(gamma, omega),
            ));
        }
    }

    // Application part 2: a PCA encoder instead of the membrane DNN.
    let flat: Vec<f64> = raw.iter().flat_map(|(_, f)| f.clone()).collect();
    let pca = Pca::fit(&Matrix::from_vec(raw.len(), 16, flat), 4);
    println!(
        "PCA encoder: 16-D trajectories -> 4-D, explained variance {:?}",
        pca.explained_variance()
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // Application part 3: a single farthest-point queue as the selector.
    let selector: Box<dyn Sampler + Send> = Box::new(FarthestPointSampler::new(
        FpsConfig { cap: 0 },
        KdTreeNn::new(),
    ));
    // The "fine scale" selector is unused by this two-scale study; a
    // second empty queue satisfies the interface.
    let fine_selector: Box<dyn Sampler + Send> = Box::new(FarthestPointSampler::new(
        FpsConfig { cap: 0 },
        KdTreeNn::new(),
    ));

    // The *same* coordination layer, configured for the new study.
    let launcher = SchedEngine::new(
        ResourceGraph::new(MachineSpec::custom("cluster", 4, NodeSpec::lassen())),
        MatchPolicy::FirstMatch,
        Coupling::Asynchronous,
        Costs::free(),
    );
    let mut cfg = WmConfig::test_scale();
    cfg.cg_gpu_fraction = 1.0; // all GPUs to the one simulation scale
    cfg.cg_sim_runtime = SimDuration::from_mins(15);
    cfg.cg_setup_runtime = SimDuration::from_mins(2);
    let poll = cfg.poll_interval;
    let mut wm = WorkflowManager::new(cfg, launcher, selector, fine_selector, 1);

    // Feed candidates through the standard ingestion path.
    let points: Vec<HdPoint> = raw
        .iter()
        .map(|(id, f)| HdPoint::new(id.clone(), pca.transform(f)))
        .collect();
    wm.add_patch_candidates(points);

    // Drive the study; a filesystem store this time (one config switch).
    let dir = std::env::temp_dir().join(format!("custom-app-{}", std::process::id()));
    let mut store = FsStore::open(&dir).expect("store dir");
    let mut t = SimTime::ZERO;
    while t <= SimTime::from_hours(2) {
        wm.tick(t, &mut store);
        t += poll;
    }

    let stats = wm.stats();
    println!("parameter study over 2 virtual hours on 4 Lassen nodes:");
    println!("  candidates ingested : {}", stats.patches_ingested);
    println!("  selected (novel)    : {}", stats.cg_selected);
    println!("  simulations started : {}", stats.cg_sims_started);
    println!("  simulations finished: {}", stats.cg_sims_completed);
    assert!(stats.cg_sims_started > 0);
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "\nsame WorkflowManager, scheduler, and data interfaces — zero coordination-code changes"
    );
}
