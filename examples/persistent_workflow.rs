//! The "Next Leap" (§6): a persistent workflow hopping across clusters.
//!
//! One scientific campaign consumes whatever allocations become available
//! — different sizes, different machines (Summit's 6-GPU nodes, Lassen's
//! 4-GPU nodes) — and its state flows across every hop through the
//! checkpoint mechanism. Node failures are injected along the way; the
//! workflow drains the failed nodes and resubmits the crashed jobs.
//!
//! Run with: `cargo run --release --example persistent_workflow`

use mummi::campaign::{AllocationOffer, CampaignConfig, PersistentCampaign};
use mummi::resources::MatchPolicy;
use mummi::sched::Coupling;

fn main() {
    let cfg = CampaignConfig {
        policy: MatchPolicy::FirstMatch,
        coupling: Coupling::Asynchronous,
        node_failures_per_day: 3.0,
        ..CampaignConfig::default()
    };
    let mut workflow = PersistentCampaign::new(cfg);

    // The offer stream: whatever the centers make available.
    let offers = [
        AllocationOffer::summit(100, 6),
        AllocationOffer::lassen(150, 12),
        AllocationOffer::summit(500, 12),
        AllocationOffer::lassen(64, 6),
        AllocationOffer::summit(1000, 24),
    ];

    println!("hop  cluster  nodes  hours  placed  crashed  meanGPU%  load");
    for (i, offer) in offers.iter().enumerate() {
        let r = workflow.consume(offer);
        println!(
            "{:>3}  {:<7}  {:>5}  {:>5}  {:>6}  {:>7}  {:>7.1}  {}",
            i + 1,
            offer.cluster,
            offer.nodes,
            offer.hours,
            r.placed,
            r.jobs_crashed,
            r.gpu_mean_occupancy,
            r.load_time
                .map(|t| format!("{:.2} h", t.as_hours_f64()))
                .unwrap_or_else(|| "-".into())
        );
    }

    println!("\nper-cluster accounting:");
    for u in workflow.usage() {
        println!(
            "  {:<7} {} allocations, {} node hours",
            u.cluster, u.allocations, u.node_hours
        );
    }
    println!("total: {} node hours", workflow.total_node_hours());

    let total_cg: f64 = workflow.campaign().cg_lengths().iter().sum();
    println!(
        "one campaign, {} CG simulations, {:.1} µs of trajectory — accumulated across clusters",
        workflow.campaign().cg_lengths().len(),
        total_cg
    );
}
