//! The Summit campaign in virtual time: restartable runs at varying scale.
//!
//! Reproduces the paper's §5 operations story on a laptop: a campaign that
//! seamlessly scales allocations up and down, restarts from checkpoints,
//! loads the machine in under an hour when warm, and reports the headline
//! occupancy numbers.
//!
//! Run with: `cargo run --release --example summit_campaign`

use mummi::campaign::{Campaign, CampaignConfig};

fn main() {
    let mut campaign = Campaign::new(CampaignConfig::default());

    // Scale up, down, and back up — "restoring from a 500 node job to
    // start a 1000 node one or vice versa".
    let schedule = [(100u32, 6u64), (500, 12), (1000, 24), (500, 12), (1000, 24)];
    println!("run  nodes  hours  placed  meanGPU%  load-time");
    for (i, &(nodes, hours)) in schedule.iter().enumerate() {
        let r = campaign.execute_run(nodes, hours);
        println!(
            "{:>3}  {:>5}  {:>5}  {:>6}  {:>7.1}  {}",
            i + 1,
            nodes,
            hours,
            r.placed,
            r.gpu_mean_occupancy,
            r.load_time
                .map(|t| format!("{:.2} h", t.as_hours_f64()))
                .unwrap_or_else(|| "-".into())
        );
    }

    let p = campaign.profiler();
    let (mean, median) = p.gpu_mean_median();
    println!("\ncampaign GPU occupancy: mean {mean:.1}%, median {median:.1}%");
    println!(
        "profile events with >=98% GPU occupancy: {:.1}% (paper: >83%)",
        p.fraction_gpu_at_least(98.0) * 100.0
    );
    let (snaps, patches, frames) = campaign.data_counts();
    println!("data produced: {snaps} snapshots, {patches} patches, {frames} frame candidates");
    println!(
        "simulations spawned: {} CG, {} AA",
        campaign.cg_lengths().len(),
        campaign.aa_lengths().len()
    );
    let total_nodeh: u64 = campaign.reports().iter().map(|r| r.node_hours).sum();
    println!("node hours: {total_nodeh}");
}
