//! Quickstart: the MuMMI building blocks in one page.
//!
//! Builds a small CG membrane, runs dynamics with online analysis, encodes
//! configurations, and lets the dynamic-importance sampler pick the most
//! novel one — the heart of the ML-driven scale coupling.
//!
//! Run with: `cargo run --release --example quickstart`

use mummi::cg::analysis::analyze_frame;
use mummi::cg::system::{build_membrane, MembraneConfig};
use mummi::dynim::{ExactNn, FarthestPointSampler, FpsConfig, HdPoint, Sampler};

fn main() {
    // 1. A coarse-grained membrane patch with an embedded protein.
    let mut membrane = build_membrane(&MembraneConfig::small());
    let (e0, e1) = membrane.relax(100);
    println!(
        "built membrane: {} beads, relaxation {e0:.1} -> {e1:.1}",
        membrane.sys.len()
    );

    // 2. Simulate and analyze frames online, like MuMMI's per-sim analysis.
    let mut sampler = FarthestPointSampler::new(FpsConfig::default(), ExactNn::new());
    for frame_idx in 0..20 {
        membrane.run(50);
        let frame = analyze_frame(&membrane, "demo-sim", frame_idx, 16);
        println!(
            "frame {frame_idx:>2}: t={:.2}  conformation={:?}",
            frame.time,
            frame.encoding.map(|v| (v * 100.0).round() / 100.0)
        );
        // 3. Each frame becomes a selection candidate in encoding space.
        sampler.add(HdPoint::new(frame.id.clone(), frame.encoding.to_vec()));
    }

    // 4. Dynamic-importance selection: the most novel configurations are
    //    the ones MuMMI would promote to the finer (AA) scale.
    let picks = sampler.select(3);
    println!("\nmost novel frames (would be promoted to the finer scale):");
    for p in &picks {
        println!("  {}  at {:?}", p.id, p.coords);
    }
    assert_eq!(picks.len(), 3);
}
