//! The full three-scale loop at laptop scale — real physics end to end.
//!
//! This is the paper's Figure 1 pipeline in miniature, with every coupling
//! path exercised by the actual substrates:
//!
//! continuum (DDFT) ─snapshots→ patch creator ─ML encoding→ patch selector
//!   ─createsim→ CG systems ─Martini MD + analysis→ RDFs & frame encodings
//!   ─binned selection→ backmapping → AA systems ─AA MD + secondary
//!   structure→ feedback:
//!     • CG→continuum: aggregated RDFs hot-reload the coupling parameters;
//!     • AA→CG: secondary-structure consensus stiffens the CG protein.
//!
//! The workflow manager coordinates everything through the same scheduler
//! and data-store abstractions the Summit campaign simulator uses.
//!
//! Run with: `cargo run --release --example three_scale_minicampaign`

use std::collections::HashMap;

use mummi::aa::{assign_ss, AaFrame};
use mummi::cg::analysis::analyze_frame;
use mummi::continuum::{ContinuumConfig, ContinuumSim, Patch, PatchConfig};
use mummi::core::app3::{self, EncoderKind};
use mummi::core::{ns, PatchCreator, WmConfig, WmEvent};
use mummi::datastore::{DataStore, KvDataStore};
use mummi::dynim::HdPoint;
use mummi::mapping::{backmap, createsim, BackmapConfig, CreatesimConfig};
use mummi::resources::{MachineSpec, MatchPolicy, NodeSpec, ResourceGraph};
use mummi::sched::{Costs, Coupling, SchedEngine};
use mummi::simcore::SimTime;

fn main() {
    // ---- the macro scale -------------------------------------------------
    let mut continuum = ContinuumSim::new(ContinuumConfig {
        nx: 96,
        ny: 96,
        h: 1.0,
        inner_species: 2,
        outer_species: 1,
        n_proteins: 6,
        ..ContinuumConfig::laptop()
    });
    continuum.run(50);
    let n_species = continuum.config().species();

    // ---- the ML encoder: train on the first snapshot's patches -----------
    let patch_cfg = PatchConfig {
        size_nm: 12.0,
        resolution: 13,
        feature_grid: 3,
    };
    let first = mummi::continuum::extract_patches(&continuum.snapshot(), &patch_cfg);
    let training: Vec<Vec<f64>> = first.iter().map(|p| p.feature_vector(&patch_cfg)).collect();
    let encoder = app3::train_patch_encoder(EncoderKind::Pca, &training, 7);
    let mut patch_creator = PatchCreator::new(patch_cfg, encoder);

    // ---- the coordination layer ------------------------------------------
    let launcher = SchedEngine::new(
        ResourceGraph::new(MachineSpec::custom("laptop", 2, NodeSpec::summit())),
        MatchPolicy::FirstMatch,
        Coupling::Asynchronous,
        Costs::free(),
    );
    let mut wm = app3::build_three_scale_wm(WmConfig::test_scale(), launcher, n_species);
    let mut store = KvDataStore::new(4);

    // Application state the driver owns: live particle systems per sim id.
    let mut patches: HashMap<String, Patch> = HashMap::new();
    let mut cg_systems: HashMap<String, mummi::cg::system::CgSystem> = HashMap::new();
    let mut aa_systems: HashMap<String, mummi::aa::AaSystem> = HashMap::new();
    let mut coupling_updates = 0;
    let mut cg_param_updates = 0;
    let mut frame_counter = 0u64;

    // ---- the campaign loop (virtual time) --------------------------------
    let poll = WmConfig::test_scale().poll_interval;
    let mut t = SimTime::ZERO;
    let end = SimTime::from_hours(3);
    while t <= end {
        // The continuum delivers a snapshot every poll; patches become
        // selection candidates tagged by protein configuration state.
        continuum.run(5);
        let snap = continuum.snapshot();
        let candidates = patch_creator
            .process(&snap, &mut store)
            .expect("patch creation");
        let mut points = Vec::with_capacity(candidates.len());
        for (point, patch) in candidates {
            points.push(app3::state_tagged_point(
                &point.id,
                patch.state,
                point.coords,
            ));
            patches.insert(patch.id.clone(), patch);
        }
        wm.add_patch_candidates(points);

        for event in wm.tick(t, &mut store) {
            match event {
                WmEvent::CgSetupDone { patch_id } => {
                    // createsim: patch -> equilibrated CG system.
                    let patch = patches.get(&*patch_id).expect("selected patch exists");
                    let (cgs, _) = createsim(
                        patch,
                        &CreatesimConfig {
                            side: 12.0,
                            lipids_per_density: 25.0,
                            relax_steps: 30,
                            ..CreatesimConfig::default()
                        },
                    );
                    cg_systems.insert(patch_id.to_string(), cgs);
                }
                WmEvent::CgSimStarted { sim_id, .. } => {
                    // Run the Martini surrogate and publish analyzed frames.
                    let cgs = cg_systems.get_mut(&*sim_id).expect("prepared CG system");
                    let mut frame_points = Vec::new();
                    for burst in 0..3 {
                        cgs.run(150);
                        let frame = analyze_frame(cgs, &sim_id, burst, 16);
                        store
                            .write(ns::RDF_NEW, &frame.id, &frame.encode())
                            .expect("frame write");
                        frame_counter += 1;
                        frame_points.push(HdPoint::new(frame.id.clone(), frame.encoding.to_vec()));
                    }
                    wm.add_frame_candidates(frame_points);
                }
                WmEvent::AaSetupDone { frame_id } => {
                    // backmapping: promote the frame's CG system to AA.
                    let source_sim = frame_id.split(':').next().expect("frame id format");
                    if let Some(cgs) = cg_systems.get(source_sim) {
                        let (aas, _) = backmap(cgs, &BackmapConfig::default());
                        aa_systems.insert(frame_id.to_string(), aas);
                    }
                }
                WmEvent::AaSimStarted { sim_id, .. } => {
                    if let Some(aas) = aa_systems.get_mut(&*sim_id) {
                        aas.run(100);
                        let frame = AaFrame {
                            id: format!("{sim_id}:f0"),
                            time: aas.time(),
                            ss: assign_ss(&aas.backbone_positions()),
                        };
                        store
                            .write(ns::SS_NEW, &frame.id, &frame.encode())
                            .expect("ss write");
                    }
                }
                WmEvent::CouplingUpdated(params) => {
                    // CG→continuum feedback lands in the running macro model.
                    continuum.set_coupling(params);
                    coupling_updates += 1;
                }
                WmEvent::CgParamsUpdated(params) => {
                    // AA→CG feedback stiffens the CG protein bonds.
                    for cgs in cg_systems.values_mut() {
                        for bond in &mut cgs.ff.bonds {
                            bond.2 *= params.bond_k_factor.clamp(1.0, 2.0);
                        }
                    }
                    cg_param_updates += 1;
                }
                _ => {}
            }
        }
        t += poll;
    }

    // ---- summary ----------------------------------------------------------
    let stats = wm.stats();
    println!(
        "three-scale mini-campaign over {:.1} virtual hours:",
        end.as_hours_f64()
    );
    println!("  snapshots processed : {}", patch_creator.snapshots());
    println!("  patches created     : {}", patch_creator.created());
    println!("  patches selected    : {}", stats.cg_selected);
    println!("  CG sims started     : {}", stats.cg_sims_started);
    println!("  CG frames analyzed  : {frame_counter}");
    println!("  frames selected     : {}", stats.aa_selected);
    println!("  AA sims started     : {}", stats.aa_sims_started);
    println!("  feedback iterations : {}", stats.feedback_iterations);
    println!("  coupling updates    : {coupling_updates} (CG→continuum)");
    println!("  CG param updates    : {cg_param_updates} (AA→CG)");
    println!(
        "  continuum coupling now: {:?}",
        continuum.coupling().strength[0]
            .iter()
            .map(|v| (v * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    assert!(stats.cg_sims_started > 0, "CG scale must have run");
    assert!(coupling_updates > 0, "feedback must have closed the loop");
}
