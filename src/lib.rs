//! # mummi-rs
//!
//! A Rust reproduction of *"Generalizable Coordination of Large Multiscale
//! Workflows: Challenges and Learnings at Scale"* (Bhatia et al., SC '21) —
//! the generalized, three-scale MuMMI framework, together with every
//! substrate it runs on.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! | module | role |
//! |---|---|
//! | [`mod@core`] | the workflow manager and coordination APIs |
//! | [`campaign`] | Summit-scale campaign simulator (Table 1, Figs 3–6, 8) |
//! | [`sched`] | Flux-like workload manager (Q/R coupling, FCFS, policies) |
//! | [`resources`] | Summit/Lassen machine topology and resource graph |
//! | [`dynim`] | dynamic-importance sampling (FPS + binned samplers) |
//! | [`ml`] | dense NN + PCA encoders |
//! | [`datastore`] | abstract data interfaces (file / taridx / redis) |
//! | [`taridx`] | indexed tar archives |
//! | [`kvstore`] | sharded in-memory KV store |
//! | [`continuum`] | DDFT macro model (GridSim2D stand-in) |
//! | [`cg`] | Martini-like CG MD engine + analysis (ddcMD stand-in) |
//! | [`aa`] | all-atom MD surrogate + secondary structure (AMBER stand-in) |
//! | [`mapping`] | createsim and backmapping converters |
//! | [`simcore`] | discrete-event kernel, RNG streams, statistics |
//!
//! Start with the `quickstart` example, then `three_scale_minicampaign`
//! for the full coupled loop at laptop scale.

pub use aa;
pub use campaign;
pub use cg;
pub use continuum;
pub use datastore;
pub use dynim;
pub use kvstore;
pub use mapping;
pub use ml;
pub use resources;
pub use sched;
pub use simcore;
pub use taridx;

/// The coordination layer (re-export of the `mummi-core` crate).
pub mod core {
    pub use mummi_core::*;
}
