//! Golden-figure snapshots: the derived Table 1 / Figure 5 / Figure 6
//! series for the `--smoke` campaign schedule, pinned byte-for-byte.
//!
//! The smoke campaign is seeded and byte-deterministic (CI diffs its
//! JSONL trace across runs), so every derived series is too. These tests
//! render each series to a canonical text form and compare it against
//! the committed files under `tests/goldens/` — any engine change that
//! shifts a placement, a profile sample, or a timeline point shows up
//! as a golden diff with the exact rows that moved.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test golden_figures
//! git diff tests/goldens/   # review every changed row, then commit
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use campaign::{Campaign, CampaignConfig};
use trace::{derive, Tracer};

/// The `table1 --smoke` schedule: a two-allocation restart chain at 100
/// nodes — `(nodes, wall-hours, runs)`.
const SMOKE_SCHEDULE: &[(u32, u64, u32)] = &[(100, 4, 1), (100, 2, 1)];

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
}

/// Runs the smoke campaign once with tracing on and renders all golden
/// series from it.
fn render_goldens() -> Vec<(&'static str, String)> {
    let mut c = Campaign::new(CampaignConfig::default());
    c.set_tracer(Tracer::enabled());
    let rows = c.run_table(SMOKE_SCHEDULE);
    let events = c.tracer().events();

    // Table 1 (smoke rows): the schedule table plus the per-run restart
    // detail the binary prints.
    let mut table1 = String::new();
    table1.push_str("# Table 1 (smoke): nodes\twall-hours\truns\tnode-hours\n");
    for (nodes, hours, runs, node_hours) in &rows {
        let _ = writeln!(table1, "{nodes}\t{hours}\t{runs}\t{node_hours}");
    }
    table1.push_str("# per-run: run\tnodes\thours\tplaced\tcompleted\tmeanGPU%\tload-h\n");
    for (i, r) in c.reports().iter().enumerate() {
        let _ = writeln!(
            table1,
            "{}\t{}\t{}\t{}\t{}\t{:.4}\t{}",
            i + 1,
            r.nodes,
            r.hours,
            r.placed,
            r.sims_completed,
            r.gpu_mean_occupancy,
            r.load_time
                .map(|t| format!("{:.4}", t.as_hours_f64()))
                .unwrap_or_else(|| "-".into()),
        );
    }

    // Figure 5: GPU/CPU occupancy per profile event, rebuilt from
    // `wm.profile` trace records.
    let mut fig5 = String::new();
    fig5.push_str("# Fig 5 (smoke): at-us\tgpus-used\tgpus-total\tgpu%\tcpu%\n");
    let profiler = derive::occupancy_profiler(&events);
    for s in profiler.samples() {
        let _ = writeln!(
            fig5,
            "{}\t{}\t{}\t{:.4}\t{:.4}",
            s.at.as_micros(),
            s.gpus_used,
            s.gpus_total,
            s.gpu_pct(),
            s.cpu_pct(),
        );
    }

    // Figure 6: running/pending timelines per job class, rebuilt from
    // `wm.timeline` trace records.
    let mut fig6 = String::new();
    fig6.push_str("# Fig 6 (smoke): class\tat-us\trunning\tpending\n");
    for class in ["cg", "aa"] {
        for p in derive::timeline(&events, class).points() {
            let _ = writeln!(
                fig6,
                "{class}\t{}\t{}\t{}",
                p.at.as_micros(),
                p.running,
                p.pending
            );
        }
    }

    // Scheduler throughput: jobs placed per virtual minute, from
    // `job.placed` records.
    let mut thr = String::new();
    thr.push_str("# jobs placed per virtual minute (smoke)\n");
    for (minute, jobs) in derive::jobs_per_minute(&events) {
        let _ = writeln!(thr, "{minute}\t{jobs}");
    }

    vec![
        ("table1_smoke.txt", table1),
        ("fig5_occupancy_smoke.txt", fig5),
        ("fig6_timeline_smoke.txt", fig6),
        ("throughput_smoke.txt", thr),
    ]
}

#[test]
fn derived_figures_match_goldens() {
    let dir = goldens_dir();
    let update = std::env::var_os("UPDATE_GOLDENS").is_some();
    let mut diffs = Vec::new();
    for (name, rendered) in render_goldens() {
        let path = dir.join(name);
        if update {
            std::fs::create_dir_all(&dir).expect("create goldens dir");
            std::fs::write(&path, &rendered).expect("write golden");
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); run with UPDATE_GOLDENS=1 to create it",
                path.display()
            )
        });
        if want != rendered {
            let first_bad = want
                .lines()
                .zip(rendered.lines())
                .position(|(a, b)| a != b)
                .map(|i| i + 1)
                .unwrap_or_else(|| want.lines().count().min(rendered.lines().count()) + 1);
            diffs.push(format!(
                "{name}: differs from golden (first differing line {first_bad}; golden {} lines, rendered {} lines). \
                 If the change is intentional, regenerate with UPDATE_GOLDENS=1 and review the diff.",
                want.lines().count(),
                rendered.lines().count(),
            ));
        }
    }
    assert!(diffs.is_empty(), "{}", diffs.join("\n"));
}
