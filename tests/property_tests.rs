//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

use mummi::datastore::codec::{Array, Records};
use mummi::kvstore::glob_match;
use mummi::simcore::stats::quantile;
use mummi::simcore::{Histogram, SimDuration, SimTime};
use mummi::taridx::IndexedTar;

// ---------------------------------------------------------------- taridx

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of (key, payload) appends round-trips, with
    /// last-write-wins on duplicate keys — both through the live index and
    /// after a full index recovery from the tar stream.
    #[test]
    fn taridx_appends_roundtrip(
        entries in prop::collection::vec(
            ("[a-z]{1,12}", prop::collection::vec(any::<u8>(), 0..2000)),
            1..25
        )
    ) {
        // Unique per process and per case without ambient randomness
        // (the determinism contract bans unseeded RNG workspace-wide).
        static CASE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "taridx-prop-{}-{:x}",
            std::process::id(),
            CASE.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.tar");
        let mut tar = IndexedTar::create(&path).unwrap();
        let mut expected = std::collections::HashMap::new();
        for (k, v) in &entries {
            tar.append(k, v).unwrap();
            expected.insert(k.clone(), v.clone());
        }
        for (k, v) in &expected {
            prop_assert_eq!(&tar.read(k).unwrap(), v);
        }
        prop_assert_eq!(tar.len(), expected.len());

        // Rebuild the index from the raw stream: same state.
        tar.recover_index().unwrap();
        prop_assert_eq!(tar.len(), expected.len());
        for (k, v) in &expected {
            prop_assert_eq!(&tar.read(k).unwrap(), v);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ------------------------------------------------------------------ glob

/// Reference glob matcher: recursive, obviously correct.
fn glob_ref(p: &[u8], k: &[u8]) -> bool {
    match (p.first(), k.first()) {
        (None, None) => true,
        (Some(b'*'), _) => glob_ref(&p[1..], k) || (!k.is_empty() && glob_ref(p, &k[1..])),
        (Some(b'?'), Some(_)) => glob_ref(&p[1..], &k[1..]),
        (Some(a), Some(b)) if a == b => glob_ref(&p[1..], &k[1..]),
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn glob_matches_reference(pattern in "[ab*?]{0,8}", key in "[ab]{0,10}") {
        prop_assert_eq!(
            glob_match(&pattern, &key),
            glob_ref(pattern.as_bytes(), key.as_bytes()),
            "pattern {:?} key {:?}", pattern, key
        );
    }

    #[test]
    fn glob_star_matches_everything(key in "[a-z:0-9]{0,20}") {
        prop_assert!(glob_match("*", &key));
    }

    #[test]
    fn glob_literal_matches_itself(key in "[a-z]{0,16}") {
        prop_assert!(glob_match(&key, &key));
    }
}

// ----------------------------------------------------------------- codec

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn array_codec_roundtrips(data in prop::collection::vec(-1e12f64..1e12, 0..200)) {
        let a = Array::from_vec(data);
        prop_assert_eq!(Array::decode(&a.encode()).unwrap(), a);
    }

    #[test]
    fn records_codec_roundtrips(
        entries in prop::collection::vec(
            ("[a-z]{1,10}", prop::collection::vec(-1e6f64..1e6, 0..50)),
            0..10
        )
    ) {
        let mut r = Records::new();
        for (name, data) in entries {
            r.insert(&name, Array::from_vec(data));
        }
        prop_assert_eq!(Records::decode(&r.encode()).unwrap(), r);
    }

    /// Truncated encodings never panic — they error.
    #[test]
    fn array_decode_never_panics(
        data in prop::collection::vec(-1e6f64..1e6, 1..50),
        cut_frac in 0.0f64..1.0
    ) {
        let enc = Array::from_vec(data).encode();
        let cut = ((enc.len() as f64) * cut_frac) as usize;
        let _ = Array::decode(&enc[..cut]); // must not panic
    }
}

// ------------------------------------------------------------ statistics

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn histogram_conserves_observations(values in prop::collection::vec(-50.0f64..150.0, 0..300)) {
        let mut h = Histogram::new(0.0, 100.0, 17);
        h.add_all(&values);
        prop_assert_eq!(h.total(), values.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), values.len() as u64);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        mut values in prop::collection::vec(-1e3f64..1e3, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0
    ) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let v_lo = quantile(&values, lo);
        let v_hi = quantile(&values, hi);
        prop_assert!(v_lo <= v_hi);
        prop_assert!(v_lo >= values[0] - 1e-9);
        prop_assert!(v_hi <= values[values.len() - 1] + 1e-9);
    }

    #[test]
    fn sim_time_arithmetic_is_consistent(a in 0u64..1u64 << 40, d in 0u64..1u64 << 40) {
        let t = SimTime::from_micros(a);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((t + dur).since(t), dur);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert!((t + dur) >= t);
    }
}

// ------------------------------------------------------------- selectors

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The farthest-point sampler never duplicates selections and always
    /// drains exactly the candidates it was given.
    #[test]
    fn fps_selects_each_candidate_once(
        coords in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..40)
    ) {
        use mummi::dynim::{ExactNn, FarthestPointSampler, FpsConfig, HdPoint, Sampler};
        let mut s = FarthestPointSampler::new(FpsConfig { cap: 0 }, ExactNn::new());
        for (i, &(x, y)) in coords.iter().enumerate() {
            s.add(HdPoint::new(format!("p{i}"), vec![x, y]));
        }
        let n = coords.len();
        let picked = s.select(n + 5);
        prop_assert_eq!(picked.len(), n);
        let ids: std::collections::HashSet<String> =
            picked.iter().map(|p| p.id.clone()).collect();
        prop_assert_eq!(ids.len(), n, "no duplicate selections");
        prop_assert_eq!(s.candidates(), 0);
    }

    /// The binned sampler conserves candidates across add/select/discard.
    #[test]
    fn binned_sampler_conserves_candidates(
        adds in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 1..60),
        k in 1usize..20
    ) {
        use mummi::dynim::{BinnedConfig, BinnedSampler, HdPoint, Sampler};
        let mut s = BinnedSampler::new(BinnedConfig::cg_frames());
        for (i, &(x, y, z)) in adds.iter().enumerate() {
            s.add(HdPoint::new(format!("f{i}"), vec![x, y, z]));
        }
        let before = s.candidates();
        let picked = s.select(k);
        prop_assert_eq!(picked.len(), k.min(before));
        prop_assert_eq!(s.candidates(), before - picked.len());
    }
}
