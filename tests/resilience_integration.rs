//! Resilience: node failures, job failures, store faults, and
//! checkpoint/restart — §4.4 "Resilience to System Failures".

use mummi::core::{ns, CgToContinuumFeedback, FeedbackManager, WmCheckpoint, WmConfig, WmEvent};
use mummi::datastore::faults::Op;
use mummi::datastore::{DataStore, FailingStore, KvDataStore};
use mummi::dynim::{
    BinnedConfig, BinnedSampler, ExactNn, FarthestPointSampler, FpsConfig, HdPoint,
};
use mummi::resources::{JobShape, MachineSpec, MatchPolicy, NodeSpec, ResourceGraph};
use mummi::sched::{Costs, Coupling, JobClass, JobEvent, JobSpec, Launcher, SchedEngine};
use mummi::simcore::{SimDuration, SimTime};

fn engine(nodes: u32) -> SchedEngine {
    SchedEngine::new(
        ResourceGraph::new(MachineSpec::custom("t", nodes, NodeSpec::summit())),
        MatchPolicy::FirstMatch,
        Coupling::Asynchronous,
        Costs::free(),
    )
}

#[test]
fn drained_node_keeps_running_jobs_but_takes_no_new_work() {
    let mut e = engine(2);
    // Fill node 0 with six sims.
    let mut first_node_jobs = Vec::new();
    for _ in 0..6 {
        first_node_jobs.push(e.submit(
            JobSpec::new(
                JobClass::CgSim,
                JobShape::sim_standard(),
                SimDuration::from_mins(30),
            ),
            SimTime::ZERO,
        ));
    }
    e.advance(SimTime::from_secs(1));
    assert_eq!(e.graph().gpu_usage().0, 6);

    // Node 0 fails: drain it (Flux's response); running jobs continue.
    e.graph_mut().drain(0);
    for _ in 0..6 {
        e.submit(
            JobSpec::new(
                JobClass::CgSim,
                JobShape::sim_standard(),
                SimDuration::from_mins(30),
            ),
            SimTime::from_secs(2),
        );
    }
    e.advance(SimTime::from_secs(3));
    // New jobs all landed on node 1, the old ones still run.
    assert_eq!(e.graph().gpu_usage().0, 12);
    for id in &first_node_jobs {
        assert_eq!(e.state(*id), Some(mummi::sched::JobState::Running));
    }
    // With both nodes saturated and node 0 drained, nothing more places.
    let extra = e.submit(
        JobSpec::new(
            JobClass::CgSim,
            JobShape::sim_standard(),
            SimDuration::from_mins(30),
        ),
        SimTime::from_secs(4),
    );
    e.advance(SimTime::from_secs(5));
    assert_eq!(e.state(extra), Some(mummi::sched::JobState::Queued));
}

#[test]
fn feedback_retries_through_injected_store_faults() {
    // "if reading/writing fails" → armored retries at the workflow level:
    // a fault-injected store fails every 4th read, and the feedback loop
    // simply retries the iteration until the namespace drains.
    let inner = KvDataStore::new(4);
    let mut store = FailingStore::new(inner, Op::Read, 4);
    for i in 0..12 {
        let frame = mummi::cg::analysis::CgFrame {
            id: format!("s:f{i}"),
            time: i as f64,
            encoding: [0.5; 3],
            rdfs: vec![vec![1.0; 8]],
        };
        store
            .write(ns::RDF_NEW, &frame.id, &frame.encode())
            .expect("writes are not injected");
    }
    let mut fb = CgToContinuumFeedback::new(1);
    let mut attempts = 0;
    while store.count(ns::RDF_NEW).expect("count") > 0 {
        attempts += 1;
        // An iteration may fail mid-way; already-processed frames stay
        // moved out (per-frame tagging), so progress is monotonic.
        let _ = fb.iterate(&mut store);
        assert!(attempts < 50, "feedback must make progress");
    }
    assert!(store.injected() > 0, "faults actually fired");
    assert_eq!(fb.total_processed(), 12);
    assert_eq!(store.inner_mut().count(ns::RDF_DONE).expect("count"), 12);
}

#[test]
fn wm_survives_checkpoint_restart_mid_campaign() {
    let build = || {
        let launcher = engine(1);
        mummi::core::WorkflowManager::new(
            WmConfig::test_scale(),
            launcher,
            Box::new(FarthestPointSampler::new(
                FpsConfig { cap: 0 },
                ExactNn::new(),
            )),
            Box::new(BinnedSampler::new(BinnedConfig::cg_frames())),
            2,
        )
    };
    let points: Vec<HdPoint> = (0..40)
        .map(|i| HdPoint::new(format!("p{i}"), vec![i as f64 * 0.37 % 5.0, 0.5]))
        .collect();

    // First incarnation runs half the campaign, then "crashes".
    let mut wm1 = build();
    wm1.add_patch_candidates(points.clone());
    let mut store = KvDataStore::new(4);
    let poll = WmConfig::test_scale().poll_interval;
    let mut t = SimTime::ZERO;
    while t <= SimTime::from_hours(1) {
        wm1.tick(t, &mut store);
        t += poll;
    }
    let ckpt_text = wm1.checkpoint().to_text();
    let stats_before = wm1.stats();
    drop(wm1);

    // Restart: restore the checkpoint into a fresh WM (fresh allocation).
    let parsed = WmCheckpoint::from_text(&ckpt_text).expect("checkpoint parses");
    let mut wm2 = build();
    wm2.restore(&parsed);
    assert_eq!(wm2.stats(), stats_before, "counters survive restart");
    // Selector state (queued candidates and selected set) is rebuilt from
    // the replayed history — no re-ingestion needed.
    assert_eq!(
        wm2.patch_candidates(),
        (40 - stats_before.cg_selected) as usize,
        "unselected candidates reappear after replay"
    );
    let mut t2 = SimTime::ZERO;
    let mut started_after_restart = 0;
    while t2 <= SimTime::from_hours(1) {
        for ev in wm2.tick(t2, &mut store) {
            if matches!(ev, WmEvent::CgSimStarted { .. }) {
                started_after_restart += 1;
            }
        }
        t2 += poll;
    }
    assert!(
        started_after_restart > 0,
        "the restarted WM continues the campaign"
    );
    assert!(wm2.stats().cg_sims_started > stats_before.cg_sims_started);
}

#[test]
fn failed_jobs_are_replayed_to_completion() {
    // High failure rate: every job may fail; the trackers resubmit and the
    // workflow still converges to completed simulations.
    let mut cfg = WmConfig::test_scale();
    cfg.job_failure_prob = 0.4;
    cfg.cg_sim_runtime = SimDuration::from_mins(5);
    cfg.cg_setup_runtime = SimDuration::from_mins(2);
    let launcher = engine(1);
    let mut wm = mummi::core::WorkflowManager::new(
        cfg.clone(),
        launcher,
        Box::new(FarthestPointSampler::new(
            FpsConfig { cap: 0 },
            ExactNn::new(),
        )),
        Box::new(BinnedSampler::new(BinnedConfig::cg_frames())),
        2,
    );
    wm.add_patch_candidates(
        (0..30)
            .map(|i| HdPoint::new(format!("p{i}"), vec![i as f64, 1.0]))
            .collect(),
    );
    let mut store = KvDataStore::new(4);
    let mut t = SimTime::ZERO;
    let mut resubmissions = 0;
    while t <= SimTime::from_hours(4) {
        for ev in wm.tick(t, &mut store) {
            if matches!(ev, WmEvent::JobResubmitted { .. }) {
                resubmissions += 1;
            }
        }
        t += cfg.poll_interval;
    }
    assert!(resubmissions > 3, "failures were injected: {resubmissions}");
    assert!(
        wm.stats().cg_sims_completed > 3,
        "campaign converges despite failures: {:?}",
        wm.stats()
    );
}

#[test]
fn sched_events_are_exactly_once_across_polls() {
    let mut e = engine(1);
    let id = e.submit(
        JobSpec::new(
            JobClass::CgSim,
            JobShape::sim_standard(),
            SimDuration::from_mins(10),
        ),
        SimTime::ZERO,
    );
    let mut placed = 0;
    let mut finished = 0;
    let mut t = SimTime::ZERO;
    for _ in 0..100 {
        for ev in e.poll(t) {
            match ev {
                JobEvent::Placed { id: j, .. } if j == id => placed += 1,
                JobEvent::Finished { id: j, .. } if j == id => finished += 1,
                _ => {}
            }
        }
        t += SimDuration::from_mins(1);
    }
    assert_eq!((placed, finished), (1, 1));
}
