//! End-to-end integration: the three scales coupled through the real
//! coordination stack, with real physics on every path.

use std::collections::HashMap;

use mummi::aa::{assign_ss, AaFrame, SsClass};
use mummi::cg::analysis::analyze_frame;
use mummi::continuum::{ContinuumConfig, ContinuumSim, CouplingParams, Patch, PatchConfig};
use mummi::core::app3::{self, EncoderKind};
use mummi::core::{ns, PatchCreator, WmConfig, WmEvent, WorkflowManager};
use mummi::datastore::{DataStore, KvDataStore};
use mummi::dynim::HdPoint;
use mummi::mapping::{backmap, createsim, BackmapConfig, CreatesimConfig};
use mummi::resources::{MachineSpec, MatchPolicy, NodeSpec, ResourceGraph};
use mummi::sched::{Costs, Coupling, SchedEngine};
use mummi::simcore::SimTime;

fn continuum() -> ContinuumSim {
    ContinuumSim::new(ContinuumConfig {
        nx: 64,
        ny: 64,
        h: 1.0,
        inner_species: 2,
        outer_species: 1,
        n_proteins: 5,
        ..ContinuumConfig::laptop()
    })
}

fn wm(n_species: usize) -> WorkflowManager<SchedEngine> {
    let launcher = SchedEngine::new(
        ResourceGraph::new(MachineSpec::custom("t", 2, NodeSpec::summit())),
        MatchPolicy::FirstMatch,
        Coupling::Asynchronous,
        Costs::free(),
    );
    app3::build_three_scale_wm(WmConfig::test_scale(), launcher, n_species)
}

/// Drives the full pipeline for `hours` of virtual time, running real
/// createsim / CG MD / backmapping / AA MD on the workflow's schedule.
struct MiniCampaign {
    continuum: ContinuumSim,
    wm: WorkflowManager<SchedEngine>,
    store: KvDataStore,
    patch_creator: PatchCreator,
    patches: HashMap<String, Patch>,
    cg_systems: HashMap<String, mummi::cg::system::CgSystem>,
    coupling_updates: Vec<CouplingParams>,
    cg_param_updates: usize,
    aa_started: usize,
}

impl MiniCampaign {
    fn new() -> MiniCampaign {
        let continuum = continuum();
        let n_species = continuum.config().species();
        let patch_cfg = PatchConfig {
            size_nm: 12.0,
            resolution: 13,
            feature_grid: 3,
        };
        let first = mummi::continuum::extract_patches(&continuum.snapshot(), &patch_cfg);
        let training: Vec<Vec<f64>> = first.iter().map(|p| p.feature_vector(&patch_cfg)).collect();
        let encoder = app3::train_patch_encoder(EncoderKind::Pca, &training, 3);
        MiniCampaign {
            wm: wm(n_species),
            continuum,
            store: KvDataStore::new(8),
            patch_creator: PatchCreator::new(patch_cfg, encoder),
            patches: HashMap::new(),
            cg_systems: HashMap::new(),
            coupling_updates: Vec::new(),
            cg_param_updates: 0,
            aa_started: 0,
        }
    }

    fn run(&mut self, hours: u64) {
        let poll = WmConfig::test_scale().poll_interval;
        let mut t = SimTime::ZERO;
        let end = SimTime::from_hours(hours);
        while t <= end {
            self.continuum.run(3);
            let snap = self.continuum.snapshot();
            let cands = self
                .patch_creator
                .process(&snap, &mut self.store)
                .expect("patch creation");
            let mut points = Vec::new();
            for (point, patch) in cands {
                points.push(app3::state_tagged_point(
                    &point.id,
                    patch.state,
                    point.coords,
                ));
                self.patches.insert(patch.id.clone(), patch);
            }
            self.wm.add_patch_candidates(points);

            for ev in self.wm.tick(t, &mut self.store) {
                self.handle(ev);
            }
            t += poll;
        }
    }

    fn handle(&mut self, ev: WmEvent) {
        match ev {
            WmEvent::CgSetupDone { patch_id } => {
                let patch = self.patches.get(&*patch_id).expect("patch exists");
                let (cgs, report) = createsim(
                    patch,
                    &CreatesimConfig {
                        side: 12.0,
                        lipids_per_density: 20.0,
                        relax_steps: 20,
                        ..CreatesimConfig::default()
                    },
                );
                assert!(report.energy_after <= report.energy_before);
                self.cg_systems.insert(patch_id.to_string(), cgs);
            }
            WmEvent::CgSimStarted { sim_id, .. } => {
                let cgs = self.cg_systems.get_mut(&*sim_id).expect("prepared system");
                let mut frame_points = Vec::new();
                for burst in 0..2 {
                    cgs.run(100);
                    let frame = analyze_frame(cgs, &sim_id, burst, 12);
                    self.store
                        .write(ns::RDF_NEW, &frame.id, &frame.encode())
                        .expect("frame write");
                    frame_points.push(HdPoint::new(frame.id.clone(), frame.encoding.to_vec()));
                }
                self.wm.add_frame_candidates(frame_points);
            }
            WmEvent::AaSetupDone { frame_id } => {
                let source = frame_id.split(':').next().expect("id format");
                if let Some(cgs) = self.cg_systems.get(source) {
                    let (mut aas, report) = backmap(cgs, &BackmapConfig::default());
                    assert_eq!(report.n_protein_residues, cgs.protein.len());
                    aas.run(30);
                    let frame = AaFrame {
                        id: format!("{frame_id}:f0"),
                        time: aas.time(),
                        ss: assign_ss(&aas.backbone_positions()),
                    };
                    self.store
                        .write(ns::SS_NEW, &frame.id, &frame.encode())
                        .expect("ss write");
                }
            }
            WmEvent::AaSimStarted { .. } => {
                self.aa_started += 1;
            }
            WmEvent::CouplingUpdated(params) => {
                self.continuum.set_coupling(params.clone());
                self.coupling_updates.push(params);
            }
            WmEvent::CgParamsUpdated(params) => {
                assert!(params.helix_fraction >= 0.0 && params.helix_fraction <= 1.0);
                assert!(!params.consensus.is_empty());
                self.cg_param_updates += 1;
            }
            _ => {}
        }
    }
}

#[test]
fn full_three_scale_loop_closes() {
    let mut mc = MiniCampaign::new();
    mc.run(3);

    let stats = mc.wm.stats();
    assert!(stats.cg_selected >= 5, "patch selection ran: {stats:?}");
    assert!(stats.cg_sims_started >= 5, "CG scale ran: {stats:?}");
    assert!(stats.aa_selected >= 1, "frame selection ran: {stats:?}");
    assert!(mc.aa_started >= 1, "AA scale ran");
    assert!(
        !mc.coupling_updates.is_empty(),
        "CG→continuum feedback closed the loop"
    );
    assert!(mc.cg_param_updates >= 1, "AA→CG feedback closed the loop");

    // Feedback namespaces were drained (tagging by namespace move).
    assert_eq!(mc.store.count(ns::RDF_NEW).unwrap(), 0);
    assert!(mc.store.count(ns::RDF_DONE).unwrap() > 0);

    // The learned coupling is physically sensible: species 0 is the
    // protein-attractive lipid in the CG force field, so the aggregated
    // RDFs must make it the most attractive continuum species.
    let last = mc.coupling_updates.last().unwrap();
    let s0 = last.strength[0][0];
    assert!(s0 < 0.0, "species 0 should attract: {:?}", last.strength);
    assert!(
        (1..3).all(|s| last.strength[0][0] <= last.strength[0][s]),
        "species 0 should be the most attractive: {:?}",
        last.strength
    );
}

#[test]
fn secondary_structure_flows_into_consensus() {
    // The AA→CG payload format survives the store round trip and the
    // consensus operator accepts it.
    let mut store = KvDataStore::new(4);
    use mummi::core::{AaToCgFeedback, FeedbackManager};
    for i in 0..5 {
        let frame = AaFrame {
            id: format!("aa{i}:f0"),
            time: i as f64,
            ss: vec![SsClass::Coil, SsClass::Helix, SsClass::Helix, SsClass::Coil],
        };
        store.write(ns::SS_NEW, &frame.id, &frame.encode()).unwrap();
    }
    let mut fb = AaToCgFeedback::new();
    let out = fb.iterate(&mut store).unwrap();
    assert_eq!(out.processed, 5);
    let report = fb.report().unwrap();
    assert_eq!(report.helix_fraction, 0.5);
}
