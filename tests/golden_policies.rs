//! Golden snapshots of the policy zoo under adversarial workloads: one
//! seeded synthetic mix per queue policy, driven through a bare
//! scheduler engine and rendered to a canonical text form.
//!
//! The generators are seed-stable and cadence-invariant and the engine
//! is a deterministic DES, so every snapshot is byte-reproducible. Any
//! change to a policy's ordering decisions, the backfill reservation
//! arithmetic, or a generator's draw sequence shows up as a golden
//! diff with the exact counters that moved.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test golden_policies
//! git diff tests/goldens/   # review every changed row, then commit
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use resources::{MachineSpec, MatchPolicy, NodeSpec, ResourceGraph};
use sched::{Costs, Coupling, SchedEngine, SchedPolicy};
use simcore::SimTime;
use workload::WorkloadSpec;

/// The adversarial mix each policy is pinned against — the pairing
/// that exercises its distinctive behavior. Wide-starves-narrow shows
/// FCFS's head-of-line starvation and both backfill flavors' fills;
/// bursty stresses fair-share's class balancing under volleys;
/// hetero's shape palette spans both hierarchical children.
const PAIRINGS: &[(SchedPolicy, WorkloadSpec)] = &[
    (SchedPolicy::Fcfs, WorkloadSpec::WideStarvesNarrow),
    (SchedPolicy::BackfillEasy, WorkloadSpec::WideStarvesNarrow),
    (
        SchedPolicy::BackfillConservative,
        WorkloadSpec::WideStarvesNarrow,
    ),
    (SchedPolicy::FairShare, WorkloadSpec::Bursty),
    (SchedPolicy::Hierarchical, WorkloadSpec::Hetero),
];

const NODES: u32 = 72;
const HOURS: u64 = 4;
const SEED: u64 = 2021;

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
}

/// Drives one policy × mix cell exactly like the bench matrix does:
/// submit arrivals as they come due, advance on workload arrivals and
/// virtual-minute boundaries, stop at the horizon.
fn render_cell(policy: SchedPolicy, spec: &WorkloadSpec) -> String {
    let mut engine = SchedEngine::new(
        ResourceGraph::new(MachineSpec::custom("golden", NODES, NodeSpec::summit())),
        MatchPolicy::FirstMatch,
        Coupling::Asynchronous,
        Costs::summit_campaign(),
    );
    engine.set_sched_policy(policy);
    let mut src = spec
        .build(SEED, NODES, HOURS * 180)
        .expect("synthetic mixes never fail to build");
    let end = SimTime::from_hours(HOURS);
    let mut now = SimTime::ZERO;
    loop {
        let minute = SimTime::from_micros((now.as_micros() / 60_000_000 + 1) * 60_000_000);
        let next = match src.next_at() {
            Some(t) if t <= end => t.min(minute),
            _ => minute,
        };
        if next > end {
            break;
        }
        now = next;
        engine.advance(now);
        while let Some(job) = src.pop_due(now) {
            engine.submit(job.spec, job.at);
        }
    }
    engine.advance(end);

    let stats = engine.stats();
    let (running, pending) = engine.totals();
    let (gpus_used, gpus_total) = engine.graph().gpu_usage();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# policy={} workload={} nodes={NODES} hours={HOURS} seed={SEED}",
        policy.name(),
        spec.name()
    );
    let _ = writeln!(
        out,
        "submitted={} placed={} completed={} failed={} canceled={}",
        stats.submitted, stats.placed, stats.completed, stats.failed, stats.canceled
    );
    let _ = writeln!(
        out,
        "match_misses={} backfills={} running={running} pending={pending} gpus={gpus_used}/{gpus_total}",
        stats.match_misses, stats.backfills
    );
    out.push_str("# class\tcount\tmean-wait-us\tmax-wait-us\n");
    for (class, w) in engine.class_waits() {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}",
            class.label(),
            w.count,
            w.mean_us(),
            w.max_us
        );
    }
    out
}

#[test]
fn policy_zoo_adversarial_snapshots() {
    let update = std::env::var_os("UPDATE_GOLDENS").is_some();
    let mut failures = Vec::new();
    for (policy, spec) in PAIRINGS {
        let rendered = render_cell(*policy, spec);
        let path = goldens_dir().join(format!("policy_{}.txt", policy.name()));
        if update {
            std::fs::write(&path, &rendered).expect("write golden");
            continue;
        }
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); run with UPDATE_GOLDENS=1",
                path.display()
            )
        });
        if committed != rendered {
            failures.push(format!(
                "golden mismatch for {}:\n--- committed\n{committed}\n--- rendered\n{rendered}",
                path.display()
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}
