//! Backend interchangeability: the paper's "single configuration switch".
//!
//! The same operation sequence against all three data-store backends must
//! produce the same visible state, and payloads written by one subsystem
//! must decode identically regardless of the backend that carried them.

use mummi::cg::analysis::CgFrame;
use mummi::datastore::{BackendKind, DataStore, FsStore, KvDataStore, TarStore};

fn backends(tag: &str) -> Vec<Box<dyn DataStore>> {
    let base = std::env::temp_dir().join(format!("ds-int-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    vec![
        Box::new(KvDataStore::new(4)),
        Box::new(FsStore::open(base.join("fs")).expect("fs store")),
        Box::new(TarStore::open(base.join("tar")).expect("tar store")),
    ]
}

/// Runs a representative workflow I/O script against a store and returns
/// its observable final state.
fn run_script(store: &mut dyn DataStore) -> (usize, usize, Vec<u8>, bool) {
    for i in 0..20 {
        store
            .write(
                "rdf-new",
                &format!("f{i}"),
                format!("payload-{i}").as_bytes(),
            )
            .expect("write");
    }
    // Overwrite one, delete one, move half to the processed namespace.
    store.write("rdf-new", "f3", b"updated").expect("overwrite");
    store.delete("rdf-new", "f19").expect("delete");
    for i in 0..10 {
        store
            .move_ns(&format!("f{i}"), "rdf-new", "rdf-done")
            .expect("move");
    }
    store.flush().expect("flush");
    let live = store.count("rdf-new").expect("count");
    let done = store.count("rdf-done").expect("count");
    let f3 = store.read("rdf-done", "f3").expect("read moved");
    let f19_gone = !store.exists("rdf-new", "f19");
    (live, done, f3, f19_gone)
}

#[test]
fn all_backends_agree_on_the_same_script() {
    let mut results = Vec::new();
    for mut store in backends("script") {
        let kind = store.kind();
        results.push((kind, run_script(store.as_mut())));
    }
    let reference = &results[0].1;
    for (kind, state) in &results {
        assert_eq!(state, reference, "backend {} diverged", kind.name());
    }
    assert_eq!(reference.0, 9); // 20 - 10 moved - 1 deleted
    assert_eq!(reference.1, 10);
    assert_eq!(reference.2, b"updated");
    assert!(reference.3);
}

#[test]
fn frames_decode_identically_from_every_backend() {
    let frame = CgFrame {
        id: "sim1:f0".into(),
        time: 3.25,
        encoding: [0.1, 0.2, 0.3],
        rdfs: vec![vec![1.0, 2.0, 3.0], vec![0.5; 8]],
    };
    for mut store in backends("frames") {
        store
            .write("frames", &frame.id, &frame.encode())
            .expect("write");
        store.flush().expect("flush");
        let bytes = store.read("frames", &frame.id).expect("read");
        let back = CgFrame::decode(&frame.id, &bytes).expect("decode");
        assert_eq!(back, frame, "backend {}", store.kind().name());
    }
}

#[test]
fn read_many_matches_sequential_reads_on_all_backends() {
    for mut store in backends("readmany") {
        let keys: Vec<String> = (0..15).map(|i| format!("k{i}")).collect();
        for (i, k) in keys.iter().enumerate() {
            store.write("ns", k, &[i as u8; 32]).expect("write");
        }
        let bulk = store.read_many("ns", &keys).expect("bulk");
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(bulk[i], store.read("ns", k).expect("read"));
        }
    }
}

#[test]
fn list_order_is_lexicographic_on_every_backend() {
    // The `DataStore::list` ordering contract: ascending lexicographic,
    // independent of insertion order, shard placement, directory
    // enumeration order, or archive append order. Keys are written in a
    // deliberately shuffled order with shapes that would diverge under
    // numeric or insertion ordering ("f10" < "f2" lexicographically).
    let written = [
        "f10", "f2", "zeta", "alpha", "f1", "mid:sub", "f20", "beta", "f3", "alpha:0",
    ];
    let mut expected: Vec<String> = written.iter().map(|s| s.to_string()).collect();
    expected.sort_unstable();
    for mut store in backends("order") {
        for k in &written {
            store.write("ns", k, k.as_bytes()).expect("write");
        }
        assert_eq!(
            store.list("ns").expect("list"),
            expected,
            "backend {} violated the list ordering contract",
            store.kind().name()
        );
        // Deleting and re-inserting must not disturb the order.
        store.delete("ns", "beta").expect("delete");
        store.write("ns", "beta", b"again").expect("rewrite");
        assert_eq!(store.list("ns").expect("list"), expected);
    }
}

#[test]
fn backend_kinds_are_reported() {
    let kinds: Vec<BackendKind> = backends("kinds").iter().map(|s| s.kind()).collect();
    assert_eq!(
        kinds,
        vec![
            BackendKind::Redis,
            BackendKind::Filesystem,
            BackendKind::Taridx
        ]
    );
}

#[test]
fn tar_backend_archives_are_readable_by_standard_tar_layout() {
    // The taridx backend's files are plain ustar: verify the magic at the
    // canonical offset of the first member.
    let base = std::env::temp_dir().join(format!("ds-ustar-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut store = TarStore::open(&base).expect("tar store");
    store.write("archive", "member", b"data").expect("write");
    store.flush().expect("flush");
    let bytes = std::fs::read(base.join("archive.tar")).expect("raw read");
    assert_eq!(&bytes[257..262], b"ustar");
    std::fs::remove_dir_all(&base).ok();
}
