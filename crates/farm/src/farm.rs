//! The farm core: a shared worker pool running many campaigns at once.
//!
//! # Model
//!
//! A submission is a campaign config plus a *schedule* of allocation legs
//! `(nodes, hours)`. Workers pick one leg at a time — chosen by
//! [fair-share admission](crate::admission) — run it to completion (or to
//! a cooperative pause point), then rejoin the pool. Between legs a
//! campaign's state lives in two places: the warm in-memory [`Campaign`]
//! (kept across legs so traces stay contiguous) and the durable
//! checkpoint text captured at every leg and pause boundary (what
//! survives a worker kill).
//!
//! # Determinism boundary
//!
//! Everything *inside* a leg is the deterministic batch path:
//! [`Campaign::execute_run_controlled_on`] with an idle control handle is
//! byte-identical to [`Campaign::execute_run`] (pinned by test). The
//! async shell only decides *when* and *where* legs run — which worker,
//! in what wall-clock order — never what happens inside one. Per-campaign
//! event sequences are deterministic; the interleaving across campaigns
//! is not, and nothing downstream may depend on it.
//!
//! # Pause-point rule
//!
//! All run control lands on whole virtual hours (see
//! [`campaign::control`]): tenant pauses, rescales, and chaos worker
//! kills all stop a leg exactly the way an end-of-allocation boundary
//! would — partial credit for finished trajectories, in-flight work
//! requeued into the checkpoint, ledger reconciled.
//!
//! # Worker kills
//!
//! A [`WorkerKillPlan`] fires on the farm's logical progress clock
//! (total completed legs). A killed worker's in-memory campaign is
//! discarded — the partial leg's progress is lost, exactly like a real
//! process death — and the campaign requeues from its last durable
//! checkpoint with `recoveries` incremented. The remaining schedule is
//! untouched, so the campaign still completes everything it promised.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex}; // lint: allow(L6: farm service state is shared across OS worker threads by design; determinism lives inside each leg, not in the shell)
use std::thread;

use campaign::{Campaign, RunControl};
use chaos::WorkerKillPlan;
use mummi_core::WmCheckpoint;
use resources::MachineSpec;
use sched::{ClassWait, JobClass};
use simcore::SimTime;
use trace::{Json, Tracer};

use crate::admission::{self, Candidate, TenantLoad};
use crate::proto::SubmitSpec;

/// Where a campaign is in its service lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Waiting for a worker (has runnable legs).
    Queued,
    /// A worker is executing a leg.
    Running {
        /// The executing worker's id.
        worker: usize,
    },
    /// Cooperatively paused; resumes only on a `resume` op.
    Paused,
    /// Every scheduled leg ran to completion.
    Completed,
}

impl EntryState {
    /// Wire name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            EntryState::Queued => "queued",
            EntryState::Running { .. } => "running",
            EntryState::Paused => "paused",
            EntryState::Completed => "completed",
        }
    }
}

/// One entry in a campaign's event log. Sequence numbers are
/// per-campaign and gapless, so a streaming client can resume from any
/// point.
#[derive(Debug, Clone)]
pub struct FarmEvent {
    /// Position in this campaign's log (starts at 0).
    pub seq: u64,
    /// Event kind (`queued`, `leg.start`, `leg.done`, `first_placement`,
    /// `paused`, `resumed`, `rescaled`, `worker.killed`, `completed`).
    pub kind: String,
    /// Kind-specific payload, stable key order.
    pub fields: BTreeMap<String, Json>,
}

impl FarmEvent {
    /// Wire form of the event.
    pub fn to_json(&self) -> String {
        let mut map = self.fields.clone();
        map.insert("seq".to_string(), Json::Num(self.seq as f64));
        map.insert("kind".to_string(), Json::Str(self.kind.clone()));
        Json::Obj(map).to_json()
    }
}

/// A point-in-time snapshot of one campaign, safe to hand out without
/// the farm lock.
#[derive(Debug, Clone)]
pub struct CampaignStatus {
    /// Campaign id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Lifecycle state.
    pub state: EntryState,
    /// Legs in the original submission.
    pub legs_total: u64,
    /// Legs fully completed.
    pub legs_done: u64,
    /// Remaining schedule (front row shrinks across a pause).
    pub remaining: Vec<(u32, u64)>,
    /// Jobs placed, summed over kept legs.
    pub placed: u64,
    /// Simulations completed, summed over kept legs.
    pub sims_completed: u64,
    /// Node-hours consumed by kept legs.
    pub node_hours: u64,
    /// Checkpoint recoveries after worker kills.
    pub recoveries: u64,
    /// True while every kept leg's [`chaos::RunLedger`] reconciled.
    pub ledger_ok: bool,
    /// Whether the campaign records a trace.
    pub traced: bool,
    /// Events logged so far.
    pub events: u64,
    /// Per-class queue-wait aggregates, merged over kept legs (sorted by
    /// class, so the wire form is deterministic).
    pub class_waits: Vec<(JobClass, ClassWait)>,
}

impl CampaignStatus {
    /// True once no further legs will run without operator action.
    pub fn terminal(&self) -> bool {
        self.state == EntryState::Completed
    }
}

/// Farm-wide counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FarmStats {
    /// Campaigns accepted.
    pub submitted: u64,
    /// Campaigns fully completed.
    pub completed: u64,
    /// Legs completed across all campaigns.
    pub legs_completed: u64,
    /// Worker kills fired by the chaos plan.
    pub kills_fired: u64,
    /// Kills that landed on a worker with a leg in flight. Each owes
    /// exactly one checkpoint recovery, so once the farm drains,
    /// `recoveries == kills_mid_leg` (asserted by `farm_bench`).
    pub kills_mid_leg: u64,
    /// Kills that landed on an idle worker (replacement spawned, no
    /// recovery owed).
    pub kills_idle: u64,
    /// Checkpoint recoveries performed.
    pub recoveries: u64,
    /// Workers ever spawned (pool size + replacements).
    pub workers_spawned: u64,
    /// Workers currently alive.
    pub workers_alive: u64,
    /// Per-class queue-wait aggregates merged across every campaign's
    /// kept legs (sorted by class).
    pub class_waits: Vec<(JobClass, ClassWait)>,
}

struct Entry {
    id: u64,
    tenant: String,
    seq: u64,
    spec: SubmitSpec,
    state: EntryState,
    /// Warm campaign; `None` while a worker holds it, after a kill
    /// discarded it, or once the campaign completed.
    campaign: Option<Campaign>,
    /// Durable state at the last leg/pause boundary.
    ckpt_text: Option<String>,
    /// Remaining legs; the front row's hours shrink across a pause.
    remaining: Vec<(u32, u64)>,
    legs_total: u64,
    legs_done: u64,
    placed: u64,
    sims_completed: u64,
    node_hours: u64,
    recoveries: u64,
    ledger_ok: bool,
    class_waits: BTreeMap<JobClass, ClassWait>,
    paused_by_user: bool,
    /// First-leg scheduled pause still pending (virtual hours).
    scheduled_pause: Option<u64>,
    /// Width to apply to remaining legs at the next pause boundary.
    pending_rescale: Option<u32>,
    /// The worker running this entry was killed; discard on settle.
    killed: bool,
    control: RunControl,
    events: Vec<FarmEvent>,
    trace_jsonl: Option<String>,
    first_placement_seen: bool,
}

impl Entry {
    fn push_event(&mut self, kind: &str, fields: &[(&str, Json)]) {
        self.events.push(FarmEvent {
            seq: self.events.len() as u64,
            kind: kind.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        });
    }

    fn status(&self) -> CampaignStatus {
        CampaignStatus {
            id: self.id,
            tenant: self.tenant.clone(),
            state: self.state,
            legs_total: self.legs_total,
            legs_done: self.legs_done,
            remaining: self.remaining.clone(),
            placed: self.placed,
            sims_completed: self.sims_completed,
            node_hours: self.node_hours,
            recoveries: self.recoveries,
            ledger_ok: self.ledger_ok,
            traced: self.spec.trace,
            events: self.events.len() as u64,
            class_waits: self.class_waits.iter().map(|(c, w)| (*c, *w)).collect(),
        }
    }
}

struct WorkerSlot {
    alive: bool,
    running: Option<u64>,
}

struct Inner {
    next_id: u64,
    next_seq: u64,
    entries: BTreeMap<u64, Entry>,
    tenants: BTreeMap<String, TenantLoad>,
    workers: BTreeMap<usize, WorkerSlot>,
    next_worker: usize,
    kill_plan: WorkerKillPlan,
    /// Cursor into the sorted kill plan (plan kills only).
    kills_fired: usize,
    /// Kills requested through [`Farm::kill_worker`].
    admin_kills: u64,
    /// Kills (plan or admin) that landed on a worker mid-leg — each one
    /// discards an in-flight leg and owes exactly one checkpoint
    /// recovery.
    kills_mid_leg: u64,
    /// Kills that landed on an idle worker — the worker dies and is
    /// replaced, but no leg was in flight so no recovery follows.
    kills_idle: u64,
    legs_completed: u64,
    shutdown: bool,
}

struct FarmState {
    inner: Mutex<Inner>, // lint: allow(L6: the service queue is the one intentionally shared structure; all campaign state transitions happen under this single lock)
    /// Wakes idle workers when work becomes runnable.
    work_cv: Condvar,
    /// Wakes status/stream waiters when any campaign changes.
    event_cv: Condvar,
    threads: Mutex<Vec<thread::JoinHandle<()>>>, // lint: allow(L6: join-handle parking lot for graceful shutdown; never touched on the leg execution path)
}

/// A handle to a running farm. Cheap to clone; the farm lives until
/// [`Farm::shutdown`].
#[derive(Clone)]
pub struct Farm {
    state: Arc<FarmState>,
}

/// What a worker takes out of the queue: everything needed to run one
/// leg without the farm lock.
struct Assignment {
    entry_id: u64,
    campaign: Campaign,
    nodes: u32,
    hours: u64,
    control: RunControl,
}

impl Farm {
    /// Starts a farm with `workers` pool threads and an optional chaos
    /// kill plan (pass [`WorkerKillPlan::empty`] for none).
    pub fn new(workers: usize, kill_plan: WorkerKillPlan) -> Farm {
        let inner = Inner {
            next_id: 1,
            next_seq: 0,
            entries: BTreeMap::new(),
            tenants: BTreeMap::new(),
            workers: BTreeMap::new(),
            next_worker: 0,
            kill_plan,
            kills_fired: 0,
            admin_kills: 0,
            kills_mid_leg: 0,
            kills_idle: 0,
            legs_completed: 0,
            shutdown: false,
        };
        let state = Arc::new(FarmState {
            inner: Mutex::new(inner), // lint: allow(L6: constructing the one shared service structure)
            work_cv: Condvar::new(),
            event_cv: Condvar::new(),
            threads: Mutex::new(Vec::new()), // lint: allow(L6: join-handle parking lot, shutdown only)
        });
        let farm = Farm { state };
        {
            let mut inner = farm.state.inner.lock().unwrap();
            for _ in 0..workers.max(1) {
                let idx = inner.next_worker;
                inner.next_worker += 1;
                inner.workers.insert(
                    idx,
                    WorkerSlot {
                        alive: true,
                        running: None,
                    },
                );
                spawn_worker(Arc::clone(&farm.state), idx);
            }
        }
        farm
    }

    /// Accepts a campaign, or explains why not. The spec's config must
    /// already validate (wire decoding guarantees it; in-process callers
    /// get the same check here).
    pub fn submit(&self, spec: SubmitSpec) -> Result<u64, String> {
        spec.cfg
            .validate()
            .map_err(|e| format!("invalid config: {e}"))?;
        if spec.schedule.is_empty() {
            return Err("schedule must contain at least one leg".to_string());
        }
        let mut inner = self.state.inner.lock().unwrap();
        if inner.shutdown {
            return Err("farm is shut down".to_string());
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let mut entry = Entry {
            id,
            tenant: spec.tenant.clone(),
            seq,
            state: EntryState::Queued,
            campaign: None,
            ckpt_text: None,
            remaining: spec.schedule.clone(),
            legs_total: spec.schedule.len() as u64,
            legs_done: 0,
            placed: 0,
            sims_completed: 0,
            node_hours: 0,
            recoveries: 0,
            ledger_ok: true,
            class_waits: BTreeMap::new(),
            paused_by_user: false,
            scheduled_pause: spec.pause_at_hours,
            pending_rescale: None,
            killed: false,
            control: RunControl::new(),
            events: Vec::new(),
            trace_jsonl: None,
            first_placement_seen: false,
            spec,
        };
        entry.push_event("queued", &[("legs", Json::Num(entry.legs_total as f64))]);
        inner.entries.insert(id, entry);
        self.state.work_cv.notify_all();
        self.state.event_cv.notify_all();
        Ok(id)
    }

    /// Snapshot of one campaign.
    pub fn status(&self, id: u64) -> Option<CampaignStatus> {
        let inner = self.state.inner.lock().unwrap();
        inner.entries.get(&id).map(Entry::status)
    }

    /// Snapshots of every campaign, in id order.
    pub fn list(&self) -> Vec<CampaignStatus> {
        let inner = self.state.inner.lock().unwrap();
        inner.entries.values().map(Entry::status).collect()
    }

    /// Requests a cooperative pause. A running leg stops at the next
    /// whole virtual hour; a queued campaign pauses immediately.
    pub fn pause(&self, id: u64) -> Result<(), String> {
        let mut inner = self.state.inner.lock().unwrap();
        let entry = inner.entries.get_mut(&id).ok_or("no such campaign")?;
        match entry.state {
            EntryState::Completed => Err("campaign already completed".to_string()),
            EntryState::Paused => Ok(()),
            EntryState::Running { .. } => {
                entry.paused_by_user = true;
                entry.control.request_pause();
                Ok(())
            }
            EntryState::Queued => {
                entry.paused_by_user = true;
                entry.state = EntryState::Paused;
                entry.push_event("paused", &[("while", Json::Str("queued".into()))]);
                self.state.event_cv.notify_all();
                Ok(())
            }
        }
    }

    /// Resumes a paused campaign, optionally rewriting the width of
    /// every remaining leg (scale-up/down across the pause).
    pub fn resume(&self, id: u64, nodes: Option<u32>) -> Result<(), String> {
        let mut inner = self.state.inner.lock().unwrap();
        if inner.shutdown {
            return Err("farm is shut down".to_string());
        }
        let entry = inner.entries.get_mut(&id).ok_or("no such campaign")?;
        if entry.state != EntryState::Paused {
            return Err(format!("campaign is {}, not paused", entry.state.name()));
        }
        if let Some(n) = nodes {
            if n == 0 {
                return Err("nodes must be >= 1".to_string());
            }
            for row in &mut entry.remaining {
                row.0 = n;
            }
        }
        entry.paused_by_user = false;
        entry.control.clear_pause();
        entry.state = EntryState::Queued;
        let width = nodes.map(|n| Json::Num(n as f64)).unwrap_or(Json::Null);
        entry.push_event("resumed", &[("nodes", width)]);
        self.state.work_cv.notify_all();
        self.state.event_cv.notify_all();
        Ok(())
    }

    /// Rewrites the width of the remaining legs mid-flight. A running
    /// leg is paused at the next whole hour and automatically requeued
    /// at the new width; queued/paused campaigns change immediately.
    pub fn rescale(&self, id: u64, nodes: u32) -> Result<(), String> {
        if nodes == 0 {
            return Err("nodes must be >= 1".to_string());
        }
        let mut inner = self.state.inner.lock().unwrap();
        let entry = inner.entries.get_mut(&id).ok_or("no such campaign")?;
        match entry.state {
            EntryState::Completed => Err("campaign already completed".to_string()),
            EntryState::Running { .. } => {
                entry.pending_rescale = Some(nodes);
                entry.control.request_pause();
                Ok(())
            }
            EntryState::Queued | EntryState::Paused => {
                for row in &mut entry.remaining {
                    row.0 = nodes;
                }
                entry.push_event("rescaled", &[("nodes", Json::Num(nodes as f64))]);
                self.state.event_cv.notify_all();
                Ok(())
            }
        }
    }

    /// Events from sequence `from`, plus whether the campaign is
    /// terminal. Non-blocking.
    pub fn events_since(&self, id: u64, from: u64) -> Option<(Vec<FarmEvent>, bool)> {
        let inner = self.state.inner.lock().unwrap();
        inner.entries.get(&id).map(|e| {
            let from = (from as usize).min(e.events.len());
            (e.events[from..].to_vec(), e.state == EntryState::Completed)
        })
    }

    /// Blocks until the campaign has events past `from`, is terminal, or
    /// the farm shuts down; then returns the new events and terminality.
    pub fn wait_events(&self, id: u64, from: u64) -> Result<(Vec<FarmEvent>, bool), String> {
        let mut inner = self.state.inner.lock().unwrap();
        loop {
            let entry = inner.entries.get(&id).ok_or("no such campaign")?;
            let terminal = entry.state == EntryState::Completed;
            if (from as usize) < entry.events.len() || terminal || inner.shutdown {
                let from = (from as usize).min(entry.events.len());
                return Ok((entry.events[from..].to_vec(), terminal));
            }
            inner = self.state.event_cv.wait(inner).unwrap();
        }
    }

    /// Blocks until `pred` holds for the campaign's status (or the farm
    /// shuts down), then returns the status.
    pub fn wait_until(
        &self,
        id: u64,
        pred: impl Fn(&CampaignStatus) -> bool,
    ) -> Result<CampaignStatus, String> {
        let mut inner = self.state.inner.lock().unwrap();
        loop {
            let status = inner.entries.get(&id).ok_or("no such campaign")?.status();
            if pred(&status) || inner.shutdown {
                return Ok(status);
            }
            inner = self.state.event_cv.wait(inner).unwrap();
        }
    }

    /// The completed campaign's JSONL trace.
    pub fn trace_jsonl(&self, id: u64) -> Result<String, String> {
        let inner = self.state.inner.lock().unwrap();
        let entry = inner.entries.get(&id).ok_or("no such campaign")?;
        if entry.state != EntryState::Completed {
            return Err(format!("campaign is {}, not completed", entry.state.name()));
        }
        entry
            .trace_jsonl
            .clone()
            .ok_or("campaign was not submitted with trace: true".to_string())
    }

    /// Farm-wide counters.
    pub fn stats(&self) -> FarmStats {
        let inner = self.state.inner.lock().unwrap();
        let mut class_waits: BTreeMap<JobClass, ClassWait> = BTreeMap::new();
        for entry in inner.entries.values() {
            for (class, wait) in &entry.class_waits {
                let agg = class_waits.entry(*class).or_default();
                agg.count += wait.count;
                agg.sum_us += wait.sum_us;
                agg.max_us = agg.max_us.max(wait.max_us);
            }
        }
        FarmStats {
            submitted: inner.next_id - 1,
            completed: inner
                .entries
                .values()
                .filter(|e| e.state == EntryState::Completed)
                .count() as u64,
            legs_completed: inner.legs_completed,
            kills_fired: inner.kills_fired as u64 + inner.admin_kills,
            kills_mid_leg: inner.kills_mid_leg,
            kills_idle: inner.kills_idle,
            recoveries: inner.entries.values().map(|e| e.recoveries).sum(),
            workers_spawned: inner.next_worker as u64,
            workers_alive: inner.workers.values().filter(|w| w.alive).count() as u64,
            class_waits: class_waits.into_iter().collect(),
        }
    }

    /// Kills worker `worker` at its next cooperative point — the admin
    /// form of what a [`WorkerKillPlan`] does on its own clock. If the
    /// worker is mid-leg, the leg stops at the next whole hour and its
    /// partial progress is discarded; a replacement worker is spawned
    /// either way.
    pub fn kill_worker(&self, worker: usize) -> Result<(), String> {
        let mut inner = self.state.inner.lock().unwrap();
        if !inner.workers.get(&worker).is_some_and(|w| w.alive) {
            return Err(format!("no live worker {worker}"));
        }
        inner.admin_kills += 1;
        kill_victim(&mut inner, &self.state, worker);
        self.state.work_cv.notify_all();
        Ok(())
    }

    /// True once [`Farm::shutdown`] ran.
    pub fn is_shutdown(&self) -> bool {
        self.state.inner.lock().unwrap().shutdown
    }

    /// Stops accepting work, asks running legs to pause at the next
    /// whole hour, and joins every worker. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut inner = self.state.inner.lock().unwrap();
            if inner.shutdown {
                return;
            }
            inner.shutdown = true;
            for entry in inner.entries.values() {
                if matches!(entry.state, EntryState::Running { .. }) {
                    entry.control.request_pause();
                }
            }
            self.state.work_cv.notify_all();
            self.state.event_cv.notify_all();
        }
        loop {
            let handles: Vec<_> = self.state.threads.lock().unwrap().drain(..).collect();
            if handles.is_empty() {
                return;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

fn spawn_worker(state: Arc<FarmState>, me: usize) {
    let for_thread = Arc::clone(&state);
    let handle = thread::spawn(move || worker_main(for_thread, me));
    state.threads.lock().unwrap().push(handle);
}

fn worker_main(state: Arc<FarmState>, me: usize) {
    loop {
        let assignment = {
            let mut inner = state.inner.lock().unwrap();
            loop {
                if inner.shutdown || !inner.workers[&me].alive {
                    let slot = inner.workers.get_mut(&me).expect("worker slot exists");
                    slot.alive = false;
                    state.event_cv.notify_all();
                    return;
                }
                if let Some(a) = claim_next(&mut inner, me) {
                    // The Queued -> Running transition and its leg.start
                    // event must wake status waiters and stream readers.
                    state.event_cv.notify_all();
                    break a;
                }
                inner = state.work_cv.wait(inner).unwrap();
            }
        };
        let Assignment {
            entry_id,
            mut campaign,
            nodes,
            hours,
            control,
        } = assignment;
        let report = campaign.execute_run_controlled_on(
            MachineSpec::summit_allocation(nodes),
            hours,
            &control,
        );
        settle(&state, me, entry_id, campaign, report);
    }
}

/// Picks the next runnable leg for worker `me` and marks it running.
/// Returns `None` when nothing is runnable.
fn claim_next(inner: &mut Inner, me: usize) -> Option<Assignment> {
    let candidates: Vec<Candidate> = inner
        .entries
        .values()
        .filter(|e| e.state == EntryState::Queued && !e.remaining.is_empty())
        .map(|e| Candidate {
            id: e.id,
            tenant: e.tenant.clone(),
            seq: e.seq,
        })
        .collect();
    let tenants = &inner.tenants;
    let id = admission::pick(&candidates, |t| tenants.get(t).copied().unwrap_or_default())?;
    let entry = inner.entries.get_mut(&id).expect("picked entry exists");
    let (nodes, hours) = entry.remaining[0];
    entry.state = EntryState::Running { worker: me };
    // Re-arm the control for this leg: clear any stale pause, then apply
    // the still-pending scheduled drain window (first-leg virtual clock).
    entry.control.clear_pause();
    if let Some(h) = entry.scheduled_pause {
        entry.control.schedule_pause_at(SimTime::from_hours(h));
    }
    let campaign = match entry.campaign.take() {
        Some(c) => c,
        None => {
            // Cold start (first leg) or post-kill recovery: rebuild from
            // config and the last durable checkpoint.
            let mut c = Campaign::new(entry.spec.cfg.clone());
            if entry.spec.trace {
                c.set_tracer(Tracer::enabled());
            }
            if let Some(text) = &entry.ckpt_text {
                if let Ok(ckpt) = WmCheckpoint::from_text(text) {
                    c.restore_checkpoint(ckpt);
                }
            }
            c
        }
    };
    entry.push_event(
        "leg.start",
        &[
            ("leg", Json::Num(entry.legs_done as f64)),
            ("nodes", Json::Num(nodes as f64)),
            ("hours", Json::Num(hours as f64)),
            ("worker", Json::Num(me as f64)),
        ],
    );
    let control = entry.control.clone();
    inner
        .tenants
        .entry(entry.tenant.clone())
        .or_default()
        .running += 1;
    inner
        .workers
        .get_mut(&me)
        .expect("claiming worker exists")
        .running = Some(id);
    Some(Assignment {
        entry_id: id,
        campaign,
        nodes,
        hours,
        control,
    })
}

/// Books a finished (or paused, or killed) leg back into the farm.
fn settle(
    state: &Arc<FarmState>,
    me: usize,
    id: u64,
    campaign: Campaign,
    report: campaign::RunReport,
) {
    let mut inner = state.inner.lock().unwrap();
    inner
        .workers
        .get_mut(&me)
        .expect("settling worker exists")
        .running = None;
    let tenant = inner.entries[&id].tenant.clone();
    {
        let load = inner.tenants.entry(tenant).or_default();
        load.running = load.running.saturating_sub(1);
        load.node_hours += report.node_hours;
    }
    let entry = inner.entries.get_mut(&id).expect("settling entry exists");

    if entry.killed {
        // The worker died mid-leg: the in-memory campaign is gone with
        // it. Partial progress is discarded — the campaign requeues from
        // its last durable checkpoint, remaining schedule untouched.
        drop(campaign);
        entry.killed = false;
        entry.recoveries += 1;
        entry.control.clear_pause();
        entry.state = if entry.paused_by_user {
            EntryState::Paused
        } else {
            EntryState::Queued
        };
        entry.push_event(
            "worker.killed",
            &[
                ("worker", Json::Num(me as f64)),
                ("recoveries", Json::Num(entry.recoveries as f64)),
            ],
        );
        state.work_cv.notify_all();
        state.event_cv.notify_all();
        return;
    }

    // Kept leg (full or partial): book its results and its checkpoint.
    entry.placed += report.placed;
    entry.sims_completed += report.sims_completed;
    entry.node_hours += report.node_hours;
    for (class, wait) in &report.class_waits {
        let agg = entry.class_waits.entry(*class).or_default();
        agg.count += wait.count;
        agg.sum_us += wait.sum_us;
        agg.max_us = agg.max_us.max(wait.max_us);
    }
    if !report.ledger.check().is_empty() {
        entry.ledger_ok = false;
    }
    entry.ckpt_text = campaign.checkpoint_text();
    if !entry.first_placement_seen && entry.placed > 0 {
        entry.first_placement_seen = true;
        entry.push_event(
            "first_placement",
            &[("placed", Json::Num(entry.placed as f64))],
        );
    }

    match report.paused_at {
        None => {
            // Full leg. The scheduled drain window, if any, never fired
            // inside this leg — it is spent.
            entry.scheduled_pause = None;
            entry.remaining.remove(0);
            entry.legs_done += 1;
            entry.push_event(
                "leg.done",
                &[
                    ("leg", Json::Num((entry.legs_done - 1) as f64)),
                    ("placed", Json::Num(entry.placed as f64)),
                    ("sims_completed", Json::Num(entry.sims_completed as f64)),
                ],
            );
            if entry.remaining.is_empty() {
                entry.state = EntryState::Completed;
                if entry.spec.trace {
                    entry.trace_jsonl = Some(campaign.tracer().to_jsonl());
                }
                entry.push_event(
                    "completed",
                    &[
                        ("legs", Json::Num(entry.legs_done as f64)),
                        ("node_hours", Json::Num(entry.node_hours as f64)),
                    ],
                );
            } else {
                entry.campaign = Some(campaign);
                entry.state = if entry.paused_by_user {
                    EntryState::Paused
                } else {
                    EntryState::Queued
                };
                if entry.state == EntryState::Paused {
                    entry.push_event("paused", &[("at_leg_boundary", Json::Bool(true))]);
                }
            }
            inner.legs_completed += 1;
            fire_due_kills(&mut inner, state);
        }
        Some(at) => {
            // Partial leg: shrink the front row by the executed hours and
            // decide why we stopped, in precedence order.
            let executed = report.hours;
            entry.remaining[0].1 -= executed;
            entry.campaign = Some(campaign);
            let at_hours = Json::Num(at.as_hours_f64());
            if entry.paused_by_user {
                entry.state = EntryState::Paused;
                entry.push_event("paused", &[("at_hours", at_hours)]);
            } else if entry.scheduled_pause.is_some() {
                entry.scheduled_pause = None;
                entry.state = EntryState::Paused;
                entry.push_event(
                    "paused",
                    &[("at_hours", at_hours), ("scheduled", Json::Bool(true))],
                );
            } else if let Some(n) = entry.pending_rescale.take() {
                for row in &mut entry.remaining {
                    row.0 = n;
                }
                entry.state = EntryState::Queued;
                entry.push_event(
                    "rescaled",
                    &[("at_hours", at_hours), ("nodes", Json::Num(n as f64))],
                );
            } else {
                // Shutdown drain (or a pause whose reason was cleared):
                // leave the campaign queued and resumable.
                entry.state = EntryState::Queued;
            }
        }
    }
    state.work_cv.notify_all();
    state.event_cv.notify_all();
}

/// Fires every kill the plan says is due at the current progress count.
/// Victims running a leg get the killed flag plus a pause request (the
/// kill lands at the leg's next cooperative point); idle victims just
/// die. Every kill spawns a replacement worker.
fn fire_due_kills(inner: &mut Inner, state: &Arc<FarmState>) {
    loop {
        let due = inner.kill_plan.due(inner.legs_completed, inner.kills_fired);
        let Some(kill) = due.first().copied() else {
            return;
        };
        inner.kills_fired += 1;
        if inner.shutdown {
            continue; // plan exhausted against a draining farm
        }
        // Prefer workers with a leg actually in flight: the plan exists
        // to exercise the discard-and-recover path, and a kill that
        // lands on an idle worker tests nothing but the respawn. Only
        // when every live worker is idle does the kill fall through to
        // the full pool.
        let busy: Vec<usize> = inner
            .workers
            .iter()
            .filter(|(_, slot)| slot.alive && slot.running.is_some())
            .map(|(idx, _)| *idx)
            .collect();
        let pool: Vec<usize> = if busy.is_empty() {
            inner
                .workers
                .iter()
                .filter(|(_, slot)| slot.alive)
                .map(|(idx, _)| *idx)
                .collect()
        } else {
            busy
        };
        if pool.is_empty() {
            continue;
        }
        let victim = pool[kill.worker % pool.len()];
        kill_victim(inner, state, victim);
        state.work_cv.notify_all();
    }
}

/// Marks `victim` dead, flags its in-flight leg (if any) for discard,
/// and spawns a replacement worker.
fn kill_victim(inner: &mut Inner, state: &Arc<FarmState>, victim: usize) {
    let slot = inner.workers.get_mut(&victim).expect("victim slot exists");
    slot.alive = false;
    if let Some(entry_id) = slot.running {
        inner.kills_mid_leg += 1;
        let entry = inner
            .entries
            .get_mut(&entry_id)
            .expect("victim's entry exists");
        entry.killed = true;
        entry.control.request_pause();
    } else {
        inner.kills_idle += 1;
    }
    let idx = inner.next_worker;
    inner.next_worker += 1;
    inner.workers.insert(
        idx,
        WorkerSlot {
            alive: true,
            running: None,
        },
    );
    spawn_worker(Arc::clone(state), idx);
}
