//! JSON-lines-over-TCP front end for a [`Farm`].
//!
//! One request object per line, one response object per line — except
//! the `stream` op, which writes an `{"event": ...}` line per farm event
//! as they happen and finishes with `{"done": true, "ok": true}` once
//! the campaign is terminal. Connections are handled thread-per-client
//! (the workspace is std-only by design; the farm's concurrency budget
//! is the worker pool, not the listener).
//!
//! Shutdown: the wire `shutdown` op (or [`FarmServer::stop`]) drains the
//! farm, then pokes the listener with a throwaway connection so the
//! accept loop observes the flag and exits.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;

use trace::Json;

use crate::farm::{CampaignStatus, Farm, FarmStats};
use crate::proto::{err_response, ok_response, Request};

/// A listening farm front end.
pub struct FarmServer {
    farm: Farm,
    addr: SocketAddr,
    accept_thread: Option<thread::JoinHandle<()>>,
}

/// Wire form of a campaign status.
pub fn status_json(s: &CampaignStatus) -> Json {
    let mut map = std::collections::BTreeMap::new();
    map.insert("id".into(), Json::Num(s.id as f64));
    map.insert("tenant".into(), Json::Str(s.tenant.clone()));
    map.insert("state".into(), Json::Str(s.state.name().into()));
    map.insert("legs_total".into(), Json::Num(s.legs_total as f64));
    map.insert("legs_done".into(), Json::Num(s.legs_done as f64));
    map.insert(
        "remaining".into(),
        Json::Arr(
            s.remaining
                .iter()
                .map(|(n, h)| Json::Arr(vec![Json::Num(*n as f64), Json::Num(*h as f64)]))
                .collect(),
        ),
    );
    map.insert("placed".into(), Json::Num(s.placed as f64));
    map.insert("sims_completed".into(), Json::Num(s.sims_completed as f64));
    map.insert("node_hours".into(), Json::Num(s.node_hours as f64));
    map.insert("recoveries".into(), Json::Num(s.recoveries as f64));
    map.insert("ledger_ok".into(), Json::Bool(s.ledger_ok));
    map.insert("traced".into(), Json::Bool(s.traced));
    map.insert("events".into(), Json::Num(s.events as f64));
    let mut waits = std::collections::BTreeMap::new();
    for (class, w) in &s.class_waits {
        let mut row = std::collections::BTreeMap::new();
        row.insert("count".into(), Json::Num(w.count as f64));
        row.insert("mean_wait_us".into(), Json::Num(w.mean_us() as f64));
        row.insert("max_wait_us".into(), Json::Num(w.max_us as f64));
        waits.insert(class.label().to_string(), Json::Obj(row));
    }
    map.insert("class_waits".into(), Json::Obj(waits));
    Json::Obj(map)
}

fn stats_json(s: &FarmStats) -> Json {
    let mut map = std::collections::BTreeMap::new();
    map.insert("submitted".into(), Json::Num(s.submitted as f64));
    map.insert("completed".into(), Json::Num(s.completed as f64));
    map.insert("legs_completed".into(), Json::Num(s.legs_completed as f64));
    map.insert("kills_fired".into(), Json::Num(s.kills_fired as f64));
    map.insert("kills_mid_leg".into(), Json::Num(s.kills_mid_leg as f64));
    map.insert("kills_idle".into(), Json::Num(s.kills_idle as f64));
    map.insert("recoveries".into(), Json::Num(s.recoveries as f64));
    map.insert(
        "workers_spawned".into(),
        Json::Num(s.workers_spawned as f64),
    );
    map.insert("workers_alive".into(), Json::Num(s.workers_alive as f64));
    let mut waits = std::collections::BTreeMap::new();
    for (class, w) in &s.class_waits {
        let mut row = std::collections::BTreeMap::new();
        row.insert("count".into(), Json::Num(w.count as f64));
        row.insert("mean_wait_us".into(), Json::Num(w.mean_us() as f64));
        row.insert("max_wait_us".into(), Json::Num(w.max_us as f64));
        waits.insert(class.label().to_string(), Json::Obj(row));
    }
    map.insert("class_waits".into(), Json::Obj(waits));
    Json::Obj(map)
}

impl FarmServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections against `farm`.
    pub fn start(farm: Farm, addr: &str) -> std::io::Result<FarmServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let accept_farm = farm.clone();
        let accept_thread = thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_farm.is_shutdown() {
                    return;
                }
                let Ok(stream) = conn else { continue };
                let conn_farm = accept_farm.clone();
                let local = local;
                thread::spawn(move || {
                    let _ = handle_connection(conn_farm, stream, local);
                });
            }
        });
        Ok(FarmServer {
            farm,
            addr: local,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shuts the farm down and stops the accept loop.
    pub fn stop(mut self) {
        self.farm.shutdown();
        poke(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Wakes a blocked `accept` so it can observe the shutdown flag.
fn poke(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

fn handle_connection(farm: Farm, stream: TcpStream, local: SocketAddr) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::decode(line.trim()) {
            Err(e) => err_response(&e),
            Ok(Request::Stream(id, from)) => {
                stream_events(&farm, &mut writer, id, from)?;
                continue;
            }
            Ok(req) => respond(&farm, req),
        };
        writeln!(writer, "{response}")?;
        writer.flush()?;
        if line.contains("\"shutdown\"") && farm.is_shutdown() {
            poke(local);
            return Ok(());
        }
    }
}

fn stream_events(
    farm: &Farm,
    writer: &mut TcpStream,
    id: u64,
    mut from: u64,
) -> std::io::Result<()> {
    loop {
        match farm.wait_events(id, from) {
            Err(e) => {
                writeln!(writer, "{}", err_response(&e))?;
                writer.flush()?;
                return Ok(());
            }
            Ok((events, terminal)) => {
                for ev in &events {
                    writeln!(writer, "{{\"event\": {}}}", ev.to_json())?;
                }
                from += events.len() as u64;
                if terminal {
                    writeln!(writer, "{}", ok_response(&[("done", Json::Bool(true))]))?;
                    writer.flush()?;
                    return Ok(());
                }
                if farm.is_shutdown() {
                    writeln!(writer, "{}", err_response("farm is shut down"))?;
                    writer.flush()?;
                    return Ok(());
                }
                writer.flush()?;
            }
        }
    }
}

fn respond(farm: &Farm, req: Request) -> String {
    match req {
        Request::Ping => ok_response(&[("pong", Json::Bool(true))]),
        Request::Submit(spec) => match farm.submit(*spec) {
            Ok(id) => ok_response(&[("id", Json::Num(id as f64))]),
            Err(e) => err_response(&e),
        },
        Request::Status(id) => match farm.status(id) {
            Some(s) => ok_response(&[("status", status_json(&s))]),
            None => err_response("no such campaign"),
        },
        Request::List => ok_response(&[(
            "campaigns",
            Json::Arr(farm.list().iter().map(status_json).collect()),
        )]),
        Request::Pause(id) => simple(farm.pause(id)),
        Request::Resume(id, nodes) => simple(farm.resume(id, nodes)),
        Request::Rescale(id, nodes) => simple(farm.rescale(id, nodes)),
        Request::Events(id, from) => match farm.events_since(id, from) {
            Some((events, terminal)) => {
                let lines = events
                    .iter()
                    .map(|e| Json::parse(&e.to_json()).unwrap_or(Json::Null))
                    .collect();
                ok_response(&[("events", Json::Arr(lines)), ("done", Json::Bool(terminal))])
            }
            None => err_response("no such campaign"),
        },
        Request::Stream(..) => unreachable!("stream handled by the connection loop"),
        Request::Trace(id) => match farm.trace_jsonl(id) {
            Ok(jsonl) => ok_response(&[("jsonl", Json::Str(jsonl))]),
            Err(e) => err_response(&e),
        },
        Request::Stats => ok_response(&[("stats", stats_json(&farm.stats()))]),
        Request::Shutdown => {
            farm.shutdown();
            ok_response(&[("shutdown", Json::Bool(true))])
        }
    }
}

fn simple(r: Result<(), String>) -> String {
    match r {
        Ok(()) => ok_response(&[]),
        Err(e) => err_response(&e),
    }
}
