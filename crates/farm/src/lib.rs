//! The campaign farm: a multi-tenant service wrapper around the
//! deterministic campaign simulator.
//!
//! The paper runs MuMMI as one campaign per allocation; the obvious next
//! operational shape — and ROADMAP item 2 — is a long-running *service*
//! that accepts campaign submissions from several tenants, runs them
//! concurrently on a shared worker pool, streams progress back live, and
//! supports pause → checkpoint → resume plus mid-flight rescaling using
//! the same `WmCheckpoint` machinery the batch binaries use.
//!
//! The layering, bottom-up:
//!
//! - [`admission`] — the pure fair-share pick (fewest running legs, then
//!   fewest consumed node-hours, then FIFO);
//! - [`Farm`] — the worker pool, campaign registry, event logs, and the
//!   chaos [`chaos::WorkerKillPlan`] hook;
//! - [`proto`] — the strict JSON wire protocol;
//! - [`FarmServer`] / [`FarmClient`] — JSON-lines-over-TCP transport
//!   (std networking; the workspace carries no async runtime, and the
//!   farm does not need one — its concurrency budget is the worker pool).
//!
//! The contract that makes the service trustworthy: a campaign run
//! through the farm produces a **byte-identical same-seed trace** to the
//! batch path. The shell adds wall-clock concurrency around legs, never
//! inside them (see [`farm`] module docs for the full determinism
//! boundary), and the integration tests pin that equality over the wire.

pub mod admission;
pub mod client;
pub mod farm;
pub mod proto;
pub mod server;

pub use client::FarmClient;
pub use farm::{CampaignStatus, EntryState, Farm, FarmEvent, FarmStats};
pub use proto::{Request, SubmitSpec};
pub use server::FarmServer;
