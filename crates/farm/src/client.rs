//! A small blocking client for the farm wire protocol, used by the
//! integration tests and `farm_bench`.
//!
//! One [`FarmClient`] holds one request/response connection. Event
//! streaming ([`FarmClient::stream_until`]) opens a dedicated connection
//! per stream, because a streaming server thread writes until the
//! campaign is terminal and cannot serve other ops meanwhile.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use trace::Json;

/// Blocking wire client.
pub struct FarmClient {
    addr: SocketAddr,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn open(addr: SocketAddr) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
    let stream = TcpStream::connect(addr)?;
    let writer = stream.try_clone()?;
    Ok((BufReader::new(stream), writer))
}

/// Reads one response line and unwraps the `ok` envelope.
fn read_response(reader: &mut BufReader<TcpStream>) -> Result<Json, String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read failed: {e}"))?;
    if line.is_empty() {
        return Err("server closed the connection".to_string());
    }
    let v = Json::parse(line.trim()).map_err(|e| format!("bad response JSON: {e}"))?;
    match v.get("ok") {
        Some(Json::Bool(true)) => Ok(v),
        _ => Err(v
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("malformed response")
            .to_string()),
    }
}

impl FarmClient {
    /// Connects to a running [`crate::FarmServer`].
    pub fn connect(addr: SocketAddr) -> std::io::Result<FarmClient> {
        let (reader, writer) = open(addr)?;
        Ok(FarmClient {
            addr,
            reader,
            writer,
        })
    }

    /// Sends one raw request line and returns the decoded response.
    pub fn call(&mut self, line: &str) -> Result<Json, String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("write failed: {e}"))?;
        self.writer
            .flush()
            .map_err(|e| format!("flush failed: {e}"))?;
        read_response(&mut self.reader)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), String> {
        self.call(r#"{"op": "ping"}"#).map(|_| ())
    }

    /// Submits a raw submission line (must be a complete `submit`
    /// request object) and returns the assigned campaign id.
    pub fn submit_line(&mut self, line: &str) -> Result<u64, String> {
        let v = self.call(line)?;
        v.get("id")
            .and_then(Json::as_f64)
            .map(|f| f as u64)
            .ok_or("response missing id".to_string())
    }

    /// One campaign's status object.
    pub fn status(&mut self, id: u64) -> Result<Json, String> {
        let v = self.call(&format!(r#"{{"op": "status", "id": {id}}}"#))?;
        v.get("status")
            .cloned()
            .ok_or("response missing status".to_string())
    }

    /// All campaigns' status objects.
    pub fn list(&mut self) -> Result<Vec<Json>, String> {
        let v = self.call(r#"{"op": "list"}"#)?;
        Ok(v.get("campaigns")
            .and_then(Json::as_arr)
            .unwrap_or_default()
            .to_vec())
    }

    /// Requests a cooperative pause.
    pub fn pause(&mut self, id: u64) -> Result<(), String> {
        self.call(&format!(r#"{{"op": "pause", "id": {id}}}"#))
            .map(|_| ())
    }

    /// Resumes a paused campaign, optionally at a new width.
    pub fn resume(&mut self, id: u64, nodes: Option<u32>) -> Result<(), String> {
        let line = match nodes {
            Some(n) => format!(r#"{{"op": "resume", "id": {id}, "nodes": {n}}}"#),
            None => format!(r#"{{"op": "resume", "id": {id}}}"#),
        };
        self.call(&line).map(|_| ())
    }

    /// Rewrites the remaining legs' width mid-flight.
    pub fn rescale(&mut self, id: u64, nodes: u32) -> Result<(), String> {
        self.call(&format!(
            r#"{{"op": "rescale", "id": {id}, "nodes": {nodes}}}"#
        ))
        .map(|_| ())
    }

    /// The completed campaign's JSONL trace.
    pub fn trace(&mut self, id: u64) -> Result<String, String> {
        let v = self.call(&format!(r#"{{"op": "trace", "id": {id}}}"#))?;
        v.get("jsonl")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or("response missing jsonl".to_string())
    }

    /// Farm-wide counters.
    pub fn stats(&mut self) -> Result<Json, String> {
        let v = self.call(r#"{"op": "stats"}"#)?;
        v.get("stats")
            .cloned()
            .ok_or("response missing stats".to_string())
    }

    /// Drains and stops the farm (and, as a side effect, the server).
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.call(r#"{"op": "shutdown"}"#).map(|_| ())
    }

    /// Opens a dedicated stream connection for campaign `id` starting at
    /// event `from`, collecting events until `stop` returns true for one
    /// or the campaign is terminal. Returns the collected events and
    /// whether the terminal `done` marker was reached.
    pub fn stream_until(
        &self,
        id: u64,
        from: u64,
        mut stop: impl FnMut(&Json) -> bool,
    ) -> Result<(Vec<Json>, bool), String> {
        let (mut reader, mut writer) =
            open(self.addr).map_err(|e| format!("stream connect failed: {e}"))?;
        writeln!(writer, r#"{{"op": "stream", "id": {id}, "from": {from}}}"#)
            .and_then(|_| writer.flush())
            .map_err(|e| format!("stream write failed: {e}"))?;
        let mut events = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("stream read failed: {e}"))?;
            if n == 0 {
                return Err("stream closed early".to_string());
            }
            let v = Json::parse(line.trim()).map_err(|e| format!("bad stream JSON: {e}"))?;
            if let Some(ev) = v.get("event") {
                let hit = stop(ev);
                events.push(ev.clone());
                if hit {
                    return Ok((events, false));
                }
                continue;
            }
            return match v.get("ok") {
                Some(Json::Bool(true)) => Ok((events, true)),
                _ => Err(v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("malformed stream line")
                    .to_string()),
            };
        }
    }

    /// Blocks until the campaign completes, returning its full event log.
    pub fn wait_done(&self, id: u64) -> Result<Vec<Json>, String> {
        let (events, done) = self.stream_until(id, 0, |_| false)?;
        if !done {
            return Err("stream ended before completion".to_string());
        }
        Ok(events)
    }

    /// Blocks until an event of `kind` is logged (from the start of the
    /// log). Errors if the campaign completes without one.
    pub fn wait_event(&self, id: u64, kind: &str) -> Result<Json, String> {
        let (events, done) = self.stream_until(id, 0, |e| {
            e.get("kind").and_then(Json::as_str) == Some(kind)
        })?;
        if done {
            return Err(format!("campaign completed without a {kind:?} event"));
        }
        events.last().cloned().ok_or("empty stream".to_string())
    }
}
