//! Fair-share admission: which queued campaign runs next.
//!
//! The farm schedules at *leg* granularity — a worker picks one
//! allocation leg, runs it, and rejoins the pool — so fairness is a
//! per-pick decision, not a partition of the pool. The pick is a pure
//! function of observable accounting, in strict priority order:
//!
//! 1. fewest legs currently running for the tenant (don't let one tenant
//!    occupy the pool),
//! 2. fewest node-hours consumed by the tenant so far (long-run fair
//!    share),
//! 3. earliest submission sequence number (FIFO within a tenant, and a
//!    deterministic tiebreak across tenants).
//!
//! Keeping it pure keeps it testable: the concurrency in the farm is all
//! in *when* picks happen, never in *what* a pick returns for a given
//! queue state.

/// One queued, runnable campaign as the picker sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Campaign id (the pick's return value).
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Farm-wide submission sequence number.
    pub seq: u64,
}

/// Per-tenant accounting consulted by the pick.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantLoad {
    /// Legs currently executing on workers.
    pub running: u64,
    /// Node-hours consumed by completed legs.
    pub node_hours: u64,
}

/// Picks the next campaign to run, or `None` if nothing is runnable.
///
/// `load(tenant)` reports the tenant's current accounting; tenants with
/// no history read as zero (new tenants are the most favored, which is
/// what lets a late-arriving tenant break into a busy farm).
pub fn pick<'a>(
    candidates: impl IntoIterator<Item = &'a Candidate>,
    load: impl Fn(&str) -> TenantLoad,
) -> Option<u64> {
    candidates
        .into_iter()
        .min_by_key(|c| {
            let l = load(&c.tenant);
            (l.running, l.node_hours, c.seq)
        })
        .map(|c| c.id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn cand(id: u64, tenant: &str, seq: u64) -> Candidate {
        Candidate {
            id,
            tenant: tenant.to_string(),
            seq,
        }
    }

    fn loads(entries: &[(&str, u64, u64)]) -> BTreeMap<String, TenantLoad> {
        entries
            .iter()
            .map(|(t, running, node_hours)| {
                (
                    t.to_string(),
                    TenantLoad {
                        running: *running,
                        node_hours: *node_hours,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn idle_tenant_beats_busy_tenant_regardless_of_arrival() {
        let cands = [cand(1, "hog", 1), cand(2, "hog", 2), cand(3, "newcomer", 9)];
        let l = loads(&[("hog", 3, 600)]);
        let pick = pick(&cands, |t| l.get(t).copied().unwrap_or_default());
        assert_eq!(pick, Some(3), "the unloaded tenant goes first");
    }

    #[test]
    fn equal_running_falls_back_to_consumed_node_hours() {
        let cands = [cand(1, "heavy", 1), cand(2, "light", 5)];
        let l = loads(&[("heavy", 1, 500), ("light", 1, 20)]);
        assert_eq!(
            pick(&cands, |t| l.get(t).copied().unwrap_or_default()),
            Some(2)
        );
    }

    #[test]
    fn full_tie_is_fifo_by_submission_seq() {
        let cands = [cand(7, "a", 3), cand(8, "b", 1), cand(9, "a", 2)];
        assert_eq!(pick(&cands, |_| TenantLoad::default()), Some(8));
    }

    #[test]
    fn empty_queue_picks_nothing() {
        assert_eq!(pick(&[], |_| TenantLoad::default()), None);
    }
}
