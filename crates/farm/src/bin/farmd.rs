//! Standalone farm daemon: binds the JSON-lines wire API and serves
//! campaign submissions until a wire `shutdown` drains the pool.
//!
//! ```text
//! farmd [--addr <host:port>] [--workers <n>]
//!       [--kill-seed <s> --kills <n> --expected-legs <n>]
//! ```
//!
//! The kill flags arm the chaos harness: a seeded [`WorkerKillPlan`]
//! that takes workers down at logical leg counts, exercising
//! checkpoint recovery on a live service. Omit them for a quiet farm.

use std::thread;
use std::time::Duration;

use chaos::WorkerKillPlan;
use farm::{Farm, FarmServer};

fn main() {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut workers = 4usize;
    let mut kill_seed: Option<u64> = None;
    let mut kills = 2usize;
    let mut expected_legs = 16u64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = || it.next().unwrap_or_else(|| panic!("flag needs a value"));
        match flag.as_str() {
            "--addr" => addr = take(),
            "--workers" => workers = take().parse().expect("--workers"),
            "--kill-seed" => kill_seed = Some(take().parse().expect("--kill-seed")),
            "--kills" => kills = take().parse().expect("--kills"),
            "--expected-legs" => expected_legs = take().parse().expect("--expected-legs"),
            other => panic!("unknown flag {other}"),
        }
    }
    let plan = match kill_seed {
        Some(seed) => WorkerKillPlan::generate(seed, workers, expected_legs, kills),
        None => WorkerKillPlan::empty(),
    };
    let chaos = plan.kills.len();
    let farm = Farm::new(workers, plan);
    let server = FarmServer::start(farm.clone(), &addr).expect("bind");
    eprintln!(
        "farmd: serving {} with {workers} workers, {chaos} scheduled kills",
        server.addr()
    );
    while !farm.is_shutdown() {
        thread::sleep(Duration::from_millis(200));
    }
    server.stop();
    eprintln!("farmd: drained, bye");
}
