//! The farm wire protocol: JSON objects, one per line, over TCP.
//!
//! Requests are objects with an `"op"` discriminator; responses always
//! carry `"ok"`. Parsing is *strict*: an unknown op, an unknown field in
//! a submission, or an unknown config-override key is a wire error, not
//! a silent default — a tenant typo ("readybuffer_cap") must bounce at
//! submission, not run a campaign with a config the tenant did not ask
//! for. Config overrides go through [`CampaignConfig::validate`] before
//! admission, so the farm rejects invalid configs at the wire instead of
//! panicking a worker.

use std::collections::BTreeMap;

use campaign::{CampaignConfig, StoreBackend};
use resources::MatchPolicy;
use sched::{Coupling, SchedPolicy};
use trace::Json;
use workload::WorkloadSpec;

/// A parsed campaign submission.
#[derive(Debug, Clone)]
pub struct SubmitSpec {
    /// Tenant identity used by fair-share admission.
    pub tenant: String,
    /// Campaign configuration (defaults plus wire overrides), validated.
    pub cfg: CampaignConfig,
    /// Allocation legs to run, in order: `(nodes, hours)`.
    pub schedule: Vec<(u32, u64)>,
    /// Record a JSONL trace (retrievable with the `trace` op).
    pub trace: bool,
    /// Schedule a cooperative pause this many virtual hours into the
    /// first leg (rounded up to the whole hour by the pause-point rule).
    pub pause_at_hours: Option<u64>,
}

/// A request decoded from one wire line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Submit a campaign (boxed: the config dwarfs every other variant).
    Submit(Box<SubmitSpec>),
    /// One campaign's status.
    Status(u64),
    /// All campaigns' statuses.
    List,
    /// Request a cooperative pause (lands on the next whole hour).
    Pause(u64),
    /// Resume a paused campaign, optionally rewriting the width of the
    /// remaining legs.
    Resume(u64, Option<u32>),
    /// Rewrite the width of the remaining legs mid-flight (pauses the
    /// running leg at the next hour and auto-requeues at the new width).
    Rescale(u64, u32),
    /// Events from sequence number `from` (non-blocking snapshot).
    Events(u64, u64),
    /// Stream events from `from` until the campaign is terminal
    /// (blocking; the server writes one line per event batch).
    Stream(u64, u64),
    /// The completed campaign's JSONL trace.
    Trace(u64),
    /// Farm-wide counters.
    Stats,
    /// Stop accepting work, drain workers, stop the server.
    Shutdown,
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn opt_u64_field(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(|f| Some(f as u64))
            .ok_or_else(|| format!("field {key:?} must be a number")),
    }
}

/// Applies one config override. Numbers arrive as f64 (the JSON number
/// type); integral fields truncate. Unknown keys are errors.
fn apply_override(cfg: &mut CampaignConfig, key: &str, v: &Json) -> Result<(), String> {
    let num = || {
        v.as_f64()
            .ok_or_else(|| format!("config.{key} must be a number"))
    };
    let string = || {
        v.as_str()
            .ok_or_else(|| format!("config.{key} must be a string"))
    };
    match key {
        "seed" => cfg.seed = num()? as u64,
        "cg_fraction" => cfg.cg_fraction = num()?,
        "patches_per_snapshot" => cfg.patches_per_snapshot = num()? as usize,
        "frames_per_sim_per_min" => cfg.frames_per_sim_per_min = num()?,
        "cg_target_us" => cfg.cg_target_us = num()?,
        "aa_target_ns" => {
            let arr = v
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| format!("config.{key} must be a [lo, hi] pair"))?;
            let lo = arr[0].as_f64().ok_or("aa_target_ns.0 must be a number")?;
            let hi = arr[1].as_f64().ok_or("aa_target_ns.1 must be a number")?;
            cfg.aa_target_ns = (lo, hi);
        }
        "submit_rate_per_min" => cfg.submit_rate_per_min = num()? as u64,
        "queue_cap" => cfg.queue_cap = num()? as usize,
        "job_failure_prob" => cfg.job_failure_prob = num()?,
        "node_failures_per_day" => cfg.node_failures_per_day = num()?,
        "planned_hours" => cfg.planned_hours = num()?,
        "job_timeout_grace" => cfg.job_timeout_grace = num()?,
        "ready_buffer_divisor" => cfg.ready_buffer_divisor = num()? as u64,
        "ready_buffer_cap" => cfg.ready_buffer_cap = num()? as usize,
        "policy" => {
            cfg.policy = match string()? {
                "first_match" => MatchPolicy::FirstMatch,
                "low_id_exhaustive" => MatchPolicy::LowIdExhaustive,
                other => return Err(format!("unknown policy {other:?}")),
            }
        }
        "coupling" => {
            cfg.coupling = match string()? {
                "async" => Coupling::Asynchronous,
                "sync" => Coupling::Synchronous,
                other => return Err(format!("unknown coupling {other:?}")),
            }
        }
        "store" => {
            cfg.store_backend = StoreBackend::parse(string()?)
                .ok_or_else(|| format!("unknown store backend {:?}", string().unwrap()))?
        }
        "sched_policy" => {
            cfg.sched_policy = SchedPolicy::parse(string()?)
                .ok_or_else(|| format!("unknown sched_policy {:?}", string().unwrap()))?
        }
        "workload" => {
            cfg.workload = Some(
                WorkloadSpec::parse(string()?)
                    .ok_or_else(|| format!("unknown workload {:?}", string().unwrap()))?,
            )
        }
        other => return Err(format!("unknown config key {other:?}")),
    }
    Ok(())
}

fn parse_submit(obj: &Json) -> Result<SubmitSpec, String> {
    let Json::Obj(fields) = obj else {
        return Err("request must be a JSON object".into());
    };
    for key in fields.keys() {
        if !matches!(
            key.as_str(),
            "op" | "tenant" | "schedule" | "trace" | "pause_at_hours" | "config"
        ) {
            return Err(format!("unknown submit field {key:?}"));
        }
    }
    let tenant = obj
        .get("tenant")
        .and_then(Json::as_str)
        .ok_or("submit needs a string \"tenant\"")?
        .to_string();
    let rows = obj
        .get("schedule")
        .and_then(Json::as_arr)
        .ok_or("submit needs a \"schedule\" array of [nodes, hours] rows")?;
    let mut schedule = Vec::with_capacity(rows.len());
    for row in rows {
        let pair = row
            .as_arr()
            .filter(|r| r.len() == 2)
            .ok_or("each schedule row must be a [nodes, hours] pair")?;
        let nodes = pair[0].as_f64().ok_or("schedule nodes must be a number")? as u32;
        let hours = pair[1].as_f64().ok_or("schedule hours must be a number")? as u64;
        if nodes == 0 || hours == 0 {
            return Err("schedule rows need nodes >= 1 and hours >= 1".into());
        }
        schedule.push((nodes, hours));
    }
    if schedule.is_empty() {
        return Err("schedule must contain at least one leg".into());
    }
    let trace = match obj.get("trace") {
        None => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err("field \"trace\" must be a boolean".into()),
    };
    let pause_at_hours = opt_u64_field(obj, "pause_at_hours")?;
    let mut cfg = CampaignConfig::default();
    if let Some(overrides) = obj.get("config") {
        let Json::Obj(map) = overrides else {
            return Err("field \"config\" must be an object".into());
        };
        for (key, v) in map {
            apply_override(&mut cfg, key, v)?;
        }
    }
    cfg.validate().map_err(|e| format!("invalid config: {e}"))?;
    Ok(SubmitSpec {
        tenant,
        cfg,
        schedule,
        trace,
        pause_at_hours,
    })
}

impl Request {
    /// Decodes one wire line.
    pub fn decode(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request needs a string \"op\"")?;
        match op {
            "ping" => Ok(Request::Ping),
            "submit" => parse_submit(&v).map(|s| Request::Submit(Box::new(s))),
            "status" => Ok(Request::Status(u64_field(&v, "id")?)),
            "list" => Ok(Request::List),
            "pause" => Ok(Request::Pause(u64_field(&v, "id")?)),
            "resume" => Ok(Request::Resume(
                u64_field(&v, "id")?,
                opt_u64_field(&v, "nodes")?.map(|n| n as u32),
            )),
            "rescale" => Ok(Request::Rescale(
                u64_field(&v, "id")?,
                u64_field(&v, "nodes")? as u32,
            )),
            "events" => Ok(Request::Events(
                u64_field(&v, "id")?,
                opt_u64_field(&v, "from")?.unwrap_or(0),
            )),
            "stream" => Ok(Request::Stream(
                u64_field(&v, "id")?,
                opt_u64_field(&v, "from")?.unwrap_or(0),
            )),
            "trace" => Ok(Request::Trace(u64_field(&v, "id")?)),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// Builds an `{"ok": true, ...}` response line from field pairs.
pub fn ok_response(fields: &[(&str, Json)]) -> String {
    let mut map = BTreeMap::new();
    map.insert("ok".to_string(), Json::Bool(true));
    for (k, v) in fields {
        map.insert((*k).to_string(), v.clone());
    }
    Json::Obj(map).to_json()
}

/// Builds an `{"ok": false, "error": ...}` response line.
pub fn err_response(error: &str) -> String {
    let mut map = BTreeMap::new();
    map.insert("ok".to_string(), Json::Bool(false));
    map.insert("error".to_string(), Json::Str(error.to_string()));
    Json::Obj(map).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_parses_schedule_and_overrides() {
        let line = r#"{"op": "submit", "tenant": "alice", "trace": true,
                       "schedule": [[20, 6], [32, 4]], "pause_at_hours": 3,
                       "config": {"seed": 7, "policy": "first_match",
                                  "coupling": "async", "aa_target_ns": [5, 8],
                                  "store": "loopback"}}"#;
        let Request::Submit(spec) = Request::decode(&line.replace('\n', " ")).unwrap() else {
            panic!("not a submit");
        };
        assert_eq!(spec.tenant, "alice");
        assert_eq!(spec.schedule, vec![(20, 6), (32, 4)]);
        assert!(spec.trace);
        assert_eq!(spec.pause_at_hours, Some(3));
        assert_eq!(spec.cfg.seed, 7);
        assert_eq!(spec.cfg.policy, MatchPolicy::FirstMatch);
        assert_eq!(spec.cfg.coupling, Coupling::Asynchronous);
        assert_eq!(spec.cfg.aa_target_ns, (5.0, 8.0));
        assert_eq!(spec.cfg.store_backend, StoreBackend::Loopback);
    }

    #[test]
    fn sched_policy_and_workload_overrides_round_trip() {
        let line = r#"{"op": "submit", "tenant": "a", "schedule": [[5, 2]],
                       "config": {"sched_policy": "fair-share", "workload": "bursty"}}"#;
        let Request::Submit(spec) = Request::decode(&line.replace('\n', " ")).unwrap() else {
            panic!("not a submit");
        };
        assert_eq!(spec.cfg.sched_policy, SchedPolicy::FairShare);
        assert_eq!(spec.cfg.workload, Some(WorkloadSpec::Bursty));

        let line = r#"{"op": "submit", "tenant": "a", "schedule": [[5, 2]],
                       "config": {"workload": "trace:runs/day1.csv"}}"#;
        let Request::Submit(spec) = Request::decode(&line.replace('\n', " ")).unwrap() else {
            panic!("not a submit");
        };
        assert_eq!(
            spec.cfg.workload,
            Some(WorkloadSpec::Trace("runs/day1.csv".into()))
        );
    }

    #[test]
    fn unknown_sched_policy_and_workload_bounce() {
        let e = Request::decode(
            r#"{"op": "submit", "tenant": "a", "schedule": [[5, 2]], "config": {"sched_policy": "sjf"}}"#,
        )
        .unwrap_err();
        assert!(e.contains("unknown sched_policy \"sjf\""), "{e}");
        let e = Request::decode(
            r#"{"op": "submit", "tenant": "a", "schedule": [[5, 2]], "config": {"workload": "tsunami"}}"#,
        )
        .unwrap_err();
        assert!(e.contains("unknown workload \"tsunami\""), "{e}");
    }

    #[test]
    fn unknown_store_backend_bounces() {
        let e = Request::decode(
            r#"{"op": "submit", "tenant": "a", "schedule": [[5, 2]], "config": {"store": "memcached"}}"#,
        )
        .unwrap_err();
        assert!(e.contains("unknown store backend"), "{e}");
    }

    #[test]
    fn unknown_fields_and_keys_bounce() {
        let e = Request::decode(
            r#"{"op": "submit", "tenant": "a", "schedule": [[5, 2]], "scheddule": 1}"#,
        )
        .unwrap_err();
        assert!(e.contains("unknown submit field"), "{e}");
        let e = Request::decode(
            r#"{"op": "submit", "tenant": "a", "schedule": [[5, 2]], "config": {"readybuffer_cap": 9}}"#,
        )
        .unwrap_err();
        assert!(e.contains("unknown config key"), "{e}");
        let e = Request::decode(r#"{"op": "tickle"}"#).unwrap_err();
        assert!(e.contains("unknown op"), "{e}");
    }

    #[test]
    fn invalid_configs_are_rejected_at_decode_time() {
        let e = Request::decode(
            r#"{"op": "submit", "tenant": "a", "schedule": [[5, 2]], "config": {"ready_buffer_divisor": 0}}"#,
        )
        .unwrap_err();
        assert!(e.contains("ready_buffer_divisor"), "{e}");
        let e = Request::decode(
            r#"{"op": "submit", "tenant": "a", "schedule": [[5, 2]], "config": {"ready_buffer_cap": 7}}"#,
        )
        .unwrap_err();
        assert!(e.contains("ready_buffer_cap"), "{e}");
    }

    #[test]
    fn degenerate_schedules_bounce() {
        for bad in [
            r#"{"op": "submit", "tenant": "a", "schedule": []}"#,
            r#"{"op": "submit", "tenant": "a", "schedule": [[0, 2]]}"#,
            r#"{"op": "submit", "tenant": "a", "schedule": [[5, 0]]}"#,
            r#"{"op": "submit", "tenant": "a", "schedule": [[5]]}"#,
        ] {
            assert!(Request::decode(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn response_builders_emit_stable_json() {
        assert_eq!(
            ok_response(&[("id", Json::Num(3.0))]),
            r#"{"id": 3, "ok": true}"#
        );
        assert_eq!(err_response("nope"), r#"{"error": "nope", "ok": false}"#);
    }
}
