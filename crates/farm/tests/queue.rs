//! Submission-queue concurrency tests — the tsan target in CI.
//!
//! Many tenants submit simultaneously while other threads hammer the
//! read-side ops; everything must drain without losing a campaign,
//! double-counting a leg, or tripping the sanitizer. Campaigns are kept
//! tiny so the whole file stays fast under tsan's ~10x slowdown.

use std::thread;

use campaign::CampaignConfig;
use chaos::WorkerKillPlan;
use farm::{Farm, SubmitSpec};
use resources::MatchPolicy;
use sched::Coupling;

fn tiny_cfg(seed: u64) -> CampaignConfig {
    CampaignConfig {
        patches_per_snapshot: 4,
        frames_per_sim_per_min: 0.05,
        cg_target_us: 0.2,
        aa_target_ns: (5.0, 8.0),
        queue_cap: 200,
        policy: MatchPolicy::FirstMatch,
        coupling: Coupling::Asynchronous,
        submit_rate_per_min: 600,
        node_failures_per_day: 0.0,
        job_failure_prob: 0.0,
        seed,
        ..CampaignConfig::default()
    }
}

fn spec(tenant: &str, seed: u64) -> SubmitSpec {
    SubmitSpec {
        tenant: tenant.to_string(),
        cfg: tiny_cfg(seed),
        schedule: vec![(5, 2)],
        trace: false,
        pause_at_hours: None,
    }
}

#[test]
fn concurrent_submissions_all_complete_exactly_once() {
    let farm = Farm::new(4, WorkerKillPlan::empty());
    let tenants = ["alpha", "beta", "gamma", "delta"];
    let per_tenant = 3;

    let ids: Vec<u64> = thread::scope(|s| {
        let handles: Vec<_> = tenants
            .iter()
            .map(|tenant| {
                let farm = farm.clone();
                s.spawn(move || {
                    (0..per_tenant)
                        .map(|i| farm.submit(spec(tenant, 100 + i)).expect("submit"))
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        // A reader thread races the submitters on the snapshot ops.
        let reader_farm = farm.clone();
        let reader = s.spawn(move || {
            let mut most = 0;
            while most < tenants.len() * per_tenant as usize {
                most = most.max(reader_farm.list().len());
                reader_farm.stats();
                thread::yield_now();
            }
        });
        let ids = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        reader.join().unwrap();
        ids
    });

    assert_eq!(ids.len(), tenants.len() * per_tenant as usize);
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "ids are unique");

    for id in &ids {
        let s = farm.wait_until(*id, |s| s.terminal()).expect("completion");
        assert_eq!(s.legs_done, 1);
        assert!(s.ledger_ok);
    }
    let stats = farm.stats();
    assert_eq!(stats.submitted, ids.len() as u64);
    assert_eq!(stats.completed, ids.len() as u64);
    assert_eq!(stats.legs_completed, ids.len() as u64);
    farm.shutdown();
}

#[test]
fn pause_and_resume_race_safely_with_the_queue() {
    let farm = Farm::new(2, WorkerKillPlan::empty());
    // Pause a queued campaign before any worker picks it up, then race
    // more submissions against the resume.
    let held = farm.submit(spec("held", 1)).expect("submit");
    farm.pause(held).expect("pause while queued");
    let others: Vec<u64> = (0..4)
        .map(|i| farm.submit(spec("busy", 10 + i)).expect("submit"))
        .collect();
    for id in &others {
        farm.wait_until(*id, |s| s.terminal()).expect("completion");
    }
    // The held campaign must not have started.
    let s = farm.status(held).expect("status");
    assert_eq!(s.legs_done, 0, "a paused campaign never runs");
    farm.resume(held, None).expect("resume");
    let s = farm.wait_until(held, |s| s.terminal()).expect("completion");
    assert_eq!(s.legs_done, 1);
    assert!(s.ledger_ok);
    farm.shutdown();
}

#[test]
fn shutdown_is_idempotent_and_drains_cleanly() {
    let farm = Farm::new(2, WorkerKillPlan::empty());
    for i in 0..3 {
        farm.submit(spec("t", i)).expect("submit");
    }
    farm.shutdown();
    farm.shutdown(); // second call is a no-op
    assert!(farm.is_shutdown());
    assert_eq!(farm.stats().workers_alive, 0, "all workers joined");
}
