//! Wire-level service tests: the farm's external contract.
//!
//! The load-bearing one is byte-identity — a campaign submitted over TCP
//! must produce the exact trace the batch binary would, pinning the
//! determinism boundary at the service edge. The rest covers the
//! operational surface: pause/resume over the wire within the declared
//! crash–restore tolerances, mid-flight rescale, chaos worker kills with
//! conserved ledgers, and strict rejection of invalid submissions.

use campaign::{Campaign, CampaignConfig};
use chaos::WorkerKillPlan;
use farm::{EntryState, Farm, FarmClient, FarmServer, SubmitSpec};
use resources::MatchPolicy;
use sched::Coupling;
use trace::{Json, Tracer};

/// The chaos suite's small-but-busy configuration (attrition off, short
/// CG targets so sims turn over inside a leg).
fn cfg(seed: u64) -> CampaignConfig {
    CampaignConfig {
        patches_per_snapshot: 6,
        frames_per_sim_per_min: 0.05,
        cg_target_us: 0.2,
        aa_target_ns: (5.0, 8.0),
        queue_cap: 500,
        policy: MatchPolicy::FirstMatch,
        coupling: Coupling::Asynchronous,
        submit_rate_per_min: 600,
        job_timeout_grace: 1.5,
        node_failures_per_day: 0.0,
        job_failure_prob: 0.0,
        seed,
        ..CampaignConfig::default()
    }
}

/// The same configuration as a wire `config` override object.
fn cfg_wire(seed: u64) -> String {
    format!(
        concat!(
            r#"{{"patches_per_snapshot": 6, "frames_per_sim_per_min": 0.05, "#,
            r#""cg_target_us": 0.2, "aa_target_ns": [5, 8], "queue_cap": 500, "#,
            r#""policy": "first_match", "coupling": "async", "#,
            r#""submit_rate_per_min": 600, "job_timeout_grace": 1.5, "#,
            r#""node_failures_per_day": 0, "job_failure_prob": 0, "seed": {}}}"#
        ),
        seed
    )
}

fn start_server(workers: usize, plan: WorkerKillPlan) -> (Farm, FarmServer, FarmClient) {
    let farm = Farm::new(workers, plan);
    let server = FarmServer::start(farm.clone(), "127.0.0.1:0").expect("bind");
    let client = FarmClient::connect(server.addr()).expect("connect");
    (farm, server, client)
}

#[test]
fn farm_run_is_byte_identical_to_batch() {
    let batch = {
        let mut c = Campaign::new(cfg(4242));
        c.set_tracer(Tracer::enabled());
        c.execute_run(10, 4);
        c.execute_run(10, 2);
        c.tracer().to_jsonl()
    };
    let (_farm, server, mut client) = start_server(2, WorkerKillPlan::empty());
    let id = client
        .submit_line(&format!(
            r#"{{"op": "submit", "tenant": "alice", "trace": true, "schedule": [[10, 4], [10, 2]], "config": {}}}"#,
            cfg_wire(4242)
        ))
        .expect("submit");
    client.wait_done(id).expect("stream to completion");
    let farm_trace = client.trace(id).expect("trace");
    assert!(!batch.is_empty());
    assert_eq!(
        farm_trace, batch,
        "a farm-run campaign must trace byte-identically to the batch path"
    );
    server.stop();
}

#[test]
fn wire_resume_equivalence_stays_within_declared_tolerances() {
    // The uninterrupted baseline, in-process.
    let base = {
        let mut c = Campaign::new(cfg(20201214));
        c.execute_run(20, 12)
    };

    // Over the wire: same campaign with a scheduled drain window at hour
    // 6, then a resume. The stitched outcome must stay inside the
    // crash–restore tolerances (campaign/tests/chaos.rs): the resumed
    // leg reseeds its WM like any restart-chain leg.
    let (_farm, server, mut client) = start_server(2, WorkerKillPlan::empty());
    let id = client
        .submit_line(&format!(
            r#"{{"op": "submit", "tenant": "alice", "schedule": [[20, 12]], "pause_at_hours": 6, "config": {}}}"#,
            cfg_wire(20201214)
        ))
        .expect("submit");
    let paused = client.wait_event(id, "paused").expect("pause fires");
    assert_eq!(paused.get("at_hours").and_then(Json::as_f64), Some(6.0));
    let status = client.status(id).expect("status");
    assert_eq!(status.get("state").and_then(Json::as_str), Some("paused"));
    let remaining = status.get("remaining").and_then(Json::as_arr).unwrap();
    assert_eq!(
        remaining[0].as_arr().and_then(|r| r[1].as_f64()),
        Some(6.0),
        "6 of the 12 hours remain after the drain window"
    );
    client.resume(id, None).expect("resume");
    client.wait_done(id).expect("completion");

    let done = client.status(id).expect("status");
    assert_eq!(done.get("state").and_then(Json::as_str), Some("completed"));
    assert_eq!(done.get("ledger_ok"), Some(&Json::Bool(true)));
    assert_eq!(
        done.get("node_hours").and_then(Json::as_f64),
        Some(240.0),
        "20 nodes x 12 executed hours, exactly"
    );
    let stitched = done.get("sims_completed").and_then(Json::as_f64).unwrap();
    let rel =
        (base.sims_completed as f64 - stitched).abs() / (base.sims_completed as f64).max(1e-9);
    assert!(
        rel < 0.25,
        "sims completed diverged: {} vs {stitched}",
        base.sims_completed
    );
    server.stop();
}

#[test]
fn wire_resume_at_a_different_rung_rescales_the_remainder() {
    let (_farm, server, mut client) = start_server(1, WorkerKillPlan::empty());
    let id = client
        .submit_line(&format!(
            r#"{{"op": "submit", "tenant": "bob", "schedule": [[20, 8]], "pause_at_hours": 4, "config": {}}}"#,
            cfg_wire(77)
        ))
        .expect("submit");
    client.wait_event(id, "paused").expect("pause fires");
    client.resume(id, Some(32)).expect("resume at 32 nodes");
    client.wait_done(id).expect("completion");
    let done = client.status(id).expect("status");
    assert_eq!(
        done.get("node_hours").and_then(Json::as_f64),
        Some((20 * 4 + 32 * 4) as f64),
        "4 hours at the old width, 4 at the new"
    );
    assert_eq!(done.get("ledger_ok"), Some(&Json::Bool(true)));
    server.stop();
}

#[test]
fn worker_kills_recover_from_checkpoints_with_conserved_ledgers() {
    // Phase 1: a seeded kill plan against three two-leg campaigns on
    // three workers. Every campaign must still complete everything it
    // promised, with every kept leg's ledger reconciled.
    let plan = WorkerKillPlan::generate(7, 3, 6, 2);
    assert_eq!(plan.kills.len(), 2);
    let farm = Farm::new(3, plan);
    let mut ids = Vec::new();
    for (tenant, seed) in [("a", 1u64), ("b", 2), ("c", 3)] {
        let id = farm
            .submit(SubmitSpec {
                tenant: tenant.to_string(),
                cfg: cfg(seed),
                schedule: vec![(10, 4), (10, 4)],
                trace: false,
                pause_at_hours: None,
            })
            .expect("submit");
        ids.push(id);
    }
    for id in &ids {
        let s = farm.wait_until(*id, |s| s.terminal()).expect("completion");
        assert_eq!(s.state, EntryState::Completed);
        assert_eq!(s.legs_done, 2, "campaign {id} completed its full schedule");
        assert!(s.remaining.is_empty());
        assert!(s.ledger_ok, "campaign {id} kept a non-reconciling leg");
    }
    let stats = farm.stats();
    assert_eq!(stats.kills_fired, 2, "the plan fired");
    assert_eq!(
        stats.workers_spawned,
        3 + stats.kills_fired,
        "every kill spawned a replacement"
    );

    // Phase 2: a guaranteed mid-leg kill via the admin op — wait until
    // the campaign is running, kill that exact worker, and require a
    // checkpoint recovery with conserved books.
    let id = farm
        .submit(SubmitSpec {
            tenant: "d".to_string(),
            cfg: cfg(9),
            // A long single leg: the claim wakeup arrives at leg start,
            // leaving the whole leg to observe the Running state.
            schedule: vec![(10, 12)],
            trace: false,
            pause_at_hours: None,
        })
        .expect("submit");
    let running = farm
        .wait_until(id, |s| {
            matches!(s.state, EntryState::Running { .. }) || s.terminal()
        })
        .expect("runs");
    let EntryState::Running { worker } = running.state else {
        panic!("completed before the Running state could be observed");
    };
    farm.kill_worker(worker).expect("kill the running worker");
    let s = farm.wait_until(id, |s| s.terminal()).expect("completion");
    assert_eq!(s.recoveries, 1, "the kill forced a checkpoint recovery");
    assert_eq!(s.legs_done, 1);
    assert!(s.ledger_ok, "post-recovery books must reconcile");
    farm.shutdown();
}

#[test]
fn two_tenants_under_fair_share_report_per_class_queue_waits() {
    // Two tenants on the fair-share scheduler policy: the wire status and
    // farm-wide stats must both carry the per-class queue-wait
    // aggregates the engine collected, so operators can see which class
    // a policy is starving without reading traces.
    let (_farm, server, mut client) = start_server(2, WorkerKillPlan::empty());
    let mut ids = Vec::new();
    for (tenant, seed) in [("alice", 11u64), ("bob", 12)] {
        let id = client
            .submit_line(&format!(
                r#"{{"op": "submit", "tenant": "{tenant}", "schedule": [[10, 4]], "config": {}}}"#,
                cfg_wire(seed).replacen('{', r#"{"sched_policy": "fair-share", "#, 1)
            ))
            .expect("submit");
        ids.push(id);
    }
    let mut total_count = 0.0;
    for id in ids {
        client.wait_done(id).expect("completion");
        let status = client.status(id).expect("status");
        assert_eq!(status.get("ledger_ok"), Some(&Json::Bool(true)));
        let waits = status
            .get("class_waits")
            .and_then(Json::as_obj)
            .expect("status carries class_waits");
        assert!(!waits.is_empty(), "fair-share run placed nothing");
        for (class, row) in waits {
            let count = row.get("count").and_then(Json::as_f64).unwrap();
            let mean = row.get("mean_wait_us").and_then(Json::as_f64).unwrap();
            let max = row.get("max_wait_us").and_then(Json::as_f64).unwrap();
            assert!(count > 0.0, "{class}: empty aggregate row");
            assert!(mean <= max, "{class}: mean wait exceeds max");
            total_count += count;
        }
        // The WM stream always carries its continuum job and CG sims.
        assert!(waits.contains_key("continuum"), "continuum wait missing");
        assert!(waits.contains_key("cg-sim"), "cg-sim wait missing");
    }

    // Farm-wide stats merge both tenants' aggregates.
    let stats = client.stats().expect("stats");
    let merged = stats
        .get("class_waits")
        .and_then(Json::as_obj)
        .expect("stats carries class_waits");
    let merged_count: f64 = merged
        .values()
        .map(|row| row.get("count").and_then(Json::as_f64).unwrap())
        .sum();
    assert_eq!(
        merged_count, total_count,
        "farm stats must sum both tenants' placements"
    );
    server.stop();
}

#[test]
fn service_smoke_and_strict_wire_rejection() {
    let (farm, server, mut client) = start_server(2, WorkerKillPlan::empty());
    client.ping().expect("ping");

    // Invalid configs bounce at the wire with the typed message.
    let e = client
        .submit_line(r#"{"op": "submit", "tenant": "a", "schedule": [[5, 2]], "config": {"ready_buffer_divisor": 0}}"#)
        .unwrap_err();
    assert!(e.contains("ready_buffer_divisor"), "{e}");
    let e = client
        .submit_line(r#"{"op": "submit", "tenant": "a", "schedule": [[5, 2]], "config": {"ready_buffer_cap": 7}}"#)
        .unwrap_err();
    assert!(e.contains("ready_buffer_cap"), "{e}");
    // So do typos and unknown ops.
    let e = client
        .submit_line(r#"{"op": "submit", "tenant": "a", "schedule": [[5, 2]], "trase": true}"#)
        .unwrap_err();
    assert!(e.contains("unknown submit field"), "{e}");
    assert!(client.call(r#"{"op": "tickle"}"#).is_err());

    // A valid submission runs to completion and shows up everywhere.
    let id = client
        .submit_line(&format!(
            r#"{{"op": "submit", "tenant": "a", "schedule": [[5, 2]], "config": {}}}"#,
            cfg_wire(5)
        ))
        .expect("submit");
    let events = client.wait_done(id).expect("completion");
    assert!(
        events
            .iter()
            .any(|e| e.get("kind").and_then(Json::as_str) == Some("completed")),
        "stream carries the completion event"
    );
    assert_eq!(client.list().expect("list").len(), 1);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("completed").and_then(Json::as_f64), Some(1.0));
    assert_eq!(stats.get("kills_fired").and_then(Json::as_f64), Some(0.0));

    // Wire shutdown drains the farm; later submissions bounce.
    client.shutdown().expect("shutdown");
    assert!(farm.is_shutdown());
    assert!(farm
        .submit(SubmitSpec {
            tenant: "late".to_string(),
            cfg: cfg(1),
            schedule: vec![(5, 2)],
            trace: false,
            pause_at_hours: None,
        })
        .is_err());
    server.stop();
}
