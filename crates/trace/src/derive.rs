//! Reconstructing figure series from a trace.
//!
//! The workflow manager emits `wm.profile` and `wm.timeline` records at
//! every profiling event, so the Figure 5 occupancy distribution and the
//! Figure 6 running/pending timelines can be rebuilt from a trace alone
//! and compared — exactly, integer for integer — against the live
//! [`simcore::profile`] collectors. Job throughput (jobs placed per
//! virtual minute) comes from the scheduler's `job.placed` records.

use simcore::{OccupancyProfiler, OccupancySample, SimTime, Timeline};

use crate::event::TraceEvent;

/// Rebuilds the Figure 5 occupancy samples from `wm.profile` records, in
/// record order.
pub fn occupancy_samples(events: &[TraceEvent]) -> Vec<OccupancySample> {
    events
        .iter()
        .filter(|e| e.cat == "wm" && e.name == "wm.profile")
        .filter_map(|e| {
            Some(OccupancySample {
                at: e.at,
                gpus_used: e.arg_u64("gpus_used")?,
                gpus_total: e.arg_u64("gpus_total")?,
                cpus_used: e.arg_u64("cpus_used")?,
                cpus_total: e.arg_u64("cpus_total")?,
            })
        })
        .collect()
}

/// Rebuilds an [`OccupancyProfiler`] (Figure 5) from `wm.profile` records.
pub fn occupancy_profiler(events: &[TraceEvent]) -> OccupancyProfiler {
    let mut p = OccupancyProfiler::new();
    for s in occupancy_samples(events) {
        p.record(s);
    }
    p
}

/// Rebuilds the Figure 6 [`Timeline`] for one job class (the `class`
/// argument of `wm.timeline` records, e.g. `"cg"` or `"aa"`).
pub fn timeline(events: &[TraceEvent], class: &str) -> Timeline {
    let mut t = Timeline::new();
    for e in events
        .iter()
        .filter(|e| e.cat == "wm" && e.name == "wm.timeline")
    {
        if e.arg("class").and_then(|a| a.as_str()) != Some(class) {
            continue;
        }
        if let (Some(running), Some(pending)) = (e.arg_u64("running"), e.arg_u64("pending")) {
            t.record(e.at, running, pending);
        }
    }
    t
}

/// Jobs placed per virtual minute, derived from the scheduler's
/// `job.placed` records: `(minute_index, jobs_placed)` for every minute
/// from zero through the last placement, including empty minutes.
pub fn jobs_per_minute(events: &[TraceEvent]) -> Vec<(u64, u64)> {
    let minutes: Vec<u64> = events
        .iter()
        .filter(|e| e.cat == "sched" && e.name == "job.placed")
        .map(|e| e.at.as_micros() / 60_000_000)
        .collect();
    let last = match minutes.iter().max() {
        Some(m) => *m,
        None => return Vec::new(),
    };
    let mut series = vec![0u64; (last + 1) as usize];
    for m in minutes {
        series[m as usize] += 1;
    }
    series
        .into_iter()
        .enumerate()
        .map(|(i, n)| (i as u64, n))
        .collect()
}

/// Parses the event records out of a JSONL trace file's contents
/// (metric summary lines are skipped).
pub fn parse_jsonl(text: &str) -> Vec<TraceEvent> {
    text.lines().filter_map(TraceEvent::from_jsonl).collect()
}

/// First and last event timestamps, if any events exist.
pub fn time_bounds(events: &[TraceEvent]) -> Option<(SimTime, SimTime)> {
    let min = events.iter().map(|e| e.at).min()?;
    let max = events.iter().map(|e| e.at).max()?;
    Some((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Arg;
    use crate::tracer::Tracer;
    use simcore::SimTime;

    fn profile_event(gu: u64) -> Vec<(&'static str, Arg)> {
        vec![
            ("gpus_used", gu.into()),
            ("gpus_total", 600u64.into()),
            ("cpus_used", 100u64.into()),
            ("cpus_total", 200u64.into()),
        ]
    }

    #[test]
    fn occupancy_rebuilds_from_profile_records() {
        let t = Tracer::enabled();
        let mut live = OccupancyProfiler::new();
        for i in 0..5u64 {
            let at = SimTime::from_mins(10 * i);
            let sample = OccupancySample {
                at,
                gpus_used: 500 + i,
                gpus_total: 600,
                cpus_used: 100,
                cpus_total: 200,
            };
            live.record(sample);
            t.instant_at(at, "wm", "wm.profile", &profile_event(500 + i));
        }
        let derived = occupancy_profiler(&t.events());
        assert_eq!(derived.samples(), live.samples());
        assert_eq!(derived.gpu_series(), live.gpu_series());
    }

    #[test]
    fn timeline_rebuilds_per_class() {
        let t = Tracer::enabled();
        let mut cg = Timeline::new();
        for i in 0..4u64 {
            let at = SimTime::from_mins(i);
            cg.record(at, i * 2, 10 - i);
            t.instant_at(
                at,
                "wm",
                "wm.timeline",
                &[
                    ("class", "cg".into()),
                    ("running", (i * 2).into()),
                    ("pending", (10 - i).into()),
                ],
            );
            // A different class interleaved must not leak in.
            t.instant_at(
                at,
                "wm",
                "wm.timeline",
                &[
                    ("class", "aa".into()),
                    ("running", 99u64.into()),
                    ("pending", 0u64.into()),
                ],
            );
        }
        let derived = timeline(&t.events(), "cg");
        assert_eq!(derived.points(), cg.points());
        assert_eq!(timeline(&t.events(), "aa").points().len(), 4);
    }

    #[test]
    fn jobs_per_minute_buckets_placements() {
        let t = Tracer::enabled();
        for (secs, job) in [(10u64, 1u64), (50, 2), (70, 3), (200, 4)] {
            t.instant_at(
                SimTime::from_secs(secs),
                "sched",
                "job.placed",
                &[("job", job.into())],
            );
        }
        let series = jobs_per_minute(&t.events());
        assert_eq!(series, vec![(0, 2), (1, 1), (2, 0), (3, 1)]);
        assert!(jobs_per_minute(&[]).is_empty());
    }

    #[test]
    fn parse_jsonl_skips_metric_lines() {
        let t = Tracer::enabled();
        t.instant_at(SimTime::from_micros(1), "wm", "tick", &[]);
        t.counter_add("c", 1);
        let events = parse_jsonl(&t.to_jsonl());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "tick");
    }

    #[test]
    fn trace_written_and_reparsed_yields_identical_series() {
        let t = Tracer::enabled();
        for i in 0..8u64 {
            t.instant_at(
                SimTime::from_mins(10 * i),
                "wm",
                "wm.profile",
                &profile_event(590 + i),
            );
        }
        let reparsed = parse_jsonl(&t.to_jsonl());
        assert_eq!(occupancy_samples(&reparsed), occupancy_samples(&t.events()));
        assert_eq!(
            time_bounds(&reparsed),
            Some((SimTime::ZERO, SimTime::from_mins(70)))
        );
    }
}
