//! Trace records and their JSONL wire format.
//!
//! Every record is stamped with virtual time ([`SimTime`]), never the wall
//! clock, so a same-seed campaign serializes to a byte-identical file. The
//! line format is a restricted JSON dialect emitted with a fixed field
//! order (`ts`, `ph`, `dur`, `cat`, `name`, `args`) and parsed back by a
//! scanner that accepts exactly what [`TraceEvent::to_jsonl`] produces.

use simcore::{SimDuration, SimTime};

/// A typed event argument.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// Unsigned integer (ids, counts, resource totals).
    U64(u64),
    /// Signed integer (deltas).
    I64(i64),
    /// Float (percentages, couplings). Serialized via Rust's shortest
    /// round-trip formatting, which is deterministic.
    F64(f64),
    /// String (payload ids, class names, namespaces).
    Str(String),
}

impl From<u64> for Arg {
    fn from(v: u64) -> Arg {
        Arg::U64(v)
    }
}

impl From<u32> for Arg {
    fn from(v: u32) -> Arg {
        Arg::U64(v as u64)
    }
}

impl From<usize> for Arg {
    fn from(v: usize) -> Arg {
        Arg::U64(v as u64)
    }
}

impl From<i64> for Arg {
    fn from(v: i64) -> Arg {
        Arg::I64(v)
    }
}

impl From<f64> for Arg {
    fn from(v: f64) -> Arg {
        Arg::F64(v)
    }
}

impl From<&str> for Arg {
    fn from(v: &str) -> Arg {
        Arg::Str(v.to_string())
    }
}

impl From<String> for Arg {
    fn from(v: String) -> Arg {
        Arg::Str(v)
    }
}

impl From<bool> for Arg {
    fn from(v: bool) -> Arg {
        Arg::U64(v as u64)
    }
}

impl Arg {
    /// The argument as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Arg::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The argument as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Arg::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Arg::U64(v) => out.push_str(&v.to_string()),
            Arg::I64(v) => out.push_str(&v.to_string()),
            Arg::F64(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    // JSON has no NaN/Inf; clamp to null-like zero.
                    out.push('0');
                }
            }
            Arg::Str(s) => {
                out.push('"');
                escape_json_into(s, out);
                out.push('"');
            }
        }
    }
}

/// One trace record: an instant or a complete span at a virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual timestamp (span start for spans).
    pub at: SimTime,
    /// `Some(d)` makes this a complete span of duration `d`; `None` makes
    /// it an instant.
    pub dur: Option<SimDuration>,
    /// Category (one per subsystem: `sched`, `wm`, `feedback`,
    /// `datastore`, `campaign`).
    pub cat: &'static str,
    /// Event name, dot-scoped (`job.placed`, `wm.profile`, ...).
    pub name: String,
    /// Ordered arguments (emission order is preserved).
    pub args: Vec<(&'static str, Arg)>,
}

impl TraceEvent {
    /// Looks up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&Arg> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Convenience: a `u64` argument by key.
    pub fn arg_u64(&self, key: &str) -> Option<u64> {
        self.arg(key).and_then(Arg::as_u64)
    }

    /// Serializes the event as one JSONL line (without trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"ts\":");
        s.push_str(&self.at.as_micros().to_string());
        match self.dur {
            Some(d) => {
                s.push_str(",\"ph\":\"X\",\"dur\":");
                s.push_str(&d.as_micros().to_string());
            }
            None => s.push_str(",\"ph\":\"i\""),
        }
        s.push_str(",\"cat\":\"");
        s.push_str(self.cat);
        s.push_str("\",\"name\":\"");
        escape_json_into(&self.name, &mut s);
        s.push_str("\",\"args\":{");
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            escape_json_into(k, &mut s);
            s.push_str("\":");
            v.write_json(&mut s);
        }
        s.push_str("}}");
        s
    }

    /// Parses a line produced by [`TraceEvent::to_jsonl`]. Returns `None`
    /// for lines that are not event records (e.g. metric summary lines).
    pub fn from_jsonl(line: &str) -> Option<TraceEvent> {
        let mut p = Scanner::new(line);
        p.expect("{\"ts\":")?;
        let ts = p.number_u64()?;
        let dur = if p.try_expect(",\"ph\":\"X\",\"dur\":") {
            Some(SimDuration::from_micros(p.number_u64()?))
        } else {
            p.expect(",\"ph\":\"i\"")?;
            None
        };
        p.expect(",\"cat\":\"")?;
        let cat = intern_cat(&p.raw_until_quote()?);
        p.expect(",\"name\":\"")?;
        let name = p.string_until_quote()?;
        p.expect(",\"args\":{")?;
        let mut args = Vec::new();
        if !p.try_expect("}") {
            loop {
                p.expect("\"")?;
                let key = intern_key(&p.string_until_quote()?);
                p.expect(":")?;
                let val = p.value()?;
                args.push((key, val));
                if p.try_expect(",") {
                    continue;
                }
                p.expect("}")?;
                break;
            }
        }
        p.expect("}")?;
        Some(TraceEvent {
            at: SimTime::from_micros(ts),
            dur,
            cat,
            name,
            args,
        })
    }
}

/// Maps a parsed category back to the static str used at emission time.
fn intern_cat(s: &str) -> &'static str {
    match s {
        "sched" => "sched",
        "wm" => "wm",
        "feedback" => "feedback",
        "datastore" => "datastore",
        "campaign" => "campaign",
        "chaos" => "chaos",
        _ => "other",
    }
}

/// Maps a parsed argument key back to a static str. Keys outside the known
/// vocabulary collapse to `"arg"`; emitters only use keys listed here.
fn intern_key(s: &str) -> &'static str {
    const KEYS: &[&str] = &[
        "job",
        "class",
        "payload",
        "success",
        "node",
        "requeued",
        "gpus_used",
        "gpus_total",
        "cpus_used",
        "cpus_total",
        "running",
        "pending",
        "manager",
        "processed",
        "corrupt",
        "ns",
        "key",
        "bytes",
        "retries",
        "backend",
        "op",
        "run",
        "seed",
        "sim",
        "coupling",
        "count",
        "visited",
        "reason",
        "attempt",
        "at",
        "keys",
        "nodes",
        "hours",
        "placed",
        "completed",
        "period",
        "from",
        "until",
        "lost",
    ];
    KEYS.iter().find(|k| **k == s).copied().unwrap_or("arg")
}

/// Escapes `s` into `out` per JSON string rules.
pub fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Minimal scanner for the fixed-format lines this module emits.
struct Scanner<'a> {
    rest: &'a str,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str) -> Scanner<'a> {
        Scanner { rest: s }
    }

    fn expect(&mut self, lit: &str) -> Option<()> {
        self.rest = self.rest.strip_prefix(lit)?;
        Some(())
    }

    fn try_expect(&mut self, lit: &str) -> bool {
        if let Some(r) = self.rest.strip_prefix(lit) {
            self.rest = r;
            true
        } else {
            false
        }
    }

    fn number_u64(&mut self) -> Option<u64> {
        let end = self
            .rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.rest.len());
        if end == 0 {
            return None;
        }
        let v = self.rest[..end].parse().ok()?;
        self.rest = &self.rest[end..];
        Some(v)
    }

    /// Consumes up to the closing quote, no escapes allowed (categories).
    fn raw_until_quote(&mut self) -> Option<String> {
        let end = self.rest.find('"')?;
        let s = self.rest[..end].to_string();
        self.rest = &self.rest[end + 1..];
        Some(s)
    }

    /// Consumes a JSON string body up to its closing quote, unescaping.
    fn string_until_quote(&mut self) -> Option<String> {
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        loop {
            let (i, c) = chars.next()?;
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Some(out);
                }
                '\\' => {
                    let (_, esc) = chars.next()?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) = chars.next()?;
                                code = code * 16 + h.to_digit(16)?;
                            }
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                c => out.push(c),
            }
        }
    }

    /// Parses a JSON value: string or number (u64 / i64 / f64).
    fn value(&mut self) -> Option<Arg> {
        if self.try_expect("\"") {
            return Some(Arg::Str(self.string_until_quote()?));
        }
        let end = self
            .rest
            .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
            .unwrap_or(self.rest.len());
        if end == 0 {
            return None;
        }
        let tok = &self.rest[..end];
        self.rest = &self.rest[end..];
        if tok.contains(['.', 'e', 'E']) {
            Some(Arg::F64(tok.parse().ok()?))
        } else if tok.starts_with('-') {
            Some(Arg::I64(tok.parse().ok()?))
        } else {
            Some(Arg::U64(tok.parse().ok()?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(dur: Option<u64>) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_micros(1234),
            dur: dur.map(SimDuration::from_micros),
            cat: "sched",
            name: "job.placed".into(),
            args: vec![
                ("job", Arg::U64(7)),
                ("class", Arg::Str("cg_sim".into())),
                ("coupling", Arg::F64(0.25)),
            ],
        }
    }

    #[test]
    fn jsonl_roundtrip_instant() {
        let e = ev(None);
        let line = e.to_jsonl();
        assert_eq!(
            line,
            "{\"ts\":1234,\"ph\":\"i\",\"cat\":\"sched\",\"name\":\"job.placed\",\
             \"args\":{\"job\":7,\"class\":\"cg_sim\",\"coupling\":0.25}}"
        );
        assert_eq!(TraceEvent::from_jsonl(&line), Some(e));
    }

    #[test]
    fn jsonl_roundtrip_span() {
        let e = ev(Some(500));
        let line = e.to_jsonl();
        assert!(line.contains("\"ph\":\"X\",\"dur\":500"));
        assert_eq!(TraceEvent::from_jsonl(&line), Some(e));
    }

    #[test]
    fn jsonl_roundtrip_escaped_strings() {
        let e = TraceEvent {
            at: SimTime::ZERO,
            dur: None,
            cat: "datastore",
            name: "op.write".into(),
            args: vec![("key", Arg::Str("we\"ird\\key\n\u{1}".into()))],
        };
        let line = e.to_jsonl();
        assert_eq!(TraceEvent::from_jsonl(&line), Some(e));
    }

    #[test]
    fn jsonl_roundtrip_empty_args() {
        let e = TraceEvent {
            at: SimTime::from_secs(1),
            dur: None,
            cat: "campaign",
            name: "run.start".into(),
            args: vec![],
        };
        assert_eq!(TraceEvent::from_jsonl(&e.to_jsonl()), Some(e));
    }

    #[test]
    fn non_event_lines_are_rejected() {
        assert_eq!(
            TraceEvent::from_jsonl("{\"metric\":\"counter\",\"name\":\"x\",\"value\":1}"),
            None
        );
        assert_eq!(TraceEvent::from_jsonl(""), None);
        assert_eq!(TraceEvent::from_jsonl("garbage"), None);
    }

    #[test]
    fn float_formatting_is_shortest_roundtrip() {
        let mut s = String::new();
        Arg::F64(98.33333333333333).write_json(&mut s);
        assert_eq!(s, "98.33333333333333");
        assert_eq!(s.parse::<f64>().unwrap(), 98.33333333333333);
    }
}
