//! Deterministic metrics registry: counters, gauges, fixed-bucket
//! histograms.
//!
//! All state lives in `BTreeMap`s so snapshots iterate in name order, and
//! histogram buckets are fixed at registration time, so the serialized
//! summary of a same-seed run is byte-identical.

use std::collections::BTreeMap;

use crate::event::escape_json_into;

/// Default bucket upper bounds (inclusive), used by
/// [`MetricsRegistry::observe`] for unregistered histograms. The decade
/// ladder suits both virtual-µs latencies and payload byte sizes.
pub const DEFAULT_BUCKETS: &[u64] = &[
    1,
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
];

/// A fixed-bucket histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedHistogram {
    /// Inclusive upper bounds, strictly increasing.
    bounds: Vec<u64>,
    /// Per-bucket counts; `counts[bounds.len()]` is the overflow bucket.
    counts: Vec<u64>,
    /// Total observations.
    count: u64,
    /// Sum of all observed values (saturating).
    sum: u64,
}

impl FixedHistogram {
    /// Creates a histogram with the given inclusive upper bounds.
    pub fn new(bounds: &[u64]) -> FixedHistogram {
        FixedHistogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// Counters, gauges, and histograms keyed by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, FixedHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Registers histogram `name` with explicit bucket bounds. A histogram
    /// first touched by [`observe`](Self::observe) gets
    /// [`DEFAULT_BUCKETS`].
    pub fn register_hist(&mut self, name: &str, bounds: &[u64]) {
        self.hists
            .entry(name.to_string())
            .or_insert_with(|| FixedHistogram::new(bounds));
    }

    /// Records one observation into histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.hists
            .entry(name.to_string())
            .or_insert_with(|| FixedHistogram::new(DEFAULT_BUCKETS))
            .observe(value);
    }

    /// Current value of counter `name` (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if it has been touched.
    pub fn hist(&self, name: &str) -> Option<&FixedHistogram> {
        self.hists.get(name)
    }

    /// An ordered snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            hists: self
                .hists
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// A point-in-time, name-ordered view of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` in name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` in name order.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` in name order.
    pub hists: Vec<(String, FixedHistogram)>,
}

impl MetricsSnapshot {
    /// Serializes the snapshot as JSONL metric lines (one per metric,
    /// deterministic order), appended after the event lines in a trace
    /// file.
    pub fn to_jsonl_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (name, v) in &self.counters {
            let mut s = String::from("{\"metric\":\"counter\",\"name\":\"");
            escape_json_into(name, &mut s);
            s.push_str("\",\"value\":");
            s.push_str(&v.to_string());
            s.push('}');
            lines.push(s);
        }
        for (name, v) in &self.gauges {
            let mut s = String::from("{\"metric\":\"gauge\",\"name\":\"");
            escape_json_into(name, &mut s);
            s.push_str("\",\"value\":");
            if v.is_finite() {
                s.push_str(&v.to_string());
            } else {
                s.push('0');
            }
            s.push('}');
            lines.push(s);
        }
        for (name, h) in &self.hists {
            let mut s = String::from("{\"metric\":\"hist\",\"name\":\"");
            escape_json_into(name, &mut s);
            s.push_str("\",\"le\":[");
            for (i, b) in h.bounds().iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&b.to_string());
            }
            s.push_str("],\"counts\":[");
            for (i, c) in h.counts().iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&c.to_string());
            }
            s.push_str("],\"count\":");
            s.push_str(&h.count().to_string());
            s.push_str(",\"sum\":");
            s.push_str(&h.sum().to_string());
            s.push('}');
            lines.push(s);
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let mut h = FixedHistogram::new(&[10, 100]);
        h.observe(10); // lands in [..=10]
        h.observe(11); // lands in (10..=100]
        h.observe(101); // overflow
        assert_eq!(h.counts(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 122);
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let mut m = MetricsRegistry::new();
        m.counter_add("zeta", 1);
        m.counter_add("alpha", 2);
        m.gauge_set("mid", 0.5);
        m.observe("lat", 42);
        let snap = m.snapshot();
        assert_eq!(snap.counters[0].0, "alpha");
        assert_eq!(snap.counters[1].0, "zeta");
        assert_eq!(snap.gauges, vec![("mid".to_string(), 0.5)]);
        assert_eq!(snap.hists[0].0, "lat");
        assert_eq!(snap.hists[0].1.count(), 1);
    }

    #[test]
    fn snapshot_jsonl_is_deterministic() {
        let build = || {
            let mut m = MetricsRegistry::new();
            m.counter_add("b", 1);
            m.counter_add("a", 7);
            m.observe("h", 5);
            m.observe("h", 50_000_000_000);
            m.snapshot().to_jsonl_lines().join("\n")
        };
        let one = build();
        assert_eq!(one, build());
        assert!(one.contains("{\"metric\":\"counter\",\"name\":\"a\",\"value\":7}"));
        assert!(one.contains("\"count\":2"));
    }

    #[test]
    fn counters_accumulate_and_missing_reads_are_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.counter_add("x", 3);
        m.counter_add("x", 4);
        assert_eq!(m.counter("x"), 7);
        assert_eq!(m.gauge("nope"), None);
    }
}
