//! The [`Tracer`] handle and trace exporters.
//!
//! A `Tracer` is a cheaply clonable handle that every instrumented
//! subsystem holds. The default handle is disabled — a no-op with no
//! allocation and no locking on the record path — so instrumentation costs
//! nothing unless a campaign opts in with `--trace`. An enabled handle
//! appends [`TraceEvent`]s (in deterministic emission order) and updates a
//! [`MetricsRegistry`] behind one mutex.
//!
//! Exports: JSONL (events in emission order followed by a name-ordered
//! metrics summary) and Chrome `trace_event` JSON for
//! `about:tracing`/Perfetto. Both are functions of the recorded state
//! only, so same-seed runs serialize byte-identically.

use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex; // lint: allow(L6: tracer sink lock import; the sink field carries the reason)
use simcore::{SimDuration, SimTime};

use crate::event::{Arg, TraceEvent};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// One recorded metric mutation. Staged sinks log these instead of
/// touching a registry, so [`Tracer::absorb`] can replay them into the
/// main registry in emission order (gauges are last-write-wins, so order
/// is part of the byte-determinism contract).
#[derive(Debug, Clone)]
enum MetricOp {
    /// `counter_add(name, delta)`.
    CounterAdd(String, u64),
    /// `gauge_set(name, value)`.
    GaugeSet(String, f64),
    /// `observe(name, value)`.
    Observe(String, u64),
}

/// Recorded state behind an enabled tracer.
#[derive(Debug, Default)]
struct TraceSink {
    /// Events in emission order.
    events: Vec<TraceEvent>,
    /// Metrics registry.
    metrics: MetricsRegistry,
    /// Monotonic virtual clock for emitters that have no time parameter
    /// (datastore ops); advanced by the driving loop via
    /// [`Tracer::set_now`].
    now: SimTime,
    /// Staged sinks ([`Tracer::stage`]) defer metric mutations into
    /// `ops` instead of `metrics`, preserving their order for replay.
    staging: bool,
    /// Deferred metric mutations of a staged sink, in emission order.
    ops: Vec<MetricOp>,
}

/// A virtual-time tracer handle. `Clone` is cheap; all clones share one
/// sink. [`Tracer::disabled`] (also `Default`) is a no-op handle.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<Mutex<TraceSink>>>, // lint: allow(L6: events append under one lock in emission order; never read back mid-run)
}

impl Tracer {
    /// A no-op tracer: every record call returns immediately.
    pub fn disabled() -> Tracer {
        Tracer { sink: None }
    }

    /// An enabled tracer with an empty sink.
    pub fn enabled() -> Tracer {
        Tracer {
            sink: Some(Arc::new(Mutex::new(TraceSink::default()))), // lint: allow(L6: see the sink field's reason)
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Advances the tracer's virtual clock (monotonic; earlier times are
    /// ignored). Emitters without a time parameter stamp events with this
    /// clock.
    pub fn set_now(&self, at: SimTime) {
        if let Some(sink) = &self.sink {
            let mut s = sink.lock();
            s.now = s.now.max(at);
        }
    }

    /// The tracer's current virtual clock.
    pub fn now(&self) -> SimTime {
        match &self.sink {
            Some(sink) => sink.lock().now,
            None => SimTime::ZERO,
        }
    }

    /// Records an instant event at the tracer clock.
    pub fn instant(&self, cat: &'static str, name: &str, args: &[(&'static str, Arg)]) {
        if let Some(sink) = &self.sink {
            let mut s = sink.lock();
            let at = s.now;
            s.events.push(TraceEvent {
                at,
                dur: None,
                cat,
                name: name.to_string(),
                args: args.to_vec(),
            });
        }
    }

    /// Records an instant event at an explicit virtual time.
    pub fn instant_at(
        &self,
        at: SimTime,
        cat: &'static str,
        name: &str,
        args: &[(&'static str, Arg)],
    ) {
        if let Some(sink) = &self.sink {
            sink.lock().events.push(TraceEvent {
                at,
                dur: None,
                cat,
                name: name.to_string(),
                args: args.to_vec(),
            });
        }
    }

    /// Records a complete span `[start, start+dur)`.
    pub fn span_at(
        &self,
        start: SimTime,
        dur: SimDuration,
        cat: &'static str,
        name: &str,
        args: &[(&'static str, Arg)],
    ) {
        if let Some(sink) = &self.sink {
            sink.lock().events.push(TraceEvent {
                at: start,
                dur: Some(dur),
                cat,
                name: name.to_string(),
                args: args.to_vec(),
            });
        }
    }

    /// Adds `delta` to counter `name`.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(sink) = &self.sink {
            let mut s = sink.lock();
            if s.staging {
                s.ops.push(MetricOp::CounterAdd(name.to_string(), delta));
            } else {
                s.metrics.counter_add(name, delta);
            }
        }
    }

    /// Sets gauge `name`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(sink) = &self.sink {
            let mut s = sink.lock();
            if s.staging {
                s.ops.push(MetricOp::GaugeSet(name.to_string(), value));
            } else {
                s.metrics.gauge_set(name, value);
            }
        }
    }

    /// Records one histogram observation.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(sink) = &self.sink {
            let mut s = sink.lock();
            if s.staging {
                s.ops.push(MetricOp::Observe(name.to_string(), value));
            } else {
                s.metrics.observe(name, value);
            }
        }
    }

    /// Derives a **staged** tracer from this one: an independent sink
    /// that buffers events and metric mutations instead of writing them
    /// to this tracer. A parallel partition of a deterministic loop
    /// records into its own staged tracer; after the partitions join,
    /// the driver [`Tracer::absorb`]s each stage in the serial loop's
    /// emission order, making the merged trace byte-identical to serial
    /// execution. Staging a disabled tracer yields a disabled tracer, so
    /// untraced runs keep the zero-cost record path.
    pub fn stage(&self) -> Tracer {
        match &self.sink {
            Some(sink) => {
                let now = sink.lock().now;
                let stage = TraceSink {
                    now,
                    staging: true,
                    ..TraceSink::default()
                };
                Tracer {
                    sink: Some(Arc::new(Mutex::new(stage))), // lint: allow(L6: staged sink is written by exactly one partition, then drained serially by absorb)
                }
            }
            None => Tracer::disabled(),
        }
    }

    /// Appends a staged tracer's buffered events to this sink and
    /// replays its metric mutations, both in their original emission
    /// order, then drains the stage so it can be reused for the next
    /// barrier interval. Only the driving loop calls this, serially, so
    /// lock order is fixed. No-op if either side is disabled or they
    /// share a sink.
    pub fn absorb(&self, staged: &Tracer) {
        let (Some(main), Some(other)) = (&self.sink, &staged.sink) else {
            return;
        };
        if Arc::ptr_eq(main, other) {
            return;
        }
        let mut m = main.lock();
        let mut o = other.lock();
        m.events.append(&mut o.events);
        for op in o.ops.drain(..) {
            match op {
                MetricOp::CounterAdd(name, delta) => m.metrics.counter_add(&name, delta),
                MetricOp::GaugeSet(name, value) => m.metrics.gauge_set(&name, value),
                MetricOp::Observe(name, value) => m.metrics.observe(&name, value),
            }
        }
        m.now = m.now.max(o.now);
    }

    /// Number of recorded events (zero for a disabled tracer).
    pub fn event_count(&self) -> usize {
        match &self.sink {
            Some(sink) => sink.lock().events.len(),
            None => 0,
        }
    }

    /// A copy of all recorded events in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.sink {
            Some(sink) => sink.lock().events.clone(),
            None => Vec::new(),
        }
    }

    /// An ordered snapshot of the metrics registry (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.sink {
            Some(sink) => sink.lock().metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Serializes the full trace (events, then metrics summary) as JSONL.
    pub fn to_jsonl(&self) -> String {
        let (events, snapshot) = match &self.sink {
            Some(sink) => {
                let s = sink.lock();
                (s.events.clone(), s.metrics.snapshot())
            }
            None => (Vec::new(), MetricsSnapshot::default()),
        };
        let mut out = String::new();
        for e in &events {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        for line in snapshot.to_jsonl_lines() {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL trace to `path`.
    pub fn write_jsonl(&self, path: &Path) -> io::Result<()> {
        let mut f = io::BufWriter::new(fs::File::create(path)?);
        f.write_all(self.to_jsonl().as_bytes())?;
        f.flush()
    }

    /// Serializes the events as a Chrome `trace_event` JSON document
    /// (openable in `about:tracing` or <https://ui.perfetto.dev>).
    /// Categories map to thread lanes so each subsystem renders as its own
    /// row; timestamps are virtual microseconds.
    pub fn to_chrome(&self) -> String {
        let events = self.events();
        // Deterministic lane assignment: categories in sorted order.
        let mut cats: Vec<&'static str> = events.iter().map(|e| e.cat).collect();
        cats.sort_unstable();
        cats.dedup();
        let lane = |cat: &str| -> usize { cats.iter().position(|c| *c == cat).unwrap_or(0) + 1 };
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for (i, cat) in cats.iter().enumerate() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                i + 1,
                cat
            ));
        }
        for e in &events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let mut line = String::from("{");
            match e.dur {
                Some(d) => line.push_str(&format!(
                    "\"ph\":\"X\",\"ts\":{},\"dur\":{}",
                    e.at.as_micros(),
                    d.as_micros()
                )),
                None => line.push_str(&format!(
                    "\"ph\":\"i\",\"ts\":{},\"s\":\"t\"",
                    e.at.as_micros()
                )),
            }
            line.push_str(&format!(",\"pid\":1,\"tid\":{}", lane(e.cat)));
            line.push_str(",\"cat\":\"");
            line.push_str(e.cat);
            line.push_str("\",\"name\":\"");
            crate::event::escape_json_into(&e.name, &mut line);
            line.push_str("\",\"args\":{");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push('"');
                crate::event::escape_json_into(k, &mut line);
                line.push_str("\":");
                match v {
                    Arg::U64(n) => line.push_str(&n.to_string()),
                    Arg::I64(n) => line.push_str(&n.to_string()),
                    Arg::F64(n) => {
                        if n.is_finite() {
                            line.push_str(&n.to_string());
                        } else {
                            line.push('0');
                        }
                    }
                    Arg::Str(s) => {
                        line.push('"');
                        crate::event::escape_json_into(s, &mut line);
                        line.push('"');
                    }
                }
            }
            line.push_str("}}");
            out.push_str(&line);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes the Chrome `trace_event` document to `path`.
    pub fn write_chrome(&self, path: &Path) -> io::Result<()> {
        let mut f = io::BufWriter::new(fs::File::create(path)?);
        f.write_all(self.to_chrome().as_bytes())?;
        f.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.instant("sched", "job.submit", &[("job", 1u64.into())]);
        t.counter_add("c", 5);
        t.set_now(SimTime::from_secs(9));
        assert!(!t.is_enabled());
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.now(), SimTime::ZERO);
        assert!(t.to_jsonl().is_empty());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Tracer::default().is_enabled());
    }

    #[test]
    fn clones_share_one_sink() {
        let t = Tracer::enabled();
        let u = t.clone();
        u.instant("wm", "tick", &[]);
        u.counter_add("n", 2);
        assert_eq!(t.event_count(), 1);
        assert_eq!(t.metrics_snapshot().counters, vec![("n".to_string(), 2)]);
    }

    #[test]
    fn clock_is_monotonic() {
        let t = Tracer::enabled();
        t.set_now(SimTime::from_secs(10));
        t.set_now(SimTime::from_secs(5));
        assert_eq!(t.now(), SimTime::from_secs(10));
        t.instant("datastore", "op.read", &[]);
        assert_eq!(t.events()[0].at, SimTime::from_secs(10));
    }

    #[test]
    fn jsonl_lists_events_then_metrics() {
        let t = Tracer::enabled();
        t.instant_at(SimTime::from_micros(5), "sched", "job.submit", &[]);
        t.span_at(
            SimTime::from_micros(5),
            SimDuration::from_micros(10),
            "sched",
            "job.run",
            &[("job", 1u64.into())],
        );
        t.counter_add("sched.submitted", 1);
        let text = t.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"ts\":5,\"ph\":\"i\""));
        assert!(lines[1].contains("\"ph\":\"X\",\"dur\":10"));
        assert!(lines[2].starts_with("{\"metric\":\"counter\""));
    }

    #[test]
    fn chrome_export_has_metadata_and_lanes() {
        let t = Tracer::enabled();
        t.instant_at(SimTime::from_micros(1), "wm", "tick", &[]);
        t.span_at(
            SimTime::from_micros(2),
            SimDuration::from_micros(3),
            "sched",
            "svc.ingest",
            &[],
        );
        let doc = t.to_chrome();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.trim_end().ends_with("]}"));
        assert!(doc.contains("\"thread_name\""));
        // Lanes assigned in sorted category order: sched=1, wm=2.
        assert!(doc.contains("{\"ph\":\"X\",\"ts\":2,\"dur\":3,\"pid\":1,\"tid\":1"));
        assert!(doc.contains("{\"ph\":\"i\",\"ts\":1,\"s\":\"t\",\"pid\":1,\"tid\":2"));
    }

    #[test]
    fn same_recording_serializes_identically() {
        let record = || {
            let t = Tracer::enabled();
            for i in 0..50u64 {
                t.instant_at(
                    SimTime::from_micros(i),
                    "sched",
                    "job.submit",
                    &[("job", i.into())],
                );
                t.observe("lat", i * 7);
            }
            t.counter_add("sched.submitted", 50);
            (t.to_jsonl(), t.to_chrome())
        };
        assert_eq!(record(), record());
    }

    #[test]
    fn stage_of_disabled_is_disabled() {
        let t = Tracer::disabled();
        let s = t.stage();
        assert!(!s.is_enabled());
        s.instant("wm", "tick", &[]);
        t.absorb(&s);
        assert_eq!(t.event_count(), 0);
    }

    #[test]
    fn absorb_appends_events_and_replays_metric_ops_in_order() {
        let main = Tracer::enabled();
        main.instant_at(SimTime::from_micros(1), "campaign", "run.start", &[]);
        main.counter_add("jobs", 1);
        main.gauge_set("occupancy", 10.0);

        let s = main.stage();
        s.set_now(SimTime::from_micros(7));
        s.instant("datastore", "op.write", &[]);
        s.counter_add("jobs", 2);
        s.gauge_set("occupancy", 55.0);
        s.observe("lat", 9);
        // Staged metrics must not leak into the main registry pre-absorb.
        assert_eq!(
            main.metrics_snapshot().counters,
            vec![("jobs".to_string(), 1)]
        );

        main.absorb(&s);
        let events = main.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].at, SimTime::from_micros(7));
        let snap = main.metrics_snapshot();
        assert_eq!(snap.counters, vec![("jobs".to_string(), 3)]);
        assert_eq!(snap.gauges, vec![("occupancy".to_string(), 55.0)]);
        assert_eq!(main.now(), SimTime::from_micros(7));
        // The stage is drained and reusable for the next interval.
        assert_eq!(s.event_count(), 0);
    }

    #[test]
    fn staged_then_absorbed_equals_direct_recording() {
        // The merge contract the parallel event loop relies on: recording
        // through a stage and absorbing serializes byte-identically to
        // recording directly in the same order.
        let direct = Tracer::enabled();
        direct.instant_at(SimTime::from_micros(2), "datastore", "op.write", &[]);
        direct.observe("lat", 4);
        direct.instant_at(SimTime::from_micros(2), "wm", "tick", &[]);
        direct.counter_add("wm.timeouts", 1);

        let main = Tracer::enabled();
        let g = main.stage();
        let s = main.stage();
        // Partitions record concurrently (order between stages unknown)…
        s.instant_at(SimTime::from_micros(2), "wm", "tick", &[]);
        s.counter_add("wm.timeouts", 1);
        g.instant_at(SimTime::from_micros(2), "datastore", "op.write", &[]);
        g.observe("lat", 4);
        // …and the driver absorbs in the serial loop's order.
        main.absorb(&g);
        main.absorb(&s);
        assert_eq!(main.to_jsonl(), direct.to_jsonl());
    }

    #[test]
    fn absorbing_self_or_same_sink_is_a_no_op() {
        let t = Tracer::enabled();
        t.instant_at(SimTime::from_micros(1), "wm", "tick", &[]);
        t.absorb(&t.clone());
        assert_eq!(t.event_count(), 1);
    }

    #[test]
    fn write_jsonl_roundtrips_through_fs() {
        let t = Tracer::enabled();
        t.instant_at(SimTime::from_micros(3), "campaign", "run.start", &[]);
        let dir = std::env::temp_dir().join(format!("trace-io-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.jsonl");
        t.write_jsonl(&p).unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), t.to_jsonl());
        fs::remove_file(&p).unwrap();
    }
}
