//! mummi-trace: deterministic, virtual-time observability for the
//! coordination stack (§4.5).
//!
//! The paper's in-situ monitoring watched ~24,000 simultaneous jobs; the
//! authors single out diagnosing coordination stalls without structured
//! telemetry as one of the hardest operational problems at scale. This
//! crate is that substrate for the reproduction:
//!
//! - [`Tracer`] — a cheaply clonable handle every subsystem holds. The
//!   default is a disabled no-op, so instrumentation is free unless a run
//!   opts in (`--trace <path>` on the campaign binaries).
//! - [`TraceEvent`] — span/instant records keyed by [`simcore::SimTime`]
//!   (job lifecycle, WM loop iterations, feedback rounds, selector
//!   updates, datastore op latencies and retry counts).
//! - [`MetricsRegistry`] — counters, gauges, and fixed-bucket histograms
//!   with name-ordered deterministic snapshots.
//! - Exporters — JSONL (events + metrics summary) and Chrome
//!   `trace_event` JSON for `about:tracing` / <https://ui.perfetto.dev>.
//! - [`derive`] — rebuilds the Figure 5 occupancy and Figure 6 timeline
//!   series from a trace, for exact comparison against the live
//!   [`simcore::profile`] collectors.
//!
//! **Determinism guarantee:** every record carries virtual time, all
//! registry state is ordered, and floats serialize via shortest-roundtrip
//! formatting — so a same-seed campaign produces a byte-identical trace
//! file. That makes the tracer itself a determinism regression detector:
//! any ordered-iteration bug anywhere in the stack shows up as a trace
//! diff.

pub mod derive;
pub mod event;
pub mod json;
pub mod metrics;
pub mod tracer;

pub use event::{Arg, TraceEvent};
pub use json::Json;
pub use metrics::{FixedHistogram, MetricsRegistry, MetricsSnapshot, DEFAULT_BUCKETS};
pub use tracer::Tracer;
