//! A minimal JSON value: strict parser plus stable-order serializer.
//!
//! Producers across the workspace hand-write their JSON (stable field
//! order, no dependency risk), but two consumers need to read it back:
//! the bench crate's append-don't-clobber `BENCH_scale.json` merge, and
//! the farm's JSON-over-TCP wire protocol. This is a small strict
//! recursive-descent parser over the JSON grammar: objects, arrays,
//! strings (with escape sequences), f64 numbers, booleans, and null. It
//! lives here — the lowest shared layer — so neither consumer grows a
//! serde dependency or a copy of its own.

use std::collections::BTreeMap;

/// A parsed JSON value. Numbers are kept as `f64` — the bench files only
/// carry counters and timings, all exactly representable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` so re-serialization order is stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// This value as an object map, if it is one.
    pub fn as_obj(&self) -> Option<&std::collections::BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Serializes the value back to compact JSON (object keys in
    /// `BTreeMap` order). Round-trips everything this module can parse;
    /// integral numbers print without a fractional part.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    Json::Str(k.clone()).write(out);
                    out.push_str(": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are safe to re-derive).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("empty string tail")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {s:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "s": "x\ny"}"#)
            .unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            v.get("a")
                .and_then(|a| a.as_arr())
                .and_then(|a| a[2].as_f64()),
            Some(-300.0)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Null));
        assert_eq!(v.get("s").and_then(|s| s.as_str()), Some("x\ny"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = Json::parse(r#""éA""#).unwrap();
        assert_eq!(v.as_str(), Some("éA"));
    }

    #[test]
    fn serializer_round_trips() {
        let text = r#"{"entries": [{"n": 3456, "rate": 0.5, "tag": "1/8"}], "schema": 1}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.to_json()).unwrap(), v);
        assert_eq!(v.to_json(), text);
    }
}
