//! Atomistic systems over the shared MD engine.

use rand::rngs::StdRng;
use rand::SeedableRng;

use cg::engine::{ForceField, Integrator, MdSystem};

/// An all-atom system: the particle engine plus residue bookkeeping.
///
/// Atom types follow the source CG system's bead types (so the force-field
/// table carries over), and each residue groups the atoms backmapped from
/// one CG bead. `backbone[i]` is the representative (Cα-like) atom of
/// residue `i`, used for secondary-structure analysis.
#[derive(Debug, Clone)]
pub struct AaSystem {
    /// The particle system.
    pub sys: MdSystem,
    /// Force field (finer parameters than the CG source).
    pub ff: ForceField,
    /// Atom indices per residue.
    pub residues: Vec<Vec<usize>>,
    /// Representative backbone atom per protein residue.
    pub backbone: Vec<usize>,
    /// Integrator defaults (smaller dt than CG).
    pub integrator: Integrator,
    rng: StdRng,
}

impl AaSystem {
    /// Assembles an AA system from parts (used by the backmapper).
    ///
    /// # Panics
    /// Panics when a residue or backbone index is out of range.
    pub fn from_parts(
        sys: MdSystem,
        ff: ForceField,
        residues: Vec<Vec<usize>>,
        backbone: Vec<usize>,
        seed: u64,
    ) -> AaSystem {
        let n = sys.len();
        assert!(
            residues.iter().flatten().all(|&i| i < n),
            "residue atom index out of range"
        );
        assert!(
            backbone.iter().all(|&i| i < n),
            "backbone index out of range"
        );
        AaSystem {
            sys,
            ff,
            residues,
            backbone,
            integrator: Integrator {
                dt: 0.002,
                gamma: 2.0,
                kt: 0.25,
            },
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of atoms.
    pub fn n_atoms(&self) -> usize {
        self.sys.len()
    }

    /// Number of residues.
    pub fn n_residues(&self) -> usize {
        self.residues.len()
    }

    /// Advances `n` Langevin steps.
    pub fn run(&mut self, n: u64) {
        let ig = self.integrator;
        let ff = self.ff.clone();
        self.sys.run(&ff, &ig, &mut self.rng, n);
    }

    /// Restrained minimization cycle: bonds are stiffened by `restraint`
    /// while minimizing, mirroring the backmapping workflow's "cycles of
    /// energy minimization and position-restrained MD".
    pub fn minimize_restrained(&mut self, steps: usize, restraint: f64) -> (f64, f64) {
        let mut ff = self.ff.clone();
        for b in &mut ff.bonds {
            b.2 *= restraint.max(1.0);
        }
        self.sys.minimize(&ff, steps, 0.02)
    }

    /// Backbone positions (for secondary-structure analysis).
    pub fn backbone_positions(&self) -> Vec<[f64; 3]> {
        self.backbone.iter().map(|&i| self.sys.pos[i]).collect()
    }

    /// Simulated time.
    pub fn time(&self) -> f64 {
        self.sys.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg::engine::PairTable;

    fn toy() -> AaSystem {
        // 4 residues × 3 atoms along x.
        let mut pos = Vec::new();
        let mut residues = Vec::new();
        let mut backbone = Vec::new();
        let mut bonds = Vec::new();
        for r in 0..4 {
            let base = pos.len();
            for a in 0..3 {
                pos.push([r as f64 + 0.1 * a as f64, 5.0, 5.0]);
                if a > 0 {
                    bonds.push((base as u32 + a - 1, base as u32 + a, 30.0, 0.1));
                }
            }
            residues.push(vec![base, base + 1, base + 2]);
            backbone.push(base);
            if r > 0 {
                bonds.push(((base - 3) as u32, base as u32, 30.0, 1.0));
            }
        }
        let n = pos.len();
        let sys = MdSystem::new(pos, vec![0; n], [20.0, 20.0, 20.0]);
        let ff = ForceField {
            pairs: PairTable::uniform(1, 0.1, 0.01),
            cutoff: 1.0,
            bonds,
        };
        AaSystem::from_parts(sys, ff, residues, backbone, 5)
    }

    #[test]
    fn bookkeeping_is_consistent() {
        let s = toy();
        assert_eq!(s.n_atoms(), 12);
        assert_eq!(s.n_residues(), 4);
        assert_eq!(s.backbone_positions().len(), 4);
    }

    #[test]
    fn restrained_minimization_decreases_energy() {
        let mut s = toy();
        // Perturb positions to create strain.
        for p in &mut s.sys.pos {
            p[0] += 0.3;
            p[1] -= 0.2;
        }
        let (e0, e1) = s.minimize_restrained(100, 5.0);
        assert!(e1 <= e0);
    }

    #[test]
    fn dynamics_advance_time() {
        let mut s = toy();
        s.run(50);
        assert!((s.time() - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_backbone_index_panics() {
        let s = toy();
        let _ = AaSystem::from_parts(s.sys, s.ff, s.residues, vec![999], 0);
    }
}
