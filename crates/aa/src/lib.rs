//! The all-atom (fine) scale: an AMBER-like MD surrogate.
//!
//! The campaign's AA scale runs "the AMBER MD simulation package … one GPU
//! allocated to each simulation", averaging 1.575 M atoms, 13.98 ns/day per
//! GPU, one 18 MB frame every 10.3 minutes (§4.1(5)). The AA→CG feedback
//! computes "the secondary structures of the proteins … from AA frames" to
//! progressively refine the CG force-field parameters (§4.1(7)).
//!
//! This crate reuses the generic Langevin engine from [`cg::engine`] at
//! finer granularity and adds the AA-specific pieces:
//!
//! - [`AaSystem`] — an atomistic system with residue bookkeeping (each CG
//!   bead backmaps to one residue of several atoms);
//! - [`ss`] — secondary-structure assignment from backbone pseudo-dihedrals
//!   (helix / sheet / coil), the consensus operator the feedback uses, and
//!   the compact [`AaFrame`] record.

pub mod ss;
mod system;

pub use ss::{assign_ss, consensus, AaFrame, SsClass};
pub use system::AaSystem;
