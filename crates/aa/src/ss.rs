//! Secondary-structure assignment and the AA→CG feedback payload.
//!
//! "The secondary structures of the proteins are calculated from AA frames
//! and analyzed to determine the most common pattern of protein secondary
//! structure observed in the AA simulations. The force field parameters of
//! the CG protein model depend on the secondary structure" (§4.1(7)).
//!
//! Assignment uses the pseudo-dihedral of four consecutive backbone atoms,
//! the standard coarse proxy for DSSP: α-helices wind with dihedrals near
//! +50°, β-strands are nearly planar-extended (|dihedral| near 180°), and
//! everything else is coil.

use datastore::codec::{Array, Records};

/// Per-residue secondary-structure class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SsClass {
    /// α-helix.
    Helix,
    /// β-sheet / extended strand.
    Sheet,
    /// Random coil (also assigned to chain ends).
    Coil,
}

impl SsClass {
    /// Stable code for serialization.
    pub fn code(self) -> usize {
        match self {
            SsClass::Helix => 0,
            SsClass::Sheet => 1,
            SsClass::Coil => 2,
        }
    }

    /// Decodes a serialized class.
    pub fn from_code(c: usize) -> SsClass {
        match c {
            0 => SsClass::Helix,
            1 => SsClass::Sheet,
            _ => SsClass::Coil,
        }
    }

    /// One-letter DSSP-style label.
    pub fn letter(self) -> char {
        match self {
            SsClass::Helix => 'H',
            SsClass::Sheet => 'E',
            SsClass::Coil => 'C',
        }
    }
}

/// Signed dihedral angle (degrees) of four points.
fn dihedral(p0: [f64; 3], p1: [f64; 3], p2: [f64; 3], p3: [f64; 3]) -> f64 {
    let sub = |a: [f64; 3], b: [f64; 3]| [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
    let cross = |a: [f64; 3], b: [f64; 3]| {
        [
            a[1] * b[2] - a[2] * b[1],
            a[2] * b[0] - a[0] * b[2],
            a[0] * b[1] - a[1] * b[0],
        ]
    };
    let dot = |a: [f64; 3], b: [f64; 3]| a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
    let norm = |a: [f64; 3]| dot(a, a).sqrt();

    let b1 = sub(p0, p1);
    let b2 = sub(p1, p2);
    let b3 = sub(p2, p3);
    let n1 = cross(b1, b2);
    let n2 = cross(b2, b3);
    let m1 = cross(n1, [b2[0] / norm(b2), b2[1] / norm(b2), b2[2] / norm(b2)]);
    let x = dot(n1, n2);
    let y = dot(m1, n2);
    y.atan2(x).to_degrees()
}

/// Assigns a class to every residue from backbone positions. Chain ends
/// (fewer than four atoms around a residue) are coil.
pub fn assign_ss(backbone: &[[f64; 3]]) -> Vec<SsClass> {
    let n = backbone.len();
    let mut out = vec![SsClass::Coil; n];
    if n < 4 {
        return out;
    }
    for i in 1..n - 2 {
        let d = dihedral(
            backbone[i - 1],
            backbone[i],
            backbone[i + 1],
            backbone[i + 2],
        );
        out[i] = classify(d);
    }
    out
}

fn classify(dihedral_deg: f64) -> SsClass {
    // Helical winding puts the pseudo-dihedral near ±50° (sign depends on
    // handedness); extended strands are near-planar at ±180°.
    let a = dihedral_deg.abs();
    if (20.0..=80.0).contains(&a) {
        SsClass::Helix
    } else if a >= 150.0 {
        SsClass::Sheet
    } else {
        SsClass::Coil
    }
}

/// Per-residue majority vote across many frames — "the most common pattern
/// of protein secondary structure observed in the AA simulations".
/// Ties resolve Helix > Sheet > Coil (the CG model prefers the more
/// structured assignment). Returns an empty vector for no input.
pub fn consensus(frames: &[Vec<SsClass>]) -> Vec<SsClass> {
    let Some(first) = frames.first() else {
        return Vec::new();
    };
    let n = first.len();
    let mut out = Vec::with_capacity(n);
    for r in 0..n {
        let mut counts = [0usize; 3];
        for f in frames {
            if let Some(c) = f.get(r) {
                counts[c.code()] += 1;
            }
        }
        let best = (0..3)
            .max_by_key(|&c| (counts[c], std::cmp::Reverse(c)))
            .expect("three classes");
        out.push(SsClass::from_code(best));
    }
    out
}

/// A compact AA frame record: what the AA analysis ships to the feedback.
#[derive(Debug, Clone, PartialEq)]
pub struct AaFrame {
    /// Frame id: `<sim>:f<index>`.
    pub id: String,
    /// Simulation time of the frame (ns).
    pub time: f64,
    /// Per-residue secondary structure.
    pub ss: Vec<SsClass>,
}

impl AaFrame {
    /// Serializes the frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut rec = Records::new();
        rec.insert("time", Array::from_vec(vec![self.time]));
        rec.insert(
            "ss",
            Array::from_vec(self.ss.iter().map(|c| c.code() as f64).collect()),
        );
        rec.encode().to_vec()
    }

    /// Decodes a frame (the id comes from the namespace key).
    pub fn decode(id: &str, bytes: &[u8]) -> datastore::Result<AaFrame> {
        let rec = Records::decode(bytes)?;
        let need = |n: &str| {
            rec.get(n)
                .ok_or_else(|| datastore::DataError::Codec(format!("missing {n}")))
        };
        Ok(AaFrame {
            id: id.to_string(),
            time: need("time")?.data()[0],
            ss: need("ss")?
                .data()
                .iter()
                .map(|&c| SsClass::from_code(c as usize))
                .collect(),
        })
    }

    /// The DSSP-style pattern string, e.g. `"CHHHHC"`.
    pub fn pattern(&self) -> String {
        self.ss.iter().map(|c| c.letter()).collect()
    }
}

/// Generates an ideal α-helix backbone (for tests and synthetic AA data):
/// rise 1.5 Å → 0.15 nm per residue, 100° per turn, radius 0.23 nm.
pub fn ideal_helix(n: usize, origin: [f64; 3]) -> Vec<[f64; 3]> {
    (0..n)
        .map(|i| {
            let theta = (i as f64) * 100.0f64.to_radians();
            [
                origin[0] + 0.23 * theta.cos(),
                origin[1] + 0.23 * theta.sin(),
                origin[2] + 0.15 * i as f64,
            ]
        })
        .collect()
}

/// Generates an extended (β-strand-like) backbone.
pub fn ideal_strand(n: usize, origin: [f64; 3]) -> Vec<[f64; 3]> {
    (0..n)
        .map(|i| {
            [
                origin[0] + 0.35 * i as f64,
                origin[1] + if i % 2 == 0 { 0.05 } else { -0.05 },
                origin[2],
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helix_is_classified_as_helix() {
        let bb = ideal_helix(12, [5.0, 5.0, 2.0]);
        let ss = assign_ss(&bb);
        let helical = ss.iter().filter(|&&c| c == SsClass::Helix).count();
        assert!(helical >= 8, "expected mostly helix, got {ss:?}");
        // Ends are coil by construction.
        assert_eq!(ss[0], SsClass::Coil);
        assert_eq!(*ss.last().unwrap(), SsClass::Coil);
    }

    #[test]
    fn strand_is_classified_as_sheet() {
        let bb = ideal_strand(12, [1.0, 5.0, 5.0]);
        let ss = assign_ss(&bb);
        let sheet = ss.iter().filter(|&&c| c == SsClass::Sheet).count();
        assert!(sheet >= 8, "expected mostly sheet, got {ss:?}");
    }

    #[test]
    fn short_chains_are_all_coil() {
        assert_eq!(assign_ss(&ideal_helix(3, [0.0; 3])), vec![SsClass::Coil; 3]);
        assert!(assign_ss(&[]).is_empty());
    }

    #[test]
    fn consensus_takes_majority_per_residue() {
        use SsClass::*;
        let frames = vec![
            vec![Helix, Coil, Sheet],
            vec![Helix, Sheet, Sheet],
            vec![Coil, Sheet, Coil],
        ];
        assert_eq!(consensus(&frames), vec![Helix, Sheet, Sheet]);
        assert!(consensus(&[]).is_empty());
    }

    #[test]
    fn consensus_tiebreak_prefers_structure() {
        use SsClass::*;
        let frames = vec![vec![Helix], vec![Coil]];
        assert_eq!(consensus(&frames), vec![Helix]);
        let frames = vec![vec![Sheet], vec![Coil]];
        assert_eq!(consensus(&frames), vec![Sheet]);
    }

    #[test]
    fn frame_roundtrip_and_pattern() {
        use SsClass::*;
        let f = AaFrame {
            id: "aa-1:f3".into(),
            time: 2.5,
            ss: vec![Coil, Helix, Helix, Sheet],
        };
        assert_eq!(f.pattern(), "CHHE");
        let back = AaFrame::decode(&f.id, &f.encode()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn dihedral_signs_and_extremes() {
        // Planar zig-zag gives ±180°, right-handed twist gives positive.
        let d = dihedral(
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [1.0, -1.0, 0.0],
        );
        assert!((d.abs() - 180.0).abs() < 1e-6, "planar trans: {d}");
        let d = dihedral(
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [1.0, 0.0, 1.0],
        );
        assert!((d.abs() - 90.0).abs() < 1e-6, "perpendicular: {d}");
    }
}
