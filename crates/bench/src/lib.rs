//! Shared helpers for the figure-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `EXPERIMENTS.md` at the repository root for the index), and
//! prints the series as plain text tables so the output can be diffed,
//! plotted, or pasted next to the original.

use std::path::PathBuf;

use simcore::Histogram;
use trace::Tracer;

pub mod files;
pub use trace::json;

/// Tracing options shared by the figure binaries.
///
/// `--trace <path>` writes the run's virtual-time trace as JSONL (one
/// event per line, stable field order — byte-identical across same-seed
/// runs); `--trace-chrome <path>` writes the Chrome `trace_event` form,
/// loadable in Perfetto or `about:tracing`.
#[derive(Debug, Default)]
pub struct TraceOpts {
    /// Destination for the JSONL export, if requested.
    pub jsonl: Option<PathBuf>,
    /// Destination for the Chrome trace_event export, if requested.
    pub chrome: Option<PathBuf>,
}

impl TraceOpts {
    /// Parses `--trace <path>` / `--trace-chrome <path>` out of the
    /// process arguments (other flags are left for the binary to handle).
    pub fn from_args() -> TraceOpts {
        let mut opts = TraceOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trace" => {
                    let p = args.next().unwrap_or_else(|| {
                        eprintln!("--trace requires a path argument");
                        std::process::exit(2);
                    });
                    opts.jsonl = Some(PathBuf::from(p));
                }
                "--trace-chrome" => {
                    let p = args.next().unwrap_or_else(|| {
                        eprintln!("--trace-chrome requires a path argument");
                        std::process::exit(2);
                    });
                    opts.chrome = Some(PathBuf::from(p));
                }
                _ => {}
            }
        }
        opts
    }

    /// An enabled tracer when any trace output was requested, else the
    /// no-op handle — so untraced runs pay nothing.
    pub fn tracer(&self) -> Tracer {
        if self.jsonl.is_some() || self.chrome.is_some() {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        }
    }

    /// Writes the requested exports and reports where they went.
    pub fn finish(&self, tracer: &Tracer) {
        if let Some(path) = &self.jsonl {
            tracer.write_jsonl(path).unwrap_or_else(|e| {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            });
            eprintln!(
                "trace: {} events -> {}",
                tracer.event_count(),
                path.display()
            );
        }
        if let Some(path) = &self.chrome {
            tracer.write_chrome(path).unwrap_or_else(|e| {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            });
            eprintln!("chrome trace -> {}", path.display());
        }
    }
}

/// Parses the `--ticked` escape hatch shared by the campaign binaries:
/// present → the legacy fixed-interval sweep, absent → event-driven
/// next-event time advance (the default since the event-driven core
/// landed). Scheduled for removal once the ticked loop retires.
pub fn drive_mode_from_args() -> campaign::DriveMode {
    if std::env::args().skip(1).any(|a| a == "--ticked") {
        campaign::DriveMode::Ticked
    } else {
        campaign::DriveMode::EventDriven
    }
}

/// Parses the `--serial` differential-oracle toggle shared by the
/// campaign binaries: present → the event loop runs the legacy serial
/// body at every barrier, absent → the partitioned parallel loop (the
/// default). The two are byte-identical by contract (see DESIGN.md
/// § "Parallel event loop"), so this flag only ever changes wall clock —
/// CI diffs the traces of both flavors to hold that line.
pub fn serial_loop_from_args() -> bool {
    std::env::args().skip(1).any(|a| a == "--serial")
}

/// Applies the scheduler-policy flags shared by the campaign binaries:
/// `--policy <name>` selects the queue-ordering/backfill policy (see
/// [`sched::SchedPolicy::parse`] for names), `--workload <spec>` adds a
/// background job stream (a synthetic mix name or `trace:<path>`), and
/// `--legacy-sched` routes FCFS through the retained pre-split monolith
/// (the CI byte-identity oracle). Unknown names abort with the valid
/// set — a typo must not silently run the default policy.
pub fn apply_sched_args(cfg: &mut campaign::CampaignConfig) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(name) = args
        .iter()
        .position(|a| a == "--policy")
        .and_then(|i| args.get(i + 1))
    {
        cfg.sched_policy = sched::SchedPolicy::parse(name).unwrap_or_else(|| {
            let names: Vec<&str> = sched::SchedPolicy::ALL.iter().map(|p| p.name()).collect();
            panic!("unknown --policy {name:?}; expected one of {names:?}")
        });
    }
    if let Some(spec) = args
        .iter()
        .position(|a| a == "--workload")
        .and_then(|i| args.get(i + 1))
    {
        cfg.workload = Some(workload::WorkloadSpec::parse(spec).unwrap_or_else(|| {
            let names: Vec<String> = workload::WorkloadSpec::SYNTHETIC
                .iter()
                .map(|w| w.name())
                .collect();
            panic!("unknown --workload {spec:?}; expected trace:<path> or one of {names:?}")
        }));
    }
    cfg.legacy_sched = args.iter().any(|a| a == "--legacy-sched");
    if let Err(e) = cfg.validate() {
        panic!("invalid scheduler flags: {e}");
    }
}

/// Prints a two-column header followed by rows.
pub fn print_series(title: &str, xlabel: &str, ylabel: &str, rows: &[(f64, f64)]) {
    println!("## {title}");
    println!("{xlabel}\t{ylabel}");
    for (x, y) in rows {
        println!("{x:.6}\t{y:.6}");
    }
    println!();
}

/// Prints a histogram as `(bin_center, count)` rows plus an ASCII sketch.
pub fn print_histogram(title: &str, xlabel: &str, h: &Histogram) {
    println!("## {title}");
    println!("{xlabel}\tcount");
    for (x, c) in h.rows() {
        println!("{x:.4}\t{c}");
    }
    println!("{}", h.ascii(48));
}

/// Formats a big integer with thousands separators.
pub fn group_digits(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(1), "1");
        assert_eq!(group_digits(1034), "1,034");
        assert_eq!(group_digits(1_034_232_900), "1,034,232,900");
    }
}
