//! Shared helpers for the figure-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `EXPERIMENTS.md` at the repository root for the index), and
//! prints the series as plain text tables so the output can be diffed,
//! plotted, or pasted next to the original.

use simcore::Histogram;

/// Prints a two-column header followed by rows.
pub fn print_series(title: &str, xlabel: &str, ylabel: &str, rows: &[(f64, f64)]) {
    println!("## {title}");
    println!("{xlabel}\t{ylabel}");
    for (x, y) in rows {
        println!("{x:.6}\t{y:.6}");
    }
    println!();
}

/// Prints a histogram as `(bin_center, count)` rows plus an ASCII sketch.
pub fn print_histogram(title: &str, xlabel: &str, h: &Histogram) {
    println!("## {title}");
    println!("{xlabel}\tcount");
    for (x, c) in h.rows() {
        println!("{x:.4}\t{c}");
    }
    println!("{}", h.ascii(48));
}

/// Formats a big integer with thousands separators.
pub fn group_digits(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(1), "1");
        assert_eq!(group_digits(1034), "1,034");
        assert_eq!(group_digits(1_034_232_900), "1,034,232,900");
    }
}
