//! The two bench-artifact file formats and the scale file's
//! append-don't-clobber merge.
//!
//! `BENCH_campaign.json` (schema 1) is a single-object snapshot of the
//! smoke benchmark: `bench`, `schema`, `schedule`, the `ticked` and
//! `event_driven` phase objects, and the speedup. It is rewritten whole
//! on every run.
//!
//! `BENCH_scale.json` (schema 1) is a *trajectory*: `bench`, `schema`,
//! and an `entries` array with one object per measured rung per
//! invocation. New measurements append to the array — the file
//! accumulates the repo's scale history instead of being clobbered.

use crate::json::Json;

/// Current layout version of both bench files.
pub const SCHEMA: u64 = 1;

/// Extracts the existing `entries` of a scale file, re-serialized one
/// compact JSON object per element. `Err` if the text is not valid JSON
/// (callers typically warn and start fresh).
pub fn scale_entries(text: &str) -> Result<Vec<String>, String> {
    let v = Json::parse(text)?;
    Ok(v.get("entries")
        .and_then(|e| e.as_arr())
        .unwrap_or(&[])
        .iter()
        .map(|e| e.to_json())
        .collect())
}

/// Renders a complete scale file from compact per-entry JSON strings.
pub fn render_scale_file(entries: &[String]) -> String {
    let mut json =
        format!("{{\n  \"bench\": \"scale-ladder\",\n  \"schema\": {SCHEMA},\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str("    ");
        json.push_str(e);
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

/// The append-don't-clobber merge: existing entries (if `existing` holds
/// a parseable scale file) followed by `new_entries`, rendered as the
/// next file contents. Returns the rendered text, the total entry
/// count, and a warning when the existing text had to be discarded.
pub fn merge_scale_file(
    existing: Option<&str>,
    new_entries: Vec<String>,
) -> (String, usize, Option<String>) {
    let mut warning = None;
    let mut entries = match existing.map(scale_entries) {
        Some(Ok(old)) => old,
        Some(Err(e)) => {
            warning = Some(format!(
                "existing scale file is not valid JSON ({e}); starting fresh"
            ));
            Vec::new()
        }
        None => Vec::new(),
    };
    entries.extend(new_entries);
    let text = render_scale_file(&entries);
    let n = entries.len();
    (text, n, warning)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    /// A representative smoke snapshot, as `selfbench` writes it.
    const CAMPAIGN: &str = r#"{
  "bench": "campaign-smoke",
  "schema": 1,
  "schedule": "table1 --smoke",
  "poll_interval_millis": 50,
  "virtual_seconds": 21600,
  "ticked": {"wall_seconds": 0.061575, "virtual_per_wall": 350793.3, "peak_rss_kib": 4668, "jobs_placed": 254, "driver_iterations": 432002},
  "event_driven": {"wall_seconds": 0.007982, "virtual_per_wall": 2705983.6, "peak_rss_kib": 4428, "jobs_placed": 253, "driver_iterations": 1472},
  "speedup_event_over_ticked": 7.71
}
"#;

    /// A representative scale trajectory, as `selfbench --scale` writes it.
    const SCALE: &str = r#"{
  "bench": "scale-ladder",
  "schema": 1,
  "entries": [
    {"rung": "1/8", "nodes": 576, "gpus": 3456, "virtual_hours": 16, "engine": "linear", "wall_seconds": 1.2, "virtual_per_wall": 48000.0, "peak_rss_kib": 21772, "jobs_placed": 3456, "driver_iterations": 14611, "peak_concurrent_gpu_jobs": 3456, "steady_gpu_occupancy": 99.50},
    {"rung": "1/8", "nodes": 576, "gpus": 3456, "virtual_hours": 16, "engine": "indexed", "wall_seconds": 0.26, "virtual_per_wall": 221538.4, "peak_rss_kib": 22444, "jobs_placed": 3456, "driver_iterations": 14611, "peak_concurrent_gpu_jobs": 3456, "steady_gpu_occupancy": 99.50, "speedup_vs_linear": 4.67}
  ]
}
"#;

    #[test]
    fn campaign_file_parses_with_schema() {
        let v = Json::parse(CAMPAIGN).expect("campaign file parses");
        assert_eq!(
            v.get("bench").and_then(|b| b.as_str()),
            Some("campaign-smoke")
        );
        assert_eq!(
            v.get("schema").and_then(|s| s.as_f64()),
            Some(SCHEMA as f64)
        );
        let ticked = v.get("ticked").expect("ticked phase");
        assert_eq!(
            ticked.get("jobs_placed").and_then(|j| j.as_f64()),
            Some(254.0)
        );
        let event = v.get("event_driven").expect("event-driven phase");
        assert_eq!(
            event.get("driver_iterations").and_then(|j| j.as_f64()),
            Some(1472.0)
        );
        assert_eq!(
            v.get("speedup_event_over_ticked").and_then(|s| s.as_f64()),
            Some(7.71)
        );
    }

    #[test]
    fn scale_file_parses_with_schema_and_entries() {
        let v = Json::parse(SCALE).expect("scale file parses");
        assert_eq!(
            v.get("bench").and_then(|b| b.as_str()),
            Some("scale-ladder")
        );
        assert_eq!(
            v.get("schema").and_then(|s| s.as_f64()),
            Some(SCHEMA as f64)
        );
        let entries = v.get("entries").and_then(|e| e.as_arr()).expect("entries");
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[0].get("engine").and_then(|e| e.as_str()),
            Some("linear")
        );
        assert_eq!(
            entries[1].get("speedup_vs_linear").and_then(|s| s.as_f64()),
            Some(4.67)
        );
        assert_eq!(
            entries[1]
                .get("peak_concurrent_gpu_jobs")
                .and_then(|p| p.as_f64()),
            Some(3456.0)
        );
    }

    #[test]
    fn merge_appends_without_clobbering() {
        let new = vec![r#"{"rung": "1/64", "engine": "indexed"}"#.to_string()];
        let (text, n, warning) = merge_scale_file(Some(SCALE), new);
        assert_eq!(n, 3);
        assert!(warning.is_none());
        let v = Json::parse(&text).expect("merged file parses");
        let entries = v.get("entries").and_then(|e| e.as_arr()).expect("entries");
        assert_eq!(entries.len(), 3);
        // Old entries survive in order, with their fields intact.
        assert_eq!(
            entries[0].get("engine").and_then(|e| e.as_str()),
            Some("linear")
        );
        assert_eq!(
            entries[1].get("speedup_vs_linear").and_then(|s| s.as_f64()),
            Some(4.67)
        );
        assert_eq!(
            entries[2].get("rung").and_then(|r| r.as_str()),
            Some("1/64")
        );

        // Merging twice keeps accumulating.
        let (text2, n2, _) = merge_scale_file(
            Some(&text),
            vec![r#"{"rung": "1/2", "engine": "indexed"}"#.to_string()],
        );
        assert_eq!(n2, 4);
        let v2 = Json::parse(&text2).expect("re-merged file parses");
        assert_eq!(
            v2.get("entries").and_then(|e| e.as_arr()).map(|a| a.len()),
            Some(4)
        );
    }

    #[test]
    fn merge_from_nothing_or_garbage_starts_fresh() {
        let entry = vec![r#"{"rung": "1/8"}"#.to_string()];
        let (text, n, warning) = merge_scale_file(None, entry.clone());
        assert_eq!(n, 1);
        assert!(warning.is_none());
        assert!(Json::parse(&text).is_ok());

        let (text, n, warning) = merge_scale_file(Some("not json {"), entry);
        assert_eq!(n, 1);
        assert!(warning.is_some());
        let v = Json::parse(&text).expect("fresh file parses");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_f64()),
            Some(SCHEMA as f64)
        );
    }
}
