//! Service-level benchmark of the networked store tier (`BENCH_store.json`).
//!
//! Figure 7 at production traffic shape: where `fig7` measures the
//! in-process 20-shard cluster under a modeled interconnect, this bench
//! drives a real `StoreServer` over TCP from concurrent clients — every
//! op pays encode → syscall → dispatch → decode for real. Three op
//! families, matching the paper's query mix ("∽10,000 queries (retrieval
//! of keys) and deletions … and ∽2000 reads (retrieval of values) per
//! second" against 20 Redis nodes):
//!
//! * **key scan** — incremental `SCAN` pages over each client's own
//!   pattern until the cursor drains;
//! * **value fetch** — `get_many` in fixed batches, positionally
//!   checked;
//! * **delete** — `del_many` in fixed batches.
//!
//! Each family runs at every rung of a frame ladder with ~17 KB RDF
//! payloads, from `--clients` concurrent connections (≥8 by default),
//! reporting ops/sec per rung plus client-side round-trip percentiles
//! at the largest rung.
//!
//! Two protocol claims are asserted, not just reported:
//!
//! * pipelining: a depth-64 GET batch through `call_pipelined` must beat
//!   64 ping-pong round trips by ≥5× — this is what the seq-id-matched
//!   framing exists for;
//! * batching: one `put_many` round trip must beat the same keys written
//!   one `put` at a time by ≥2×.
//!
//! Latency is measured with host `Instant` stamps at the client edge
//! only; the store itself is wall-clock-free.
//!
//! Usage:
//!   store_bench [--clients <n>] [--shards <n>] [--depth <n>]
//!               [--quick] [--out <path>]

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use bytes::Bytes;
use storeserver::{Request, Response, StoreClient, StoreEngine, StoreServer};

/// RDF payload size: each CG analysis writes ~17 KB per frame interval.
const VALUE_BYTES: usize = 17 * 1024;
/// Keys per batched round trip (get_many / del_many / preload put_many).
const BATCH: usize = 256;
/// SCAN page size.
const SCAN_COUNT: u32 = 512;

struct Args {
    clients: usize,
    shards: usize,
    depth: usize,
    quick: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 8,
        shards: 20,
        depth: 64,
        quick: false,
        out: "BENCH_store.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--clients" => args.clients = take("--clients").parse().expect("--clients"),
            "--shards" => args.shards = take("--shards").parse().expect("--shards"),
            "--depth" => args.depth = take("--depth").parse().expect("--depth"),
            "--quick" => args.quick = true,
            "--out" => args.out = take("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(args.clients >= 1, "--clients must be at least 1");
    args
}

/// Percentile by nearest-rank on a sorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One client's share of the rung: the keys it owns, preloaded and then
/// scanned / fetched / deleted only by it. Hash tags spread the share
/// across shards exactly like the CG feedback keys in `fig7`.
fn share_keys(client: usize, n_total: u64, clients: usize) -> Vec<String> {
    (0..n_total)
        .filter(|i| (*i as usize) % clients == client)
        .map(|i| format!("rdf:c{client}:{{s{}}}:f{i}", i % 3600))
        .collect()
}

/// Per-rung, per-family results from one client thread.
struct ClientRun {
    scan_ms: Vec<f64>,
    fetch_ms: Vec<f64>,
    delete_ms: Vec<f64>,
}

/// Throughput over a family's wall window (shared across clients).
struct Family {
    ops_per_sec: f64,
    round_trip_ms: Vec<f64>,
}

struct Rung {
    frames: u64,
    scan: Family,
    fetch: Family,
    delete: Family,
}

fn run_rung(addr: std::net::SocketAddr, frames: u64, clients: usize) -> Rung {
    let payload = Bytes::from(vec![7u8; VALUE_BYTES]);

    // Preload: every client writes its own share in batched round trips.
    thread::scope(|s| {
        for c in 0..clients {
            let payload = payload.clone();
            s.spawn(move || {
                let mut client = StoreClient::connect(addr).expect("connect");
                let keys = share_keys(c, frames, clients);
                for chunk in keys.chunks(BATCH) {
                    let pairs: Vec<(String, Bytes)> =
                        chunk.iter().map(|k| (k.clone(), payload.clone())).collect();
                    let fresh = client.put_many(pairs).expect("put_many");
                    assert_eq!(fresh as usize, chunk.len(), "preload keys collided");
                }
            });
        }
    });

    // The three families, in Fig 7's order, each timed across all
    // clients: wall window opens before the first thread spawns and
    // closes when the slowest client finishes.
    let mut runs: Vec<ClientRun> = Vec::new();
    let mut windows = [0.0f64; 3];
    for (phase, window) in windows.iter_mut().enumerate() {
        let t0 = Instant::now();
        let phase_runs: Vec<ClientRun> = thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    s.spawn(move || {
                        let mut client = StoreClient::connect(addr).expect("connect");
                        let keys = share_keys(c, frames, clients);
                        let mut run = ClientRun {
                            scan_ms: Vec::new(),
                            fetch_ms: Vec::new(),
                            delete_ms: Vec::new(),
                        };
                        match phase {
                            0 => {
                                // Key scan: page the client's pattern
                                // until the cursor drains.
                                let pattern = format!("rdf:c{c}:*");
                                let mut seen = 0usize;
                                let mut cursor = 0u64;
                                loop {
                                    let t = Instant::now();
                                    let (page, next) =
                                        client.scan(&pattern, cursor, SCAN_COUNT).expect("scan");
                                    run.scan_ms.push(t.elapsed().as_secs_f64() * 1e3);
                                    seen += page.len();
                                    match next {
                                        Some(n) => cursor = n,
                                        None => break,
                                    }
                                }
                                assert_eq!(seen, keys.len(), "scan missed keys");
                            }
                            1 => {
                                // Value fetch: batched, positionally
                                // verified against the preload payload.
                                for chunk in keys.chunks(BATCH) {
                                    let t = Instant::now();
                                    let values = client.get_many(chunk.to_vec()).expect("get_many");
                                    run.fetch_ms.push(t.elapsed().as_secs_f64() * 1e3);
                                    assert!(
                                        values.iter().all(|v| v
                                            .as_ref()
                                            .is_some_and(|b| b.len() == VALUE_BYTES)),
                                        "fetched value missing or truncated"
                                    );
                                }
                            }
                            _ => {
                                // Delete: batched, counted.
                                let mut gone = 0u64;
                                for chunk in keys.chunks(BATCH) {
                                    let t = Instant::now();
                                    gone += client.del_many(chunk.to_vec()).expect("del_many");
                                    run.delete_ms.push(t.elapsed().as_secs_f64() * 1e3);
                                }
                                assert_eq!(gone as usize, keys.len(), "delete lost keys");
                            }
                        }
                        run
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        *window = t0.elapsed().as_secs_f64();
        if phase == 0 {
            runs = phase_runs;
        } else {
            for (acc, r) in runs.iter_mut().zip(phase_runs) {
                acc.fetch_ms.extend(r.fetch_ms);
                acc.delete_ms.extend(r.delete_ms);
            }
        }
    }

    let collect = |f: fn(&ClientRun) -> &Vec<f64>| -> Vec<f64> {
        let mut all: Vec<f64> = runs.iter().flat_map(|r| f(r).iter().copied()).collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        all
    };
    Rung {
        frames,
        scan: Family {
            ops_per_sec: frames as f64 / windows[0],
            round_trip_ms: collect(|r| &r.scan_ms),
        },
        fetch: Family {
            ops_per_sec: frames as f64 / windows[1],
            round_trip_ms: collect(|r| &r.fetch_ms),
        },
        delete: Family {
            ops_per_sec: frames as f64 / windows[2],
            round_trip_ms: collect(|r| &r.delete_ms),
        },
    }
}

/// Depth-`depth` pipelined GETs vs the same GETs ping-pong, repeated
/// over several rounds; returns (pipelined ops/sec, serial ops/sec).
fn pipelining(addr: std::net::SocketAddr, depth: usize, rounds: usize) -> (f64, f64) {
    let mut client = StoreClient::connect(addr).expect("connect");
    let keys: Vec<String> = (0..depth).map(|i| format!("pipe:{{p{i}}}")).collect();
    for k in &keys {
        client
            .put(k, Bytes::from_static(b"pipelined"))
            .expect("put");
    }
    let batch: Vec<Request> = keys
        .iter()
        .map(|k| Request::Get { key: k.clone() })
        .collect();

    // Warm both paths once so neither pays first-touch costs.
    client.call_pipelined(&batch).expect("warm pipelined");
    for k in &keys {
        client.get(k).expect("warm get");
    }

    let t0 = Instant::now();
    for _ in 0..rounds {
        let responses = client.call_pipelined(&batch).expect("pipelined");
        assert!(
            responses
                .iter()
                .all(|r| matches!(r, Response::Value(Some(_)))),
            "pipelined GET missed"
        );
    }
    let piped = (depth * rounds) as f64 / t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for _ in 0..rounds {
        for k in &keys {
            assert!(
                client.get(k).expect("get").is_some(),
                "ping-pong GET missed"
            );
        }
    }
    let serial = (depth * rounds) as f64 / t0.elapsed().as_secs_f64();

    for k in &keys {
        client.del(k).expect("del");
    }
    (piped, serial)
}

/// One `put_many` round trip vs the same keys one `put` at a time;
/// returns (batched ops/sec, singles ops/sec).
///
/// Measured with small values: batching amortizes the per-round-trip
/// syscall pair and framing, and that overhead is what this comparison
/// isolates. At 17 KB the wire is memcpy-bound and both paths converge
/// on memory bandwidth (the ladder above already covers that regime).
fn batching(addr: std::net::SocketAddr, rounds: usize) -> (f64, f64) {
    let mut client = StoreClient::connect(addr).expect("connect");
    let payload = Bytes::from(vec![3u8; 64]);
    let keys: Vec<String> = (0..BATCH).map(|i| format!("batch:{{b{i}}}")).collect();
    let pairs: Vec<(String, Bytes)> = keys.iter().map(|k| (k.clone(), payload.clone())).collect();

    // Warm: first write allocates shard slots for both paths.
    client.put_many(pairs.clone()).expect("warm put_many");

    let t0 = Instant::now();
    for _ in 0..rounds {
        client.put_many(pairs.clone()).expect("put_many");
    }
    let batched = (BATCH * rounds) as f64 / t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for _ in 0..rounds {
        for (k, v) in &pairs {
            client.put(k, v.clone()).expect("put");
        }
    }
    let singles = (BATCH * rounds) as f64 / t0.elapsed().as_secs_f64();

    let gone = client.del_many(keys).expect("del_many");
    assert_eq!(gone as usize, BATCH);
    (batched, singles)
}

fn family_json(name: &str, rungs: &[Rung], pick: fn(&Rung) -> &Family) -> String {
    let rows: Vec<String> = rungs
        .iter()
        .map(|r| format!("[{}, {:.1}]", r.frames, pick(r).ops_per_sec))
        .collect();
    let tail = pick(rungs.last().expect("at least one rung"));
    format!(
        concat!(
            "  \"{}\": {{\n",
            "    \"frames_vs_ops_per_sec\": [{}],\n",
            "    \"round_trip_ms\": {{ \"p50\": {:.3}, \"p99\": {:.3} }}\n",
            "  }}"
        ),
        name,
        rows.join(", "),
        percentile(&tail.round_trip_ms, 50.0),
        percentile(&tail.round_trip_ms, 99.0),
    )
}

fn main() {
    let args = parse_args();
    let ladder: &[u64] = if args.quick {
        &[1_000, 2_000]
    } else {
        &[5_000, 10_000, 20_000, 40_000]
    };
    let rounds = if args.quick { 10 } else { 50 };

    let engine = Arc::new(StoreEngine::in_memory(args.shards));
    let server = StoreServer::start(Arc::clone(&engine), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();
    eprintln!(
        "store_bench: {} shards, {} clients, {} B values, ladder {:?}, serving {addr}",
        args.shards, args.clients, VALUE_BYTES, ladder
    );

    let rungs: Vec<Rung> = ladder
        .iter()
        .map(|&frames| {
            let rung = run_rung(addr, frames, args.clients);
            eprintln!(
                "store_bench: {frames} frames — scan {:.0}/s, fetch {:.0}/s, delete {:.0}/s",
                rung.scan.ops_per_sec, rung.fetch.ops_per_sec, rung.delete.ops_per_sec
            );
            rung
        })
        .collect();

    let (piped, pingpong) = pipelining(addr, args.depth, rounds);
    let pipeline_speedup = piped / pingpong;
    let (batched, singles) = batching(addr, rounds);
    let batch_speedup = batched / singles;
    eprintln!(
        "store_bench: pipelining depth {} {:.1}x over ping-pong, put_many {:.1}x over singles",
        args.depth, pipeline_speedup, batch_speedup
    );
    // The protocol claims this bench exists to witness. Pipelining
    // amortizes the per-round-trip syscall pair across `depth` ops;
    // batching amortizes it across BATCH ops and skips per-op framing.
    assert!(
        pipeline_speedup >= 5.0,
        "depth-{} pipelined GETs ran at only {pipeline_speedup:.2}x ping-pong (need >= 5x)",
        args.depth
    );
    assert!(
        batch_speedup >= 2.0,
        "put_many ran at only {batch_speedup:.2}x single puts (need >= 2x)"
    );

    // The ladder deleted everything it wrote; a leak here means a
    // family lied about its counts.
    let mut admin = StoreClient::connect(addr).expect("connect");
    let stats = admin.stats().expect("stats");
    assert_eq!(stats.keys, 0, "ladder left keys behind");
    drop(admin);
    server.stop();

    let families = [
        family_json("key_scan", &rungs, |r| &r.scan),
        family_json("value_fetch", &rungs, |r| &r.fetch),
        family_json("delete", &rungs, |r| &r.delete),
    ];
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"store\",\n",
            "  \"schema\": 1,\n",
            "  \"shards\": {},\n",
            "  \"clients\": {},\n",
            "  \"value_bytes\": {},\n",
            "  \"batch\": {},\n",
            "{},\n",
            "  \"pipelining\": {{ \"depth\": {}, \"gets_per_sec\": {:.1}, ",
            "\"pingpong_gets_per_sec\": {:.1}, \"speedup\": {:.2} }},\n",
            "  \"batching\": {{ \"batch\": {}, \"value_bytes\": 64, \"puts_per_sec\": {:.1}, ",
            "\"single_puts_per_sec\": {:.1}, \"speedup\": {:.2} }}\n",
            "}}\n"
        ),
        args.shards,
        args.clients,
        VALUE_BYTES,
        BATCH,
        families.join(",\n"),
        args.depth,
        piped,
        pingpong,
        pipeline_speedup,
        BATCH,
        batched,
        singles,
        batch_speedup
    );
    std::fs::write(&args.out, &json).expect("write bench file");
    eprintln!("store_bench: wrote {}", args.out);
}
