//! Figure 3: distributions of CG and AA simulation lengths.
//!
//! "MuMMI enabled a large three-scale simulation of RAS-RAF-PM
//! interactions probed using thousands of CG and AA simulations with
//! varying lengths" — CG up to 5 µs (34,523 sims), AA 50–65 ns (9,632
//! sims). The campaign DES reproduces the shape: a broad mass of short
//! trajectories from late-spawned simulations plus a spike at the target
//! length for those that ran to completion across restarts.

use campaign::{Campaign, CampaignConfig};
use mummi_bench::print_histogram;
use simcore::Histogram;

fn main() {
    let mut c = Campaign::new(CampaignConfig {
        mode: mummi_bench::drive_mode_from_args(),
        serial_loop: mummi_bench::serial_loop_from_args(),
        ..CampaignConfig::default()
    });
    // A shortened but multi-restart schedule: enough 24 h runs for many
    // sims to reach the 5 µs CG target (~5 days at 1.04 µs/day).
    for _ in 0..8 {
        c.execute_run(1000, 24);
    }

    let cg = c.cg_lengths();
    let aa = c.aa_lengths();

    let mut h_cg = Histogram::new(0.0, 5.000001, 25);
    h_cg.add_all(&cg);
    print_histogram(
        &format!(
            "Figure 3 (left): CG simulation lengths (µs), total = {}",
            cg.len()
        ),
        "length_us",
        &h_cg,
    );

    let mut h_aa = Histogram::new(0.0, 70.0, 28);
    h_aa.add_all(&aa);
    print_histogram(
        &format!(
            "Figure 3 (right): AA simulation lengths (ns), total = {}",
            aa.len()
        ),
        "length_ns",
        &h_aa,
    );

    let cg_total_us: f64 = cg.iter().sum();
    let aa_total_ns: f64 = aa.iter().sum();
    println!(
        "accumulated CG trajectory: {:.2} µs  (paper: 96.67 ms across 34,523 sims)",
        cg_total_us
    );
    println!(
        "accumulated AA trajectory: {:.2} ns  (paper: 326 µs across 9,632 sims)",
        aa_total_ns
    );
    let at_cap = cg.iter().filter(|&&l| l >= 5.0 - 1e-9).count();
    println!(
        "CG sims that reached the 5 µs cap: {} of {} — the spike at the right edge",
        at_cap,
        cg.len()
    );
}
