//! §4.3 / §5.2: job submission and placement rates.
//!
//! "The jobs are placed at a steady rate of about 100 jobs per min — an
//! almost 3× improvement as compared to the previous work (2040 jobs in
//! one hour), not accounting for the fact that the jobs are now placed on
//! specific GPUs rather than on complete nodes."
//!
//! We measure the *sustainable* placement rate of the unbundled pipeline
//! on a 1000-node allocation by oversubmitting (200 jobs/min) and counting
//! placements, then compare against the prior work's published bundled
//! rate. A bundled run on the same engine demonstrates the granularity
//! difference (jobs hold whole nodes).

use resources::{JobShape, MachineSpec, MatchPolicy, ResourceGraph};
use sched::{Costs, Coupling, JobClass, JobEvent, JobSpec, SchedEngine, Throttle};
use simcore::{SimDuration, SimTime};

/// Prior MuMMI on Sierra: "2040 jobs in one hour".
const PRIOR_JOBS_PER_MIN: f64 = 2040.0 / 60.0;

fn main() {
    println!("# Job placement rates (1000-node allocation, campaign scheduler costs)\n");

    // Submit at the campaign's throttled 100 jobs/min and verify the
    // pipeline keeps pace (placements track submissions with no backlog).
    let minutes = 45;
    let placed = run(JobShape::sim_standard(), 100, minutes);
    let rate = placed as f64 / minutes as f64;
    println!(
        "unbundled (1 GPU/job): {placed} placements in {minutes} min -> {rate:.0} jobs/min sustained at the 100/min throttle"
    );
    println!("paper: ~100 jobs/min steady placement at 1000 nodes\n");

    // The same engine placing bundled node-jobs (granularity comparison).
    let bundles = run(JobShape::sim_bundled(6, 2), 200, 5);
    println!(
        "bundled (6 GPUs/job): {bundles} bundles in 5 min — each holds a whole node until its *last* simulation ends (worst-case utilization 1/6)",
    );

    println!(
        "\nimprovement over prior work's published rate ({PRIOR_JOBS_PER_MIN:.0} jobs/min): {:.1}×   (paper: almost 3×)",
        rate / PRIOR_JOBS_PER_MIN
    );
    println!("and each job now maps to a specific GPU rather than a complete node");
}

/// Submits `shape` jobs at `rate_per_min` for `minutes`, returns placements.
/// (Under synchronous Q↔R coupling, oversubmitting starves the matcher —
/// exactly the Figure 6 bottleneck — so the throttle is part of the design.)
fn run(shape: JobShape, rate_per_min: u64, minutes: u64) -> u64 {
    let graph = ResourceGraph::new(MachineSpec::summit_allocation(1000));
    let mut engine = SchedEngine::new(
        graph,
        MatchPolicy::LowIdExhaustive,
        Coupling::Synchronous,
        Costs::summit_campaign(),
    );
    let mut throttle = Throttle::per_minute(rate_per_min);
    let end = SimTime::from_mins(minutes);
    let mut t = SimTime::ZERO;
    let mut placed = 0u64;
    while t <= end {
        for _ in 0..rate_per_min {
            let at = throttle.reserve(t);
            if at > t + SimDuration::from_mins(1) {
                break;
            }
            engine.submit(
                JobSpec::new(JobClass::CgSim, shape, SimDuration::from_hours(24)),
                at,
            );
        }
        for e in engine.advance(t) {
            if matches!(e, JobEvent::Placed { .. }) {
                placed += 1;
            }
        }
        t += SimDuration::from_mins(1);
    }
    placed
}
