//! Figure 4: per-scale simulation performance through MuMMI.
//!
//! Left: continuum throughput distribution (modes per allocation size).
//! Middle: CG µs/day vs particle count, with the ddcMD-MPI slowdown
//! episode visible as a low shoulder. Right: AA ns/day vs atom count.

use campaign::{Campaign, CampaignConfig};
use mummi_bench::{print_histogram, print_series};
use simcore::{Histogram, Summary};

fn main() {
    let mut c = Campaign::new(CampaignConfig {
        mode: mummi_bench::drive_mode_from_args(),
        serial_loop: mummi_bench::serial_loop_from_args(),
        ..CampaignConfig::default()
    });
    // Mixed allocation sizes create the multi-modal continuum distribution.
    for &(nodes, hours) in &[(100u32, 6u64), (100, 12), (500, 12), (1000, 24), (1000, 24)] {
        c.execute_run(nodes, hours);
    }

    // Left: continuum performance histogram (ms/day).
    let mut h = Histogram::new(0.0, 1.1, 44);
    h.add_all(c.continuum_samples());
    print_histogram(
        &format!(
            "Figure 4 (left): continuum performance (ms/day), {} frames",
            c.continuum_samples().len()
        ),
        "ms_per_day",
        &h,
    );

    // Middle: CG performance vs system size (binned means).
    let cg = binned_stats(c.cg_samples(), 10);
    print_series(
        "Figure 4 (middle): CG performance vs system size",
        "particles",
        "us_per_day_mean",
        &cg.iter().map(|r| (r.0, r.1)).collect::<Vec<_>>(),
    );
    print_series(
        "Figure 4 (middle, spread): CG performance min/max per size bin",
        "particles",
        "us_per_day_min_max",
        &cg.iter()
            .flat_map(|r| [(r.0, r.2), (r.0, r.3)])
            .collect::<Vec<_>>(),
    );
    let rates: Vec<f64> = c.cg_samples().iter().map(|s| s.1).collect();
    let s = Summary::of(&rates);
    println!(
        "CG overall: mean {:.3} µs/day (std {:.3}); paper benchmark 1.04 µs/day with a ~20% MPI-bug shoulder\n",
        s.mean, s.std
    );

    // Right: AA performance vs atoms.
    let aa = binned_stats(c.aa_samples(), 10);
    print_series(
        "Figure 4 (right): AA performance vs system size",
        "atoms",
        "ns_per_day_mean",
        &aa.iter().map(|r| (r.0, r.1)).collect::<Vec<_>>(),
    );
    let rates: Vec<f64> = c.aa_samples().iter().map(|s| s.1).collect();
    let s = Summary::of(&rates);
    println!(
        "AA overall: mean {:.2} ns/day (std {:.2}); paper benchmark 13.98 ns/day",
        s.mean, s.std
    );
}

/// Bins (size, rate) samples by size; returns (bin center, mean, min, max).
fn binned_stats(samples: &[(f64, f64)], bins: usize) -> Vec<(f64, f64, f64, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    let lo = samples.iter().map(|s| s.0).fold(f64::INFINITY, f64::min);
    let hi = samples
        .iter()
        .map(|s| s.0)
        .fold(f64::NEG_INFINITY, f64::max)
        + 1e-9;
    let mut acc: Vec<Vec<f64>> = vec![Vec::new(); bins];
    for &(size, rate) in samples {
        let b = (((size - lo) / (hi - lo)) * bins as f64) as usize;
        acc[b.min(bins - 1)].push(rate);
    }
    (0..bins)
        .filter(|&b| !acc[b].is_empty())
        .map(|b| {
            let center = lo + (b as f64 + 0.5) * (hi - lo) / bins as f64;
            let s = Summary::of(&acc[b]);
            (center, s.mean, s.min, s.max)
        })
        .collect()
}
