//! Ablation: Q↔R coupling × matcher policy across machine sizes.
//!
//! Extends Figure 6 into a design-space sweep: how long does it take to
//! place a full machine's worth of unbundled GPU jobs under each of the
//! four scheduler configurations, at 500–4000 nodes? This is the study
//! behind the paper's "Strategies for Further Scaling" — the synchronous
//! exhaustive configuration degrades super-linearly with machine size
//! while first-match + async stays submission-limited.

use resources::{JobShape, MachineSpec, MatchPolicy, ResourceGraph};
use sched::{Costs, Coupling, JobClass, JobEvent, JobSpec, SchedEngine, Throttle};
use simcore::{SimDuration, SimTime};

fn time_to_place(nodes: u32, policy: MatchPolicy, coupling: Coupling) -> (u64, f64) {
    let gpus = nodes as u64 * 6;
    let mut engine = SchedEngine::new(
        ResourceGraph::new(MachineSpec::summit_allocation(nodes)),
        policy,
        coupling,
        Costs::summit_campaign(),
    );
    // Submit the full GPU partition's worth at the campaign throttle.
    let mut throttle = Throttle::per_minute(100);
    let mut at = SimTime::ZERO;
    for _ in 0..gpus {
        at = throttle.reserve(at);
        engine.submit(
            JobSpec::new(
                JobClass::CgSim,
                JobShape::sim_standard(),
                SimDuration::from_hours(48),
            ),
            at,
        );
    }
    let mut placed = 0u64;
    let mut last = SimTime::ZERO;
    let mut horizon = SimTime::from_hours(1);
    while placed < gpus && horizon <= SimTime::from_hours(100) {
        for ev in engine.advance(horizon) {
            if let JobEvent::Placed { at, .. } = ev {
                placed += 1;
                last = last.max(at);
            }
        }
        horizon += SimDuration::from_hours(1);
    }
    (placed, last.as_hours_f64())
}

fn main() {
    println!("# Scheduler design sweep: hours to place a full GPU partition");
    println!("# (submission throttled at 100 jobs/min; submission alone takes jobs/100/60 h)\n");
    println!("nodes\tjobs\tsync+lowid\tsync+first\tasync+lowid\tasync+first");
    for &nodes in &[500u32, 1000, 2000, 4000] {
        let jobs = nodes as u64 * 6;
        let configs = [
            (MatchPolicy::LowIdExhaustive, Coupling::Synchronous),
            (MatchPolicy::FirstMatch, Coupling::Synchronous),
            (MatchPolicy::LowIdExhaustive, Coupling::Asynchronous),
            (MatchPolicy::FirstMatch, Coupling::Asynchronous),
        ];
        let mut row = format!("{nodes}\t{jobs}");
        for (policy, coupling) in configs {
            let (placed, hours) = time_to_place(nodes, policy, coupling);
            if placed == jobs {
                row.push_str(&format!("\t{hours:.2}"));
            } else {
                row.push_str(&format!("\t>100 ({placed})"));
            }
        }
        println!("{row}");
    }
    println!("\nthe paper's campaign ran sync+lowid (left column): fine at 1000 nodes,");
    println!("pathological at 4000; the fix (right column) stays submission-limited.");
}
