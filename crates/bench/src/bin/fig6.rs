//! Figure 6: job-scheduling history at 1000 and 4000 nodes.
//!
//! "Whereas a typical 1000-node run took only an hour to load, our scaling
//! run (using 4000 nodes) revealed some scheduling bottlenecks where the
//! submitted jobs took much longer to run … the scheduling in Flux
//! happened in large chunks followed by large periods of inactivity."
//!
//! Both runs here restart from a warmed campaign (prepared simulations in
//! the ready buffers) and submit at ~100 jobs/min; the 4000-node run pays
//! the synchronous-Q↔R, exhaustive-matcher cost over a 4× larger graph.

use campaign::{Campaign, CampaignConfig};
use mummi_bench::TraceOpts;
use simcore::Timeline;

fn print_timeline(title: &str, cg: &Timeline, aa: &Timeline) {
    println!("## {title}");
    println!("hours\tcg_running\tcg_pending\taa_running\taa_pending");
    for (c, a) in cg.points().iter().zip(aa.points()) {
        println!(
            "{:.2}\t{}\t{}\t{}\t{}",
            c.at.as_hours_f64(),
            c.running,
            c.pending,
            a.running,
            a.pending
        );
    }
    println!();
}

fn main() {
    let topts = TraceOpts::from_args();
    let mut c = Campaign::new(CampaignConfig {
        mode: mummi_bench::drive_mode_from_args(),
        serial_loop: mummi_bench::serial_loop_from_args(),
        ..CampaignConfig::default()
    });
    c.set_tracer(topts.tracer());
    // Warm the campaign so ready buffers exist (the paper's runs restart).
    c.execute_run(1000, 24);

    let r1000 = c.execute_run(1000, 24);
    let r4000 = c.execute_run(4000, 16);

    print_timeline(
        "Figure 6 (left): 1000 nodes",
        &r1000.cg_timeline,
        &r1000.aa_timeline,
    );
    print_timeline(
        "Figure 6 (right): 4000 nodes",
        &r4000.cg_timeline,
        &r4000.aa_timeline,
    );

    println!(
        "1000-node load time: {}   (paper: ~1 hour)",
        r1000
            .load_time
            .map(|t| format!("{:.2} h", t.as_hours_f64()))
            .unwrap_or_else(|| "did not fully load".into())
    );
    println!(
        "4000-node load time: {}   (paper: still loading at ~15 h)",
        r4000
            .load_time
            .map(|t| format!("{:.2} h", t.as_hours_f64()))
            .unwrap_or_else(|| "did not fully load".into())
    );
    println!(
        "longest placement stall (profile samples with pending jobs but no growth): 1000-node {}, 4000-node {}",
        r1000.cg_timeline.longest_stall(),
        r4000.cg_timeline.longest_stall()
    );
    println!(
        "peak simultaneous GPU jobs at 4000 nodes: {} (paper: 24,000)",
        r4000.peak_gpu_jobs
    );
    topts.finish(c.tracer());
}
