//! Figure 5: resource occupancy distribution.
//!
//! "Aggregating the profiles (computed every 10 mins) over all runs shows
//! that the GPU occupancy was over 98% for more than 83% of the total
//! time; CPU occupancy is low due to the need of the simulation" (GPU mean
//! 93.73%, median 99.93%; CPU mean 54.12%, median 50.48%).

use campaign::{Campaign, CampaignConfig};
use mummi_bench::{print_histogram, TraceOpts};

fn main() {
    let topts = TraceOpts::from_args();
    let mut c = Campaign::new(CampaignConfig {
        mode: mummi_bench::drive_mode_from_args(),
        serial_loop: mummi_bench::serial_loop_from_args(),
        ..CampaignConfig::default()
    });
    c.set_tracer(topts.tracer());
    // A representative restartable schedule: one cold run, then warm
    // restarts — the occupancy distribution aggregates all profile events.
    for &(nodes, hours) in &[
        (100u32, 6u64),
        (500, 12),
        (1000, 24),
        (1000, 24),
        (1000, 24),
        (1000, 24),
        (1000, 24),
        (1000, 24),
    ] {
        c.execute_run(nodes, hours);
    }

    let p = c.profiler();
    print_histogram(
        "Figure 5: GPU occupancy (% of profile events per occupancy bin)",
        "occupancy_pct",
        &p.histogram(false, 20),
    );
    print_histogram(
        "Figure 5: CPU occupancy (% of profile events per occupancy bin)",
        "occupancy_pct",
        &p.histogram(true, 20),
    );

    let frac98 = p.fraction_gpu_at_least(98.0);
    let (gpu_mean, gpu_median) = p.gpu_mean_median();
    let (cpu_mean, cpu_median) = p.cpu_mean_median();
    println!(
        "GPU occupancy >= 98% for {:.1}% of profile events (paper: >83%)",
        frac98 * 100.0
    );
    println!(
        "GPU mean {:.2}% median {:.2}%   (paper: 93.73% / 99.93%)",
        gpu_mean, gpu_median
    );
    println!(
        "CPU mean {:.2}% median {:.2}%   (paper: 54.12% / 50.48%)",
        cpu_mean, cpu_median
    );
    topts.finish(c.tracer());
}
