//! Figure 7: CG→continuum feedback queries through the Redis stand-in.
//!
//! "We used MuMMI's redis interface for feedback during the scaling run
//! (4000 nodes) and configured the database to use 20 nodes … MuMMI
//! achieved a throughput of ∽10,000 queries (retrieval of keys) and
//! deletions (of key-value pairs), and ∽2000 reads (retrieval of values)
//! per second."
//!
//! The three query types are measured for real against a 20-shard cluster
//! holding RDF payloads, with reported times combining measured compute
//! and the modeled Summit-interconnect cost (see `kvstore::LatencyModel`).

use bytes::Bytes;
use kvstore::{Client, Cluster, LatencyModel};
use mummi_bench::print_series;

/// RDF payload size: each CG analysis writes ~17 KB per frame interval.
const VALUE_BYTES: usize = 17 * 1024;

fn main() {
    let sizes = [
        5_000u64, 10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 70_000,
    ];
    let mut keys_rows = Vec::new();
    let mut values_rows = Vec::new();
    let mut delete_rows = Vec::new();
    let mut key_tput = Vec::new();
    let mut val_tput = Vec::new();
    let mut del_tput = Vec::new();

    for &n in &sizes {
        let cluster = Cluster::new(20);
        let client = Client::with_latency(cluster, LatencyModel::SUMMIT_IB);
        let payload = Bytes::from(vec![0u8; VALUE_BYTES]);
        let pairs: Vec<(String, Bytes)> = (0..n)
            .map(|i| (format!("rdf:new:{{s{}}}:f{}", i % 3600, i), payload.clone()))
            .collect();
        client.mset(&pairs);
        client.reset_virtual();

        // Retrieve keys: one pattern scan over every shard.
        let t0 = std::time::Instant::now();
        let keys = client.keys("rdf:new:*");
        let t_keys = t0.elapsed().as_secs_f64() + client.virtual_ns() as f64 * 1e-9;
        assert_eq!(keys.len() as u64, n);
        client.reset_virtual();

        // Retrieve values: serial fetch — "New frames can be fetched in
        // parallel (when reading from files) or serial (when using a
        // high-throughput database)" (§4.4 Task 4).
        let t0 = std::time::Instant::now();
        let mut fetched = 0u64;
        for k in &keys {
            if client.get(k).is_some() {
                fetched += 1;
            }
        }
        let t_values = t0.elapsed().as_secs_f64() + client.virtual_ns() as f64 * 1e-9;
        assert_eq!(fetched, n);
        client.reset_virtual();

        // Delete pairs: pipelined multi-delete (the "tag processed" step).
        let t0 = std::time::Instant::now();
        let deleted = client.del_many(&keys);
        let t_delete = t0.elapsed().as_secs_f64() + client.virtual_ns() as f64 * 1e-9;
        assert_eq!(deleted as u64, n);

        keys_rows.push((n as f64, t_keys));
        values_rows.push((n as f64, t_values));
        delete_rows.push((n as f64, t_delete));
        key_tput.push(n as f64 / t_keys);
        val_tput.push(n as f64 / t_values);
        del_tput.push(n as f64 / t_delete);
    }

    print_series(
        "Figure 7: retrieve keys",
        "cg_frames",
        "seconds",
        &keys_rows,
    );
    print_series(
        "Figure 7: retrieve values",
        "cg_frames",
        "seconds",
        &values_rows,
    );
    print_series(
        "Figure 7: delete (key, value) pairs",
        "cg_frames",
        "seconds",
        &delete_rows,
    );

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("mean throughput:");
    println!(
        "  key scans : {:>8.0} keys/s   (paper: ~10,000/s)",
        mean(&key_tput)
    );
    println!(
        "  value gets: {:>8.0} reads/s  (paper: ~2,000/s)",
        mean(&val_tput)
    );
    println!(
        "  deletions : {:>8.0} dels/s   (paper: ~10,000/s)",
        mean(&del_tput)
    );
}
