//! Figure 8: AA→CG feedback iteration time vs frames processed.
//!
//! "The figure shows that more than 97% of the feedback iterations
//! finished within 10 minutes on average. In the few cases where more than
//! 1600 frames had to be processed, we did not meet the target, but the
//! performance scaled linearly."

use campaign::FeedbackTimingModel;
use mummi_bench::print_series;
use simcore::{Histogram, SimDuration};

fn main() {
    let mut model = FeedbackTimingModel::campaign(42);
    // A campaign's worth of iterations: 10-minute cadence over ~3 months of
    // active 1000-node operation, at the 2400-AA-sims typical load.
    let iterations = model.series(4000, 700.0);

    // Scatter: frames vs minutes (the figure's dots), binned for printing.
    let rows: Vec<(f64, f64)> = iterations
        .iter()
        .map(|i| (i.frames as f64, i.duration.as_mins_f64()))
        .collect();
    let mut means: Vec<(f64, f64)> = Vec::new();
    for lo in (0..7000).step_by(500) {
        let in_bin: Vec<f64> = rows
            .iter()
            .filter(|(f, _)| *f >= lo as f64 && *f < (lo + 500) as f64)
            .map(|(_, m)| *m)
            .collect();
        if !in_bin.is_empty() {
            means.push((
                lo as f64 + 250.0,
                in_bin.iter().sum::<f64>() / in_bin.len() as f64,
            ));
        }
    }
    print_series(
        "Figure 8: AA→CG feedback time vs frames (bin means)",
        "aa_frames",
        "minutes",
        &means,
    );

    // Cumulative frequency of frames per iteration.
    let mut h = Histogram::new(0.0, 7000.0, 28);
    h.add_all(&rows.iter().map(|(f, _)| *f).collect::<Vec<f64>>());
    let total = h.total() as f64;
    let mut cum = 0.0;
    let mut cum_rows = Vec::new();
    for (x, c) in h.rows() {
        cum += c as f64;
        cum_rows.push((x, 100.0 * cum / total));
    }
    print_series(
        "Figure 8: cumulative frequency of iteration sizes",
        "aa_frames",
        "cumulative_pct",
        &cum_rows,
    );

    let frac = FeedbackTimingModel::fraction_within(&iterations, SimDuration::from_mins(10));
    println!(
        "iterations finishing within 10 minutes: {:.1}% (paper: >97%)",
        frac * 100.0
    );
    let worst = iterations
        .iter()
        .max_by_key(|i| i.duration)
        .expect("non-empty series");
    println!(
        "largest iteration: {} frames in {:.1} min (linear scaling beyond the target)",
        worst.frames,
        worst.duration.as_mins_f64()
    );
}
