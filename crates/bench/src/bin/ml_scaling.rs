//! §1 contribution (2c): "more-efficient ML framework supporting almost
//! 165× more data for dynamic, real-time decision making."
//!
//! The patch selector's farthest-point sampling is capped at 5 × 35,000
//! candidates "for computational viability" (rank updates take 3–4 minutes
//! when full). The new binned sampler handles the CG-frame stream — 9 M
//! candidates over the campaign — with the same 3–4 minute update budget:
//! 9,837,316 / (5 × 35,000 ≈ 175,000 considering one queue: 35,000 × 165
//! ≈ 5.8 M…) the paper compares 9 M binned vs 35 K FPS ≈ 165×.
//!
//! We measure, for real: the FPS rank-update cost at its cap, and the
//! binned sampler's ingest+select cost at millions of candidates.

use dynim::{
    BinnedConfig, BinnedSampler, FarthestPointSampler, FpsConfig, HdPoint, KdTreeNn, Sampler,
};

fn main() {
    println!("# selector capacity at a fixed update budget\n");

    // FPS at the paper's per-queue cap.
    let cap = 35_000;
    let mut fps = FarthestPointSampler::new(FpsConfig { cap }, KdTreeNn::new());
    for i in 0..cap {
        let x = (i as f64 * 0.754877) % 1.0;
        let y = (i as f64 * 0.569840) % 1.0;
        fps.add(HdPoint::new(
            format!("p{i}"),
            vec![
                x,
                y,
                (x * 7.3) % 1.0,
                (y * 3.1) % 1.0,
                x * y,
                x - y,
                x + y,
                x * 2.0 % 1.0,
                y * 2.0 % 1.0,
            ],
        ));
    }
    // Seed the selected set so rank updates are non-trivial, then measure
    // a full rank update + selection.
    fps.select(8);
    let t0 = std::time::Instant::now();
    fps.update_ranks();
    let sel = fps.select(32);
    let fps_dt = t0.elapsed().as_secs_f64();
    assert_eq!(sel.len(), 32);
    println!(
        "farthest-point: {} candidates -> full rank update + 32 selections in {:.3} s",
        mummi_bench::group_digits(cap as u64),
        fps_dt
    );

    // Binned sampler at millions of candidates.
    let n: u64 = 5_000_000;
    let mut binned = BinnedSampler::new(BinnedConfig::cg_frames());
    let t0 = std::time::Instant::now();
    for i in 0..n {
        let x = (i % 97) as f64 / 97.0;
        let y = (i % 89) as f64 / 89.0;
        let z = (i % 83) as f64 / 83.0;
        binned.add(HdPoint::new(format!("f{i}"), vec![x, y, z]));
    }
    let ingest_dt = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    let sel = binned.select(32);
    let select_dt = t0.elapsed().as_secs_f64();
    assert_eq!(sel.len(), 32);
    println!(
        "binned       : {} candidates ingested in {:.2} s; 32 selections in {:.4} s",
        mummi_bench::group_digits(n),
        ingest_dt,
        select_dt
    );

    // Capacity ratio at equal (or better) update latency.
    let ratio = n as f64 / cap as f64;
    println!("\ncapacity ratio at real-time budgets: {ratio:.0}× (paper: \"almost 165× more data\": 9 M frames vs 35 K patches/queue)");
    println!(
        "per-candidate cost: FPS {:.1} µs vs binned {:.3} µs",
        fps_dt * 1e6 / cap as f64,
        ingest_dt * 1e6 / n as f64
    );
}
