//! Service-level benchmark of the campaign farm (`BENCH_farm.json`).
//!
//! Drives a real `FarmServer` over loopback TCP the way a busy site
//! would: several tenants submit batches of two-leg campaigns
//! concurrently while a seeded worker-kill plan takes workers down
//! mid-campaign, forcing checkpoint recoveries under load. Two service
//! metrics come out the other side:
//!
//! * **campaigns/minute** — completed campaigns over the wall-clock
//!   window from first submission to last completion, kills included;
//! * **submission → first placement** — per campaign, wall time from
//!   the submit call returning an id to the streamed `first_placement`
//!   event (the farm analogue of queue-to-science latency), reported as
//!   p50/p99/max.
//!
//! Latency is measured client-side with host `Instant` stamps: the farm
//! itself stays wall-clock-free (events fire on the virtual clock and
//! the logical leg counter), so the only place real time exists is
//! here, at the edge, where a tenant would feel it.
//!
//! The run is also a correctness gate: every submitted campaign must
//! complete its full schedule with a reconciled ledger, and the kill
//! plan must have fired, or the bench exits nonzero.
//!
//! Usage:
//!   farm_bench [--tenants <n>] [--per-tenant <n>] [--workers <n>]
//!              [--kills <n>] [--seed <n>] [--out <path>]

use std::thread;
use std::time::Instant;

use chaos::WorkerKillPlan;
use farm::{Farm, FarmClient, FarmServer};
use trace::Json;

/// The chaos suite's small-but-busy configuration: attrition off, short
/// CG targets so sims turn over (and place) early in a leg.
fn cfg_wire(seed: u64) -> String {
    format!(
        concat!(
            r#"{{"patches_per_snapshot": 6, "frames_per_sim_per_min": 0.05, "#,
            r#""cg_target_us": 0.2, "aa_target_ns": [5, 8], "queue_cap": 500, "#,
            r#""policy": "first_match", "coupling": "async", "#,
            r#""submit_rate_per_min": 600, "job_timeout_grace": 1.5, "#,
            r#""node_failures_per_day": 0, "job_failure_prob": 0, "seed": {}}}"#
        ),
        seed
    )
}

struct Args {
    tenants: usize,
    per_tenant: usize,
    workers: usize,
    kills: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        tenants: 4,
        per_tenant: 3,
        workers: 4,
        kills: 2,
        // The plan (trigger legs + victims) is seed-deterministic. The
        // farm aims each kill at a worker with a leg actually in
        // flight, and which workers are busy at the trigger depends on
        // host interleaving — so the mid-leg/idle split may vary
        // between runs, but `recoveries == kills_mid_leg` always holds
        // once the farm drains (asserted below).
        seed: 5,
        out: "BENCH_farm.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--tenants" => args.tenants = take("--tenants").parse().expect("--tenants"),
            "--per-tenant" => args.per_tenant = take("--per-tenant").parse().expect("--per-tenant"),
            "--workers" => args.workers = take("--workers").parse().expect("--workers"),
            "--kills" => args.kills = take("--kills").parse().expect("--kills"),
            "--seed" => args.seed = take("--seed").parse().expect("--seed"),
            "--out" => args.out = take("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Percentile by nearest-rank on a sorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    let args = parse_args();
    let campaigns = args.tenants * args.per_tenant;
    let legs_per_campaign = 2u64;
    let expected_legs = campaigns as u64 * legs_per_campaign;
    let plan = WorkerKillPlan::generate(args.seed, args.workers, expected_legs, args.kills);
    let kills_planned = plan.kills.len();

    let farm = Farm::new(args.workers, plan);
    let server = FarmServer::start(farm.clone(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();
    eprintln!(
        "farm_bench: {} tenants x {} campaigns on {} workers, {} planned kills, serving {addr}",
        args.tenants, args.per_tenant, args.workers, kills_planned
    );

    let t0 = Instant::now();
    // One client thread per tenant: submit the whole batch first (so
    // tenants contend for admission), then stream each campaign for its
    // first placement and completion.
    let per_tenant_results: Vec<Vec<f64>> = thread::scope(|s| {
        let handles: Vec<_> = (0..args.tenants)
            .map(|t| {
                s.spawn(move || {
                    let mut client = FarmClient::connect(addr).expect("connect");
                    let mut submitted = Vec::new();
                    for i in 0..args.per_tenant {
                        let seed = 1000 + (t * args.per_tenant + i) as u64;
                        let line = format!(
                            r#"{{"op": "submit", "tenant": "tenant-{t}", "schedule": [[5, 2], [5, 2]], "config": {}}}"#,
                            cfg_wire(seed)
                        );
                        let at = Instant::now();
                        let id = client.submit_line(&line).expect("submit");
                        submitted.push((id, at));
                    }
                    let mut latencies = Vec::new();
                    for (id, at) in submitted {
                        client.wait_event(id, "first_placement").expect("placement");
                        latencies.push(at.elapsed().as_secs_f64() * 1e3);
                        let events = client.wait_done(id).expect("completion");
                        assert!(
                            events
                                .iter()
                                .any(|e| e.get("kind").and_then(Json::as_str) == Some("completed")),
                            "campaign {id} did not complete"
                        );
                        let status = client.status(id).expect("status");
                        assert_eq!(status.get("ledger_ok"), Some(&Json::Bool(true)));
                        assert_eq!(
                            status.get("legs_done").and_then(Json::as_f64),
                            Some(legs_per_campaign as f64),
                            "campaign {id} completed its full schedule"
                        );
                    }
                    latencies
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_seconds = t0.elapsed().as_secs_f64();

    let mut admin = FarmClient::connect(addr).expect("connect");
    let stats = admin.stats().expect("stats");
    let kills_fired = stats
        .get("kills_fired")
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as usize;
    let recoveries = stats
        .get("recoveries")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let kills_mid_leg = stats
        .get("kills_mid_leg")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let kills_idle = stats
        .get("kills_idle")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let completed = stats.get("completed").and_then(Json::as_f64).unwrap_or(0.0) as usize;
    admin.shutdown().expect("shutdown");
    server.stop();

    assert_eq!(completed, campaigns, "every submitted campaign completed");
    assert_eq!(kills_fired, kills_planned, "the kill plan fired in full");
    assert_eq!(
        kills_mid_leg + kills_idle,
        kills_fired as f64,
        "every fired kill is classified mid-leg or idle"
    );
    // The conservation law the bench exists to witness: a kill that
    // discarded an in-flight leg owes exactly one checkpoint recovery,
    // and the farm has drained, so the books must balance.
    assert_eq!(
        recoveries, kills_mid_leg,
        "mid-leg kills and recoveries diverged after drain"
    );

    let mut latencies: Vec<f64> = per_tenant_results.into_iter().flatten().collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&latencies, 50.0);
    let p99 = percentile(&latencies, 99.0);
    let max = latencies.last().copied().unwrap_or(0.0);
    let per_minute = campaigns as f64 / (wall_seconds / 60.0);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"farm\",\n",
            "  \"schema\": 1,\n",
            "  \"tenants\": {},\n",
            "  \"campaigns\": {},\n",
            "  \"workers\": {},\n",
            "  \"kills_fired\": {},\n",
            "  \"kills_mid_leg\": {},\n",
            "  \"kills_idle\": {},\n",
            "  \"recoveries\": {},\n",
            "  \"wall_seconds\": {:.3},\n",
            "  \"campaigns_per_minute\": {:.2},\n",
            "  \"submit_to_first_placement_ms\": {{\n",
            "    \"p50\": {:.2},\n",
            "    \"p99\": {:.2},\n",
            "    \"max\": {:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        args.tenants,
        campaigns,
        args.workers,
        kills_fired,
        kills_mid_leg,
        kills_idle,
        recoveries,
        wall_seconds,
        per_minute,
        p50,
        p99,
        max
    );
    std::fs::write(&args.out, &json).expect("write bench file");
    eprintln!(
        "farm_bench: {campaigns} campaigns in {wall_seconds:.2}s ({per_minute:.1}/min), \
         first placement p50 {p50:.1} ms / p99 {p99:.1} ms, {kills_fired} kills -> {}",
        args.out
    );
}
