//! Table 1: campaign runs at different computational scales.
//!
//! "MuMMI can seamlessly (re)start runs at different computational scales.
//! This work utilized over 600,000 node hours on Summit using several runs
//! at varying scales."
//!
//! Usage: `table1 [--full | --smoke] [--chaos <seed>] [--ticked] [--serial]
//! [--policy <name>] [--workload <spec>] [--legacy-sched]`.
//! `--serial` pins the legacy serial event-loop body (the differential
//! oracle for the partitioned parallel loop — same bytes, only wall
//! clock may differ). `--policy` picks the queue-ordering/backfill
//! policy, `--workload` adds a background job stream (synthetic mix or
//! `trace:<path>`), and `--legacy-sched` pins the retained pre-split
//! FCFS monolith (the CI byte-identity oracle). The default
//! executes the paper's exact schedule but with the twenty 1000-node runs
//! represented by five (the DES is deterministic, so additional identical
//! runs only add wall time); `--full` executes all 32 runs; `--smoke` runs
//! a two-allocation restart chain at 100 nodes (seconds — the CI
//! determinism check). `--chaos <seed>` injects the seeded smoke fault
//! plan (one node failure, store-fault window, job hang, and WM crash per
//! allocation) and exits nonzero if any run's job accounting fails to
//! reconcile.

use campaign::{Campaign, CampaignConfig};
use chaos::FaultPlan;
use mummi_bench::TraceOpts;
use simcore::SimDuration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let smoke = args.iter().any(|a| a == "--smoke");
    let chaos_seed: Option<u64> = args
        .iter()
        .position(|a| a == "--chaos")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    let topts = TraceOpts::from_args();
    // (nodes, wall-time hours, #runs), exactly Table 1.
    let schedule: Vec<(u32, u64, u32)> = if smoke {
        vec![(100, 4, 1), (100, 2, 1)]
    } else {
        vec![
            (100, 6, 5),
            (100, 12, 3),
            (500, 12, 3),
            (1000, 24, if full { 20 } else { 5 }),
            (4000, 24, 1),
        ]
    };

    let mut cfg = CampaignConfig {
        mode: mummi_bench::drive_mode_from_args(),
        serial_loop: mummi_bench::serial_loop_from_args(),
        ..CampaignConfig::default()
    };
    mummi_bench::apply_sched_args(&mut cfg);
    let plan = chaos_seed.map(|seed| {
        // Fault times are relative to each run's start; spanning the
        // shortest scheduled allocation puts every fault inside every run.
        let min_hours = schedule.iter().map(|&(_, h, _)| h).min().unwrap_or(1);
        let max_nodes = schedule.iter().map(|&(n, _, _)| n).max().unwrap_or(1);
        FaultPlan::smoke(seed, SimDuration::from_hours(min_hours), max_nodes)
    });
    if let Some(plan) = &plan {
        cfg.fault_plan = Some(plan.clone());
        cfg.job_timeout_grace = 1.5;
    }
    let mut c = Campaign::new(cfg);
    c.set_tracer(topts.tracer());
    println!("# Table 1: (re)starting the campaign at different scales");
    println!("#nodes\twall-time\t#runs\tnode hours");
    let rows = c.run_table(&schedule);
    let mut total = 0;
    for (nodes, hours, runs, node_hours) in &rows {
        println!(
            "{nodes}\t{hours} hours\t{runs}\t{}",
            mummi_bench::group_digits(*node_hours)
        );
        total += node_hours;
    }
    // Scale the shortened 1000-node row up for the headline comparison.
    let projected = if full { total } else { total + 1000 * 24 * 15 };
    println!(
        "\ntotal node hours executed: {}",
        mummi_bench::group_digits(total)
    );
    if !full && !smoke {
        println!(
            "projected at the paper's full schedule (20 × 1000-node runs): {}",
            mummi_bench::group_digits(projected)
        );
    }
    if !smoke {
        println!("paper: >600,000 node hours (597,000 scheduled in Table 1)");
    }

    println!("\n# per-run detail (restart behavior)");
    println!("run\tnodes\thours\tplaced\tcompleted\tmeanGPU%\tload");
    for (i, r) in c.reports().iter().enumerate() {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{:.1}\t{}",
            i + 1,
            r.nodes,
            r.hours,
            r.placed,
            r.sims_completed,
            r.gpu_mean_occupancy,
            r.load_time
                .map(|t| format!("{:.2} h", t.as_hours_f64()))
                .unwrap_or_else(|| "-".into()),
        );
    }
    let (snaps, patches, frames) = c.data_counts();
    println!("\nsnapshots: {snaps}  patches: {patches}  cg-frame candidates: {frames}");
    println!(
        "cg sims spawned: {}  aa sims spawned: {}",
        c.cg_lengths().len(),
        c.aa_lengths().len()
    );
    if let (Some(seed), Some(plan)) = (chaos_seed, &plan) {
        println!("\n# chaos: per-allocation fault plan (seed {seed})");
        print!("{}", plan.to_text());
        println!("run\tcrashes\thung\ttimed-out\tstore-inj\tledger");
        let mut bad = 0u64;
        for (i, r) in c.reports().iter().enumerate() {
            let violations = r.ledger.check();
            bad += violations.len() as u64;
            println!(
                "{}\t{}\t{}\t{}\t{}\t{}",
                i + 1,
                r.wm_crashes,
                r.jobs_hung,
                r.jobs_timed_out,
                r.store_faults_injected,
                if violations.is_empty() {
                    "ok".to_string()
                } else {
                    violations.join("; ")
                },
            );
        }
        topts.finish(c.tracer());
        if bad > 0 {
            eprintln!("chaos: {bad} accounting violations");
            std::process::exit(1);
        }
        return;
    }
    topts.finish(c.tracer());
}
