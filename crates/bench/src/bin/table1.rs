//! Table 1: campaign runs at different computational scales.
//!
//! "MuMMI can seamlessly (re)start runs at different computational scales.
//! This work utilized over 600,000 node hours on Summit using several runs
//! at varying scales."
//!
//! Usage: `table1 [--full | --smoke]`. The default executes the paper's
//! exact schedule but with the twenty 1000-node runs represented by five
//! (the DES is deterministic, so additional identical runs only add wall
//! time); `--full` executes all 32 runs; `--smoke` runs a two-allocation
//! restart chain at 100 nodes (seconds — the CI determinism check).

use campaign::{Campaign, CampaignConfig};
use mummi_bench::TraceOpts;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let topts = TraceOpts::from_args();
    // (nodes, wall-time hours, #runs), exactly Table 1.
    let schedule: Vec<(u32, u64, u32)> = if smoke {
        vec![(100, 4, 1), (100, 2, 1)]
    } else {
        vec![
            (100, 6, 5),
            (100, 12, 3),
            (500, 12, 3),
            (1000, 24, if full { 20 } else { 5 }),
            (4000, 24, 1),
        ]
    };

    let mut c = Campaign::new(CampaignConfig::default());
    c.set_tracer(topts.tracer());
    println!("# Table 1: (re)starting the campaign at different scales");
    println!("#nodes\twall-time\t#runs\tnode hours");
    let rows = c.run_table(&schedule);
    let mut total = 0;
    for (nodes, hours, runs, node_hours) in &rows {
        println!(
            "{nodes}\t{hours} hours\t{runs}\t{}",
            mummi_bench::group_digits(*node_hours)
        );
        total += node_hours;
    }
    // Scale the shortened 1000-node row up for the headline comparison.
    let projected = if full { total } else { total + 1000 * 24 * 15 };
    println!(
        "\ntotal node hours executed: {}",
        mummi_bench::group_digits(total)
    );
    if !full && !smoke {
        println!(
            "projected at the paper's full schedule (20 × 1000-node runs): {}",
            mummi_bench::group_digits(projected)
        );
    }
    if !smoke {
        println!("paper: >600,000 node hours (597,000 scheduled in Table 1)");
    }

    println!("\n# per-run detail (restart behavior)");
    println!("run\tnodes\thours\tplaced\tcompleted\tmeanGPU%\tload");
    for (i, r) in c.reports().iter().enumerate() {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{:.1}\t{}",
            i + 1,
            r.nodes,
            r.hours,
            r.placed,
            r.sims_completed,
            r.gpu_mean_occupancy,
            r.load_time
                .map(|t| format!("{:.2} h", t.as_hours_f64()))
                .unwrap_or_else(|| "-".into()),
        );
    }
    let (snaps, patches, frames) = c.data_counts();
    println!("\nsnapshots: {snaps}  patches: {patches}  cg-frame candidates: {frames}");
    println!(
        "cg sims spawned: {}  aa sims spawned: {}",
        c.cg_lengths().len(),
        c.aa_lengths().len()
    );
    topts.finish(c.tracer());
}
