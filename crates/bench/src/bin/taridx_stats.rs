//! §5.2: taridx archiving — inode reduction and read throughput.
//!
//! "By the end, we had compiled over 1 billion files (1,034,232,900, to be
//! precise) across 114,552 tar archives — a 9000× reduction in the number
//! of files (and inodes) … Reading from a tar file provides a throughput
//! of ∽575 files/s or ∽87.56 MB/s (at ∽156 KB/file)."
//!
//! The inode arithmetic is reproduced at the campaign's real numbers; the
//! read throughput is measured for real on local disk at the paper's
//! ~156 KB/file member size.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use taridx::IndexedTar;

fn main() {
    // Inode reduction at campaign scale (arithmetic on the real numbers).
    let files: u64 = 1_034_232_900;
    let archives: u64 = 114_552;
    println!("# taridx at campaign scale");
    println!(
        "{} files in {} archives -> {:.0}× inode reduction (paper: 9000×)",
        mummi_bench::group_digits(files),
        mummi_bench::group_digits(archives),
        files as f64 / archives as f64
    );
    println!(
        "mean files/archive: {:.0}; largest archive in the campaign: 6,723,600 files / 455 GB\n",
        files as f64 / archives as f64
    );

    // Local measurement: write one archive of 156 KB members, then read
    // them back in random order through the index.
    let n_files = 2000usize;
    let member_kb = 156usize;
    let dir = std::env::temp_dir().join(format!("taridx-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let path = dir.join("bench.tar");

    let payload = vec![7u8; member_kb * 1024];
    let mut tar = IndexedTar::create(&path).expect("create archive");
    let t0 = std::time::Instant::now();
    for i in 0..n_files {
        tar.append(&format!("member-{i:07}"), &payload)
            .expect("append");
    }
    tar.flush().expect("flush");
    let write_dt = t0.elapsed().as_secs_f64();

    let mut keys: Vec<String> = (0..n_files).map(|i| format!("member-{i:07}")).collect();
    keys.shuffle(&mut rand::rngs::StdRng::seed_from_u64(9));
    let t0 = std::time::Instant::now();
    let mut bytes = 0u64;
    for k in &keys {
        bytes += tar.read(k).expect("read").len() as u64;
    }
    let read_dt = t0.elapsed().as_secs_f64();

    println!("# measured on local disk ({n_files} members × {member_kb} KB)");
    println!(
        "write: {:.0} files/s, {:.1} MB/s",
        n_files as f64 / write_dt,
        bytes as f64 / 1e6 / write_dt
    );
    println!(
        "random-access read: {:.0} files/s, {:.2} MB/s   (paper on GPFS: ~575 files/s, ~87.56 MB/s)",
        n_files as f64 / read_dt,
        bytes as f64 / 1e6 / read_dt
    );
    println!("(local NVMe/tmpfs is faster than contested GPFS; the shape — random access at full sequential-ish bandwidth through the index — is the reproduced property)");

    let inode_files = std::fs::read_dir(&dir).expect("read dir").count();
    println!("inodes used for {n_files} members: {inode_files} (archive + index)");
    std::fs::remove_dir_all(&dir).ok();
}
