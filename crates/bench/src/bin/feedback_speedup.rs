//! §1 / §5.2: the ≥12× faster feedback mechanism.
//!
//! The prior MuMMI performed feedback through the filesystem and provided
//! "an unsatisfactory frequency of two hours"; the new design targets <10
//! minutes by moving the feedback namespace into the in-memory database.
//! We run the *same* CG→continuum feedback iteration (same frames, same
//! aggregation code) over the filesystem backend and the KV backend and
//! compare, adding each backend's modeled access latencies (GPFS metadata
//!+ read costs vs the interconnect model).

use cg::analysis::CgFrame;
use datastore::{DataStore, FsStore, KvDataStore};
use kvstore::{Cluster, LatencyModel};
use mummi_core::{CgToContinuumFeedback, FeedbackManager};

/// GPFS costs per operation under contention (directory locking, metadata
/// scans, small reads), from the paper's motivation for throttling I/O.
const GPFS_MD_OP_SECS: f64 = 0.004; // per-file metadata op (list/rename)
const GPFS_READ_SECS: f64 = 0.006; // per small-file open+read

fn frame(i: usize) -> CgFrame {
    CgFrame {
        id: format!("sim{}:f{i}", i % 3600),
        time: i as f64,
        encoding: [0.1, 0.5, 0.9],
        rdfs: vec![vec![1.5; 64]; 4],
    }
}

fn main() {
    let n_frames = 4000; // one iteration at 3600 running CG sims
    println!("# CG→continuum feedback: one iteration over {n_frames} frames\n");

    // Filesystem backend (the prior design).
    let dir = std::env::temp_dir().join(format!("fb-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");
    let mut fs = FsStore::open(&dir).expect("open fs store");
    for i in 0..n_frames {
        let f = frame(i);
        fs.write(mummi_core::ns::RDF_NEW, &f.id, &f.encode())
            .expect("write");
    }
    let mut fb = CgToContinuumFeedback::new(4);
    let t0 = std::time::Instant::now();
    let out = fb.iterate(&mut fs).expect("iterate");
    let fs_measured = t0.elapsed().as_secs_f64();
    // Modeled GPFS costs: list + read + rename per frame.
    let fs_modeled = n_frames as f64 * (GPFS_MD_OP_SECS * 2.0 + GPFS_READ_SECS);
    let fs_total = fs_measured + fs_modeled;
    assert_eq!(out.processed, n_frames);
    std::fs::remove_dir_all(&dir).ok();

    // KV backend (this work).
    let cluster = Cluster::new(20);
    let mut kv = KvDataStore::over_with_latency(cluster, LatencyModel::SUMMIT_IB);
    for i in 0..n_frames {
        let f = frame(i);
        kv.write(mummi_core::ns::RDF_NEW, &f.id, &f.encode())
            .expect("write");
    }
    kv.client().reset_virtual();
    let mut fb = CgToContinuumFeedback::new(4);
    let t0 = std::time::Instant::now();
    let out = fb.iterate(&mut kv).expect("iterate");
    let kv_measured = t0.elapsed().as_secs_f64();
    let kv_total = kv_measured + kv.client().virtual_ns() as f64 * 1e-9;
    assert_eq!(out.processed, n_frames);

    println!("backend     measured     +modeled access     total");
    println!("filesystem  {fs_measured:>8.3} s   {fs_modeled:>13.3} s   {fs_total:>8.3} s");
    println!(
        "redis       {kv_measured:>8.3} s   {:>13.3} s   {kv_total:>8.3} s",
        kv_total - kv_measured
    );
    println!(
        "\nspeedup: {:.1}×   (paper: more than 12× faster feedback)",
        fs_total / kv_total
    );
    println!(
        "per-iteration cost: filesystem {:.1} min vs redis {:.2} min (target: <10 min per iteration)",
        fs_total / 60.0,
        kv_total / 60.0
    );
}
