//! Ablation: the binned sampler's importance/randomness balance.
//!
//! §4.4 Task 2: "The binned sampling approach also facilitates control
//! over the balance between importance and randomness — another functional
//! requirement for the selection of CG frames." This study quantifies the
//! trade-off: sweeping the importance parameter from pure random (0.0) to
//! pure importance (1.0) against a heavily skewed candidate population
//! (rare conformations are 1% of frames) and measuring
//!
//! - **rare-state coverage**: how many selections land in rare bins;
//! - **occupancy fidelity**: how closely selections follow the candidate
//!   distribution (what pure random would do).

use dynim::{BinnedConfig, BinnedSampler, HdPoint, Sampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("# Binned sampler ablation: importance vs randomness\n");
    println!("importance\trare_selected_of_200\trare_fraction\tcommon_fraction");

    for &importance in &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut sampler = BinnedSampler::new(BinnedConfig {
            dims: vec![(0.0, 1.0, 10); 3],
            importance,
            seed: 11,
        });
        let mut rng = StdRng::seed_from_u64(3);
        // 50,000 frames: 99% cluster in one "common" conformation corner,
        // 1% spread over the rare rest of the space.
        let mut rare_ids = std::collections::HashSet::new();
        for i in 0..50_000u64 {
            let rare = rng.gen_bool(0.01);
            let coords = if rare {
                vec![
                    rng.gen_range(0.3..1.0),
                    rng.gen_range(0.3..1.0),
                    rng.gen_range(0.3..1.0),
                ]
            } else {
                vec![
                    rng.gen_range(0.0..0.1),
                    rng.gen_range(0.0..0.1),
                    rng.gen_range(0.0..0.1),
                ]
            };
            let id = format!("f{i}");
            if rare {
                rare_ids.insert(id.clone());
            }
            sampler.add(HdPoint::new(id, coords));
        }

        let picks = sampler.select(200);
        let rare_picked = picks.iter().filter(|p| rare_ids.contains(&p.id)).count();
        println!(
            "{importance:.1}\t{rare_picked}\t{:.2}\t{:.2}",
            rare_picked as f64 / 200.0,
            1.0 - rare_picked as f64 / 200.0
        );
    }

    println!();
    println!("pure random tracks the candidate distribution (~1% rare);");
    println!("pure importance drives exploration of rare conformations;");
    println!("the campaign ran at 0.8 — mostly exploration with a random leaven.");
}
