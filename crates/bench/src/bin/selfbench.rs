//! Self-benchmark of the campaign simulator: the repo's wall-clock
//! trajectory (`BENCH_campaign.json`).
//!
//! Runs the `table1 --smoke` schedule twice — once under the legacy
//! fixed-interval ticked loop, once under event-driven next-event time
//! advance — and records wall-clock seconds, peak RSS, and
//! virtual-seconds-per-wall-second for each, plus the speedup, as JSON at
//! the repository root (CI uploads it as an artifact).
//!
//! Both engines run the *same* configuration, with `poll_interval` set to
//! the scheduler pipeline's own decision granularity (50 ms — the
//! dispatch service cost in `Costs::summit_campaign`; `--poll-millis <n>`
//! to override). That is the equal-fidelity comparison: the event-driven
//! clock times every completion and service start exactly, so for the
//! ticked sweep to resolve the same scheduler events its period must not
//! exceed the finest service interval — and its cost is O(virtual time /
//! poll) while the event-driven cost is O(events), independent of the
//! poll setting. Each phase runs `--reps <n>` times (default 3) and keeps
//! the minimum wall time. See DESIGN.md § "Simulator performance".
//!
//! Usage: `selfbench [--out <path>] [--poll-millis <n>] [--reps <n>]`

use std::time::Instant;

use campaign::{Campaign, CampaignConfig, DriveMode};
use simcore::SimDuration;

/// The `table1 --smoke` schedule: a two-allocation restart chain.
const SCHEDULE: &[(u32, u64, u32)] = &[(100, 4, 1), (100, 2, 1)];

/// Peak resident set (VmHWM) in KiB — Linux only, 0 elsewhere. The value
/// is a process-lifetime high-water mark, so per-phase readings are
/// cumulative: run the cheaper phase first to keep them meaningful.
fn peak_rss_kib() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    if let Some(kb) = rest.split_whitespace().next() {
                        return kb.parse().unwrap_or(0);
                    }
                }
            }
        }
    }
    0
}

struct Phase {
    wall_seconds: f64,
    virtual_per_wall: f64,
    peak_rss_kib: u64,
    placed: u64,
    iterations: u64,
}

fn run_mode(mode: DriveMode, poll: SimDuration, reps: u32) -> Phase {
    let virtual_secs: u64 = SCHEDULE
        .iter()
        .map(|&(_, hours, count)| hours * count as u64 * 3600)
        .sum();
    let mut best: Option<Phase> = None;
    for _ in 0..reps.max(1) {
        let mut c = Campaign::new(CampaignConfig {
            poll_interval: poll,
            mode,
            ..CampaignConfig::default()
        });
        let start = Instant::now();
        c.run_table(SCHEDULE);
        let wall = start.elapsed().as_secs_f64();
        let phase = Phase {
            wall_seconds: wall,
            virtual_per_wall: virtual_secs as f64 / wall.max(1e-9),
            peak_rss_kib: peak_rss_kib(),
            placed: c.reports().iter().map(|r| r.placed).sum(),
            iterations: c.reports().iter().map(|r| r.driver_iterations).sum(),
        };
        if best
            .as_ref()
            .is_none_or(|b| phase.wall_seconds < b.wall_seconds)
        {
            best = Some(phase);
        }
    }
    best.expect("at least one rep")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_campaign.json".to_string());
    let poll_millis: u64 = args
        .iter()
        .position(|a| a == "--poll-millis")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let reps: u32 = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let poll = SimDuration::from_millis(poll_millis);

    eprintln!("selfbench: table1 --smoke schedule, poll {poll_millis}ms, best of {reps}");
    // Event-driven first: it allocates less, so the cumulative VmHWM
    // high-water mark stays attributable per phase.
    let event = run_mode(DriveMode::EventDriven, poll, reps);
    eprintln!(
        "  event-driven: {:.3}s wall, {:.0} virt-s/wall-s, {} iterations, peak {} KiB",
        event.wall_seconds, event.virtual_per_wall, event.iterations, event.peak_rss_kib
    );
    let ticked = run_mode(DriveMode::Ticked, poll, reps);
    eprintln!(
        "  ticked:       {:.3}s wall, {:.0} virt-s/wall-s, {} iterations, peak {} KiB",
        ticked.wall_seconds, ticked.virtual_per_wall, ticked.iterations, ticked.peak_rss_kib
    );
    let speedup = ticked.wall_seconds / event.wall_seconds.max(1e-9);
    eprintln!("  speedup (ticked/event): {speedup:.1}x");

    let phase_json = |p: &Phase| {
        format!(
            "{{\"wall_seconds\": {:.6}, \"virtual_per_wall\": {:.1}, \"peak_rss_kib\": {}, \"jobs_placed\": {}, \"driver_iterations\": {}}}",
            p.wall_seconds, p.virtual_per_wall, p.peak_rss_kib, p.placed, p.iterations
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"campaign-smoke\",\n  \"schedule\": \"table1 --smoke\",\n  \"poll_interval_millis\": {poll_millis},\n  \"virtual_seconds\": {},\n  \"ticked\": {},\n  \"event_driven\": {},\n  \"speedup_event_over_ticked\": {:.2}\n}}\n",
        SCHEDULE
            .iter()
            .map(|&(_, h, c)| h * c as u64 * 3600)
            .sum::<u64>(),
        phase_json(&ticked),
        phase_json(&event),
        speedup
    );
    std::fs::write(&out, json).unwrap_or_else(|e| {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}
