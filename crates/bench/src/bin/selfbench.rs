//! Self-benchmark of the campaign simulator: the repo's wall-clock
//! trajectory (`BENCH_campaign.json`) and the Summit scale ladder
//! (`BENCH_scale.json`).
//!
//! **Smoke mode** (default) runs the `table1 --smoke` schedule twice —
//! once under the legacy fixed-interval ticked loop, once under
//! event-driven next-event time advance — and records wall-clock seconds,
//! peak RSS, and virtual-seconds-per-wall-second for each, plus the
//! speedup, as JSON at the repository root (CI uploads it as an
//! artifact).
//!
//! Both engines run the *same* configuration, with `poll_interval` set to
//! the scheduler pipeline's own decision granularity (50 ms — the
//! dispatch service cost in `Costs::summit_campaign`; `--poll-millis <n>`
//! to override). That is the equal-fidelity comparison: the event-driven
//! clock times every completion and service start exactly, so for the
//! ticked sweep to resolve the same scheduler events its period must not
//! exceed the finest service interval — and its cost is O(virtual time /
//! poll) while the event-driven cost is O(events), independent of the
//! poll setting. Each phase runs `--reps <n>` times (default 3) and keeps
//! the minimum wall time. See DESIGN.md § "Simulator performance".
//!
//! **Scale mode** (`--scale <rungs>`) climbs the Summit ladder instead:
//! each rung runs one 16-virtual-hour allocation at a fraction of the
//! full machine (4,608 nodes × 6 GPUs) under the indexed coordination
//! hot path, recording wall clock, peak RSS, virt-s per wall-s, and peak
//! concurrent GPU jobs per rung. The 1/8 rung additionally runs the
//! retained pre-index engine (`linear_scan`) at the same seed and
//! records the indexed/linear speedup. Results **append** to
//! `BENCH_scale.json` — the file accumulates a trajectory across
//! invocations instead of being clobbered. See DESIGN.md § "Scaling the
//! coordination hot path".
//!
//! **Parallel mode** (`--parallel <rungs>`) climbs the same ladder but
//! compares the two event-loop flavors instead of the two engines: each
//! rung runs once with `serial_loop` pinned (the legacy single-threaded
//! barrier body) and once under the partitioned parallel loop, same
//! seed. The two flavors are byte-identical by contract, so the runs
//! must agree on placements, iterations, and peak concurrency — the
//! bench asserts it — and only wall clock may move. Entries record the
//! worker-thread count (`rayon::current_num_threads`, overridable via
//! `RAYON_NUM_THREADS`) alongside the measured speedup, because a
//! 1-core host can only show parity: the fork degrades to inline calls
//! there and the numbers say so honestly.
//!
//! **Table-1 mode** (`--table1`) runs the paper's *full* schedule —
//! all 32 allocations, 20 × 1000-node × 24 h plus the 4,000-node run,
//! ≈597,000 node hours — under both loop flavors and appends one entry
//! per flavor to `BENCH_scale.json`. This is the headline target the
//! parallel loop exists for: the whole Summit campaign replayed in
//! wall-clock minutes.
//!
//! Usage:
//!   selfbench [--out <path>] [--poll-millis <n>] [--reps <n>]
//!   selfbench --scale <1/64,1/8,1/2,1/1|all> [--out <path>] [--hours <n>]
//!   selfbench --parallel <1/64,1/8,1/2,1/1|all> [--out <path>] [--hours <n>]
//!   selfbench --table1 [--out <path>]
//!
//! The smoke and `--scale` modes also accept the shared scheduler flags
//! `--policy <name>`, `--workload <spec>`, and `--legacy-sched` (see
//! [`mummi_bench::apply_sched_args`]).

use std::time::Instant;

use campaign::{Campaign, CampaignConfig, DriveMode};
use mummi_bench::files::{merge_scale_file, SCHEMA};
use simcore::SimDuration;

/// The `table1 --smoke` schedule: a two-allocation restart chain.
const SCHEDULE: &[(u32, u64, u32)] = &[(100, 4, 1), (100, 2, 1)];

/// The Summit ladder: fraction label → compute nodes (6 GPUs each).
const RUNGS: &[(&str, u32)] = &[("1/64", 72), ("1/8", 576), ("1/2", 2304), ("1/1", 4608)];

/// The rung benchmarked against the retained linear-scan engine.
const COMPARE_RUNG: &str = "1/8";

/// Peak resident set (VmHWM) in KiB — Linux only, 0 elsewhere. The value
/// is a process-lifetime high-water mark, so per-phase readings are
/// cumulative: run the cheaper phase first to keep them meaningful.
fn peak_rss_kib() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    if let Some(kb) = rest.split_whitespace().next() {
                        return kb.parse().unwrap_or(0);
                    }
                }
            }
        }
    }
    0
}

struct Phase {
    wall_seconds: f64,
    virtual_per_wall: f64,
    peak_rss_kib: u64,
    placed: u64,
    iterations: u64,
}

fn run_mode(mode: DriveMode, poll: SimDuration, reps: u32) -> Phase {
    let virtual_secs: u64 = SCHEDULE
        .iter()
        .map(|&(_, hours, count)| hours * count as u64 * 3600)
        .sum();
    let mut best: Option<Phase> = None;
    for _ in 0..reps.max(1) {
        let mut cfg = CampaignConfig {
            poll_interval: poll,
            mode,
            ..CampaignConfig::default()
        };
        mummi_bench::apply_sched_args(&mut cfg);
        let mut c = Campaign::new(cfg);
        let start = Instant::now();
        c.run_table(SCHEDULE);
        let wall = start.elapsed().as_secs_f64();
        let phase = Phase {
            wall_seconds: wall,
            virtual_per_wall: virtual_secs as f64 / wall.max(1e-9),
            peak_rss_kib: peak_rss_kib(),
            placed: c.reports().iter().map(|r| r.placed).sum(),
            iterations: c.reports().iter().map(|r| r.driver_iterations).sum(),
        };
        if best
            .as_ref()
            .is_none_or(|b| phase.wall_seconds < b.wall_seconds)
        {
            best = Some(phase);
        }
    }
    best.expect("at least one rep")
}

/// One scale-ladder measurement: a single allocation at `nodes` for
/// `hours` virtual hours, indexed or linear engine.
struct RungResult {
    wall_seconds: f64,
    virtual_per_wall: f64,
    peak_rss_kib: u64,
    placed: u64,
    iterations: u64,
    peak_gpu_jobs: u64,
    steady_gpu_occupancy: f64,
}

fn run_rung(nodes: u32, hours: u64, linear: bool, serial: bool) -> RungResult {
    let mut cfg = CampaignConfig {
        linear_scan: linear,
        serial_loop: serial,
        ..CampaignConfig::scale_rung(nodes)
    };
    mummi_bench::apply_sched_args(&mut cfg);
    let mut c = Campaign::new(cfg);
    let start = Instant::now();
    let r = c.execute_run(nodes, hours);
    let wall = start.elapsed().as_secs_f64();
    let series = c.profiler().gpu_series();
    let steady = &series[series.len() * 2 / 3..];
    let steady_mean = if steady.is_empty() {
        0.0
    } else {
        steady.iter().sum::<f64>() / steady.len() as f64
    };
    RungResult {
        wall_seconds: wall,
        virtual_per_wall: (hours * 3600) as f64 / wall.max(1e-9),
        peak_rss_kib: peak_rss_kib(),
        placed: r.placed,
        iterations: r.driver_iterations,
        peak_gpu_jobs: r.peak_gpu_jobs,
        steady_gpu_occupancy: steady_mean,
    }
}

/// `extra` is a preformatted JSON fragment (`", \"key\": value"`) so the
/// three ladder variants (engine compare, loop compare, table1-full) can
/// tag entries without a parameter per optional field.
fn rung_entry(
    rung: &str,
    nodes: u32,
    hours: u64,
    engine: &str,
    r: &RungResult,
    extra: &str,
) -> String {
    format!(
        "{{\"rung\": \"{rung}\", \"nodes\": {nodes}, \"gpus\": {}, \"virtual_hours\": {hours}, \
         \"engine\": \"{engine}\", \"wall_seconds\": {:.6}, \"virtual_per_wall\": {:.1}, \
         \"peak_rss_kib\": {}, \"jobs_placed\": {}, \"driver_iterations\": {}, \
         \"peak_concurrent_gpu_jobs\": {}, \"steady_gpu_occupancy\": {:.2}{extra}}}",
        nodes as u64 * 6,
        r.wall_seconds,
        r.virtual_per_wall,
        r.peak_rss_kib,
        r.placed,
        r.iterations,
        r.peak_gpu_jobs,
        r.steady_gpu_occupancy,
    )
}

/// Appends `new_entries` to the `entries` array of the scale file,
/// preserving whatever is already there (append-don't-clobber: the file
/// is the repo's scale trajectory, one entry per measured rung per run).
/// The merge itself lives in [`mummi_bench::files`], where it is
/// unit-tested against both bench file formats.
fn write_scale_file(out: &str, new_entries: Vec<String>) {
    let existing = std::fs::read_to_string(out).ok();
    let (json, n, warning) = merge_scale_file(existing.as_deref(), new_entries);
    if let Some(w) = warning {
        eprintln!("warning: {out}: {w}");
    }
    std::fs::write(out, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out} ({n} entries)");
}

fn scale_main(rungs_arg: &str, out: &str, hours: u64) {
    let wanted: Vec<&str> = if rungs_arg == "all" {
        RUNGS.iter().map(|&(label, _)| label).collect()
    } else {
        rungs_arg.split(',').map(str::trim).collect()
    };
    let mut entries = Vec::new();
    for label in &wanted {
        let Some(&(_, nodes)) = RUNGS.iter().find(|&&(l, _)| l == *label) else {
            eprintln!(
                "unknown rung {label:?}; expected one of: {}",
                RUNGS.iter().map(|&(l, _)| l).collect::<Vec<_>>().join(", ")
            );
            std::process::exit(2);
        };
        // The compare rung runs the retained pre-index engine first (it
        // is the slower phase, and VmHWM is cumulative — see
        // `peak_rss_kib`), then the indexed engine at the same seed.
        let linear = (*label == COMPARE_RUNG).then(|| {
            eprintln!("rung {label} ({nodes} nodes): linear-scan baseline…");
            let r = run_rung(nodes, hours, true, false);
            eprintln!(
                "  linear:  {:.3}s wall, {:.0} virt-s/wall-s, peak {} jobs",
                r.wall_seconds, r.virtual_per_wall, r.peak_gpu_jobs
            );
            r
        });
        eprintln!("rung {label} ({nodes} nodes): indexed engine…");
        let indexed = run_rung(nodes, hours, false, false);
        eprintln!(
            "  indexed: {:.3}s wall, {:.0} virt-s/wall-s, {} placed, peak {} concurrent GPU jobs, steady occupancy {:.1}%",
            indexed.wall_seconds,
            indexed.virtual_per_wall,
            indexed.placed,
            indexed.peak_gpu_jobs,
            indexed.steady_gpu_occupancy,
        );
        if let Some(lin) = &linear {
            // Same seed, same virtual decisions: the two runs must agree
            // on everything but wall clock, or the toggle is broken.
            assert_eq!(
                (lin.placed, lin.iterations, lin.peak_gpu_jobs),
                (indexed.placed, indexed.iterations, indexed.peak_gpu_jobs),
                "linear and indexed engines diverged at rung {label}"
            );
            let speedup = lin.wall_seconds / indexed.wall_seconds.max(1e-9);
            eprintln!("  speedup (indexed over linear): {speedup:.1}x");
            entries.push(rung_entry(label, nodes, hours, "linear", lin, ""));
            entries.push(rung_entry(
                label,
                nodes,
                hours,
                "indexed",
                &indexed,
                &format!(", \"speedup_vs_linear\": {speedup:.2}"),
            ));
        } else {
            entries.push(rung_entry(label, nodes, hours, "indexed", &indexed, ""));
        }
    }
    write_scale_file(out, entries);
}

/// The loop-flavor ladder: serial body vs partitioned parallel loop at
/// each requested rung, same seed. The flavors are byte-identical by
/// contract (crates/campaign/tests/parallel_loop.rs holds the trace
/// bytes; this bench holds the summary counters on real ladder rungs),
/// so any divergence here is a determinism bug, not a measurement.
fn parallel_main(rungs_arg: &str, out: &str, hours: u64) {
    let wanted: Vec<&str> = if rungs_arg == "all" {
        RUNGS.iter().map(|&(label, _)| label).collect()
    } else {
        rungs_arg.split(',').map(str::trim).collect()
    };
    let threads = rayon::current_num_threads();
    eprintln!("parallel ladder: {threads} worker thread(s)");
    let mut entries = Vec::new();
    for label in &wanted {
        let Some(&(_, nodes)) = RUNGS.iter().find(|&&(l, _)| l == *label) else {
            eprintln!(
                "unknown rung {label:?}; expected one of: {}",
                RUNGS.iter().map(|&(l, _)| l).collect::<Vec<_>>().join(", ")
            );
            std::process::exit(2);
        };
        // Serial first: it is the reference and VmHWM is cumulative.
        eprintln!("rung {label} ({nodes} nodes): serial loop…");
        let serial = run_rung(nodes, hours, false, true);
        eprintln!(
            "  serial:   {:.3}s wall, {:.0} virt-s/wall-s",
            serial.wall_seconds, serial.virtual_per_wall
        );
        eprintln!("rung {label} ({nodes} nodes): parallel loop…");
        let parallel = run_rung(nodes, hours, false, false);
        eprintln!(
            "  parallel: {:.3}s wall, {:.0} virt-s/wall-s, {} placed",
            parallel.wall_seconds, parallel.virtual_per_wall, parallel.placed
        );
        assert_eq!(
            (serial.placed, serial.iterations, serial.peak_gpu_jobs),
            (parallel.placed, parallel.iterations, parallel.peak_gpu_jobs),
            "serial and parallel loops diverged at rung {label}"
        );
        let speedup = serial.wall_seconds / parallel.wall_seconds.max(1e-9);
        eprintln!("  speedup (parallel over serial, {threads} thread(s)): {speedup:.2}x");
        // On a 1-thread pool the driver takes the serial body outright
        // (no fork, no staging), so "parallel" must cost no more than
        // serial modulo noise. A miss means the thread-count gate
        // regressed and single-core hosts are paying fork overhead.
        if threads == 1 {
            assert!(
                speedup >= 0.98,
                "1-thread parallel loop ran at {speedup:.2}x serial at rung {label}; \
                 the current_num_threads gate should make this free"
            );
        }
        entries.push(rung_entry(label, nodes, hours, "serial-loop", &serial, ""));
        entries.push(rung_entry(
            label,
            nodes,
            hours,
            "parallel-loop",
            &parallel,
            &format!(", \"threads\": {threads}, \"speedup_vs_serial\": {speedup:.2}"),
        ));
    }
    write_scale_file(out, entries);
}

/// The paper's full Table 1 schedule (32 runs, ≈597k node hours) under
/// both loop flavors — the end-to-end target the ladder rungs
/// approximate one allocation at a time.
fn table1_main(out: &str) {
    let schedule: &[(u32, u64, u32)] = &[
        (100, 6, 5),
        (100, 12, 3),
        (500, 12, 3),
        (1000, 24, 20),
        (4000, 24, 1),
    ];
    let node_hours: u64 = schedule
        .iter()
        .map(|&(n, h, c)| n as u64 * h * c as u64)
        .sum();
    let threads = rayon::current_num_threads();
    let run_flavor = |serial: bool| {
        let mut c = Campaign::new(CampaignConfig {
            serial_loop: serial,
            ..CampaignConfig::default()
        });
        let start = Instant::now();
        c.run_table(schedule);
        let wall = start.elapsed().as_secs_f64();
        let placed: u64 = c.reports().iter().map(|r| r.placed).sum();
        let iterations: u64 = c.reports().iter().map(|r| r.driver_iterations).sum();
        let peak: u64 = c
            .reports()
            .iter()
            .map(|r| r.peak_gpu_jobs)
            .max()
            .unwrap_or(0);
        let virtual_secs: u64 = schedule.iter().map(|&(_, h, c)| h * c as u64 * 3600).sum();
        RungResult {
            wall_seconds: wall,
            virtual_per_wall: virtual_secs as f64 / wall.max(1e-9),
            peak_rss_kib: peak_rss_kib(),
            placed,
            iterations,
            peak_gpu_jobs: peak,
            steady_gpu_occupancy: c
                .reports()
                .iter()
                .map(|r| r.gpu_mean_occupancy)
                .sum::<f64>()
                / schedule.iter().map(|&(_, _, c)| c as u64).sum::<u64>() as f64,
        }
    };
    eprintln!(
        "table1-full: 32 runs, {} node hours, {threads} worker thread(s)",
        mummi_bench::group_digits(node_hours)
    );
    eprintln!("  serial loop…");
    let serial = run_flavor(true);
    eprintln!(
        "  serial:   {:.1}s wall ({:.1} min), {:.0} virt-s/wall-s",
        serial.wall_seconds,
        serial.wall_seconds / 60.0,
        serial.virtual_per_wall
    );
    eprintln!("  parallel loop…");
    let parallel = run_flavor(false);
    eprintln!(
        "  parallel: {:.1}s wall ({:.1} min), {:.0} virt-s/wall-s, {} placed",
        parallel.wall_seconds,
        parallel.wall_seconds / 60.0,
        parallel.virtual_per_wall,
        parallel.placed
    );
    assert_eq!(
        (serial.placed, serial.iterations, serial.peak_gpu_jobs),
        (parallel.placed, parallel.iterations, parallel.peak_gpu_jobs),
        "serial and parallel loops diverged on the full Table 1 schedule"
    );
    let speedup = serial.wall_seconds / parallel.wall_seconds.max(1e-9);
    eprintln!("  speedup (parallel over serial, {threads} thread(s)): {speedup:.2}x");
    // Same gate pin as the ladder rungs: 1 thread must mean zero fork
    // overhead on the headline schedule.
    if threads == 1 {
        assert!(
            speedup >= 0.98,
            "1-thread parallel loop ran at {speedup:.2}x serial on table1-full; \
             the current_num_threads gate should make this free"
        );
    }
    let extra = format!(", \"node_hours\": {node_hours}");
    let entries = vec![
        rung_entry("table1-full", 4000, 24, "serial-loop", &serial, &extra),
        rung_entry(
            "table1-full",
            4000,
            24,
            "parallel-loop",
            &parallel,
            &format!("{extra}, \"threads\": {threads}, \"speedup_vs_serial\": {speedup:.2}"),
        ),
    ];
    write_scale_file(out, entries);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let scale = arg_after("--scale");
    let parallel = arg_after("--parallel");
    let table1 = args.iter().any(|a| a == "--table1");
    let out = arg_after("--out").unwrap_or_else(|| {
        if scale.is_some() || parallel.is_some() || table1 {
            "BENCH_scale.json".to_string()
        } else {
            "BENCH_campaign.json".to_string()
        }
    });

    if table1 {
        table1_main(&out);
        return;
    }
    if let Some(rungs) = parallel {
        let hours: u64 = arg_after("--hours")
            .and_then(|s| s.parse().ok())
            .unwrap_or(16);
        parallel_main(&rungs, &out, hours);
        return;
    }
    if let Some(rungs) = scale {
        let hours: u64 = arg_after("--hours")
            .and_then(|s| s.parse().ok())
            .unwrap_or(16);
        scale_main(&rungs, &out, hours);
        return;
    }

    let poll_millis: u64 = arg_after("--poll-millis")
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let reps: u32 = arg_after("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let poll = SimDuration::from_millis(poll_millis);

    eprintln!("selfbench: table1 --smoke schedule, poll {poll_millis}ms, best of {reps}");
    // Event-driven first: it allocates less, so the cumulative VmHWM
    // high-water mark stays attributable per phase.
    let event = run_mode(DriveMode::EventDriven, poll, reps);
    eprintln!(
        "  event-driven: {:.3}s wall, {:.0} virt-s/wall-s, {} iterations, peak {} KiB",
        event.wall_seconds, event.virtual_per_wall, event.iterations, event.peak_rss_kib
    );
    let ticked = run_mode(DriveMode::Ticked, poll, reps);
    eprintln!(
        "  ticked:       {:.3}s wall, {:.0} virt-s/wall-s, {} iterations, peak {} KiB",
        ticked.wall_seconds, ticked.virtual_per_wall, ticked.iterations, ticked.peak_rss_kib
    );
    let speedup = ticked.wall_seconds / event.wall_seconds.max(1e-9);
    eprintln!("  speedup (ticked/event): {speedup:.1}x");

    let phase_json = |p: &Phase| {
        format!(
            "{{\"wall_seconds\": {:.6}, \"virtual_per_wall\": {:.1}, \"peak_rss_kib\": {}, \"jobs_placed\": {}, \"driver_iterations\": {}}}",
            p.wall_seconds, p.virtual_per_wall, p.peak_rss_kib, p.placed, p.iterations
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"campaign-smoke\",\n  \"schema\": {SCHEMA},\n  \"schedule\": \"table1 --smoke\",\n  \"poll_interval_millis\": {poll_millis},\n  \"virtual_seconds\": {},\n  \"ticked\": {},\n  \"event_driven\": {},\n  \"speedup_event_over_ticked\": {:.2}\n}}\n",
        SCHEDULE
            .iter()
            .map(|&(_, h, c)| h * c as u64 * 3600)
            .sum::<u64>(),
        phase_json(&ticked),
        phase_json(&event),
        speedup
    );
    std::fs::write(&out, json).unwrap_or_else(|e| {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}
