//! §5.2 "Strategies for Further Scaling": the matcher ablation.
//!
//! "Under Flux's emulated environment with a resource graph configuration
//! similar to 4000 Summit nodes and the same job mix (24,000 jobs with 1
//! GPU and 3 CPU cores each, and 1 job with 150 nodes, each with 24
//! cores), we measured a 670× improvement in the performance."
//!
//! We run exactly that job mix through the resource-graph matcher under
//! the old configuration (low-ID exhaustive scoring, synchronous Q↔R) and
//! the new one (greedy first-match, asynchronous Q↔R), measuring both real
//! matcher work (nodes visited) and virtual pipeline time.

use resources::{JobShape, MachineSpec, MatchPolicy, ResourceGraph};
use sched::{Costs, Coupling, JobClass, JobEvent, JobSpec, SchedEngine};
use simcore::{SimDuration, SimTime};

struct Outcome {
    placed: usize,
    visited: u64,
    virtual_time: SimTime,
    wall: std::time::Duration,
}

fn run(policy: MatchPolicy, coupling: Coupling) -> Outcome {
    let graph = ResourceGraph::new(MachineSpec::summit_allocation(4000));
    let mut engine = SchedEngine::new(graph, policy, coupling, Costs::summit_campaign());

    // The paper's job mix: one 150-node × 24-core job + 24,000 GPU jobs
    // (1 GPU + "3 CPU cores" in Flux's emulation; we use the sim shape).
    engine.submit(
        JobSpec::new(
            JobClass::Continuum,
            JobShape::continuum(150),
            SimDuration::from_hours(24),
        ),
        SimTime::ZERO,
    );
    for _ in 0..24_000 {
        engine.submit(
            JobSpec::new(
                JobClass::CgSim,
                JobShape::sim(3),
                SimDuration::from_hours(24),
            ),
            SimTime::ZERO,
        );
    }

    let t0 = std::time::Instant::now();
    let mut placed = 0;
    let mut last_placed_at = SimTime::ZERO;
    // Advance in large steps until every job is placed or nothing moves.
    let mut horizon = SimTime::from_hours(1);
    loop {
        let events = engine.advance(horizon);
        for e in &events {
            if let JobEvent::Placed { at, .. } = e {
                placed += 1;
                last_placed_at = (*at).max(last_placed_at);
            }
        }
        if placed >= 24_001 || horizon >= SimTime::from_hours(200) {
            break;
        }
        horizon += SimDuration::from_hours(1);
    }
    Outcome {
        placed,
        visited: engine.graph().visited_total(),
        virtual_time: last_placed_at,
        wall: t0.elapsed(),
    }
}

fn main() {
    println!("# Matcher ablation: 4000 Summit nodes, 24,000 GPU jobs + 1 × 150-node job\n");
    let old = run(MatchPolicy::LowIdExhaustive, Coupling::Synchronous);
    let new = run(MatchPolicy::FirstMatch, Coupling::Asynchronous);

    println!("configuration            placed   nodes-visited    virtual-time   wall-time");
    println!(
        "low-ID + synchronous     {:>6}   {:>13}   {:>11.2} h   {:?}",
        old.placed,
        mummi_bench::group_digits(old.visited),
        old.virtual_time.as_hours_f64(),
        old.wall
    );
    println!(
        "first-match + async      {:>6}   {:>13}   {:>11.2} h   {:?}",
        new.placed,
        mummi_bench::group_digits(new.visited),
        new.virtual_time.as_hours_f64(),
        new.wall
    );

    let visit_speedup = old.visited as f64 / new.visited.max(1) as f64;
    let time_speedup = old.virtual_time.as_secs_f64() / new.virtual_time.as_secs_f64().max(1e-9);
    // Matcher-only service time: visited nodes × per-node traversal cost.
    let per_node = 250e-6;
    println!(
        "\nmatcher service time: {:.1} h -> {:.1} s  ({visit_speedup:.0}× less matcher work)",
        old.visited as f64 * per_node / 3600.0,
        new.visited as f64 * per_node
    );
    println!(
        "end-to-end load time improvement: {time_speedup:.0}× (submission ingestion now dominates — Amdahl)"
    );
    println!("paper: 670× matcher improvement in Flux's emulated environment");
}
