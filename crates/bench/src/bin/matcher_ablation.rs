//! §5.2 "Strategies for Further Scaling": the matcher ablation, plus the
//! policy × workload × rung matrix (`--matrix`).
//!
//! "Under Flux's emulated environment with a resource graph configuration
//! similar to 4000 Summit nodes and the same job mix (24,000 jobs with 1
//! GPU and 3 CPU cores each, and 1 job with 150 nodes, each with 24
//! cores), we measured a 670× improvement in the performance."
//!
//! The default mode runs exactly that job mix through the resource-graph
//! matcher under the old configuration (low-ID exhaustive scoring,
//! synchronous Q↔R) and the new one (greedy first-match, asynchronous
//! Q↔R), measuring both real matcher work (nodes visited) and virtual
//! pipeline time.
//!
//! `--matrix` extends the ablation across the scheduler policy zoo: every
//! `SchedPolicy` × every synthetic workload mix × the requested Summit
//! ladder rungs, emitting `BENCH_policies.json` with placement
//! throughput, steady GPU occupancy, p50/p99 queue waits, and backfill
//! fills per cell. For each policy and rung it also re-runs the paper's
//! scaled job mix under both matcher configurations and asserts the
//! async/first-match matcher-work ratio — the 670× quantity — reproduces
//! above a declared per-rung floor. A policy whose queue ordering
//! somehow re-serialized the matcher would fail here, which is the point:
//! the paper's coordination win must be a property of the design, not of
//! FCFS.
//!
//! Usage:
//!   matcher_ablation
//!   matcher_ablation --matrix [--rungs 1/64,1/8] [--hours <n>]
//!                    [--seed <n>] [--out BENCH_policies.json]

use resources::{JobShape, MachineSpec, MatchPolicy, ResourceGraph};
use sched::{Costs, Coupling, JobClass, JobEvent, JobSpec, SchedEngine, SchedPolicy};
use simcore::{SimDuration, SimTime};
use workload::WorkloadSpec;

struct Outcome {
    placed: usize,
    visited: u64,
    virtual_time: SimTime,
    wall: std::time::Duration,
}

/// Drives the paper's scaled job mix (`sims` single-GPU jobs behind one
/// `continuum_nodes`-wide CPU job) to full placement under one matcher ×
/// coupling × policy configuration.
fn run_mix(
    policy: MatchPolicy,
    coupling: Coupling,
    sched_policy: SchedPolicy,
    nodes: u32,
    continuum_nodes: u32,
    sims: usize,
) -> Outcome {
    let graph = ResourceGraph::new(MachineSpec::summit_allocation(nodes));
    let mut engine = SchedEngine::new(graph, policy, coupling, Costs::summit_campaign());
    engine.set_sched_policy(sched_policy);

    engine.submit(
        JobSpec::new(
            JobClass::Continuum,
            JobShape::continuum(continuum_nodes),
            SimDuration::from_hours(24),
        ),
        SimTime::ZERO,
    );
    for _ in 0..sims {
        engine.submit(
            JobSpec::new(
                JobClass::CgSim,
                JobShape::sim(3),
                SimDuration::from_hours(24),
            ),
            SimTime::ZERO,
        );
    }

    let t0 = std::time::Instant::now();
    let mut placed = 0;
    let mut last_placed_at = SimTime::ZERO;
    // Advance in large steps until every job is placed or nothing moves.
    let mut horizon = SimTime::from_hours(1);
    loop {
        let events = engine.advance(horizon);
        for e in &events {
            if let JobEvent::Placed { at, .. } = e {
                placed += 1;
                last_placed_at = (*at).max(last_placed_at);
            }
        }
        if placed > sims || horizon >= SimTime::from_hours(200) {
            break;
        }
        horizon += SimDuration::from_hours(1);
    }
    Outcome {
        placed,
        visited: engine.graph().visited_total(),
        virtual_time: last_placed_at,
        wall: t0.elapsed(),
    }
}

/// The paper's exact §5.2 mix: 4000 nodes, 1 × 150-node job, 24,000 sims.
fn run(policy: MatchPolicy, coupling: Coupling) -> Outcome {
    run_mix(policy, coupling, SchedPolicy::Fcfs, 4000, 150, 24_000)
}

fn ablation_main() {
    println!("# Matcher ablation: 4000 Summit nodes, 24,000 GPU jobs + 1 × 150-node job\n");
    let old = run(MatchPolicy::LowIdExhaustive, Coupling::Synchronous);
    let new = run(MatchPolicy::FirstMatch, Coupling::Asynchronous);

    println!("configuration            placed   nodes-visited    virtual-time   wall-time");
    println!(
        "low-ID + synchronous     {:>6}   {:>13}   {:>11.2} h   {:?}",
        old.placed,
        mummi_bench::group_digits(old.visited),
        old.virtual_time.as_hours_f64(),
        old.wall
    );
    println!(
        "first-match + async      {:>6}   {:>13}   {:>11.2} h   {:?}",
        new.placed,
        mummi_bench::group_digits(new.visited),
        new.virtual_time.as_hours_f64(),
        new.wall
    );

    let visit_speedup = old.visited as f64 / new.visited.max(1) as f64;
    let time_speedup = old.virtual_time.as_secs_f64() / new.virtual_time.as_secs_f64().max(1e-9);
    // Matcher-only service time: visited nodes × per-node traversal cost.
    let per_node = 250e-6;
    println!(
        "\nmatcher service time: {:.1} h -> {:.1} s  ({visit_speedup:.0}× less matcher work)",
        old.visited as f64 * per_node / 3600.0,
        new.visited as f64 * per_node
    );
    println!(
        "end-to-end load time improvement: {time_speedup:.0}× (submission ingestion now dominates — Amdahl)"
    );
    println!("paper: 670× matcher improvement in Flux's emulated environment");
}

/// The Summit ladder rungs the matrix can run, as `(label, nodes,
/// flat-policy floor, hierarchical floor)` — the declared floors for the
/// async/first-match matcher-work ratio at that scale. The 670× figure
/// is a 4000-node number; exhaustive scoring visits O(nodes) per
/// placement, so the reproducible ratio shrinks with the rung (measured:
/// ~62× at 1/64, ~490× at 1/8) and the floors sit at under half the
/// measured value to absorb mix noise without ever letting the ablation
/// quietly invert. Hierarchical mode gets its own floor (~2.2× measured
/// at both rungs): partitioning already bounds the exhaustive scan to
/// one child *and* its range-walk placement primitive is not free-index
/// accelerated, so its headline ratio is structurally small — the
/// invariant asserted there is only that async/first-match never loses.
const MATRIX_RUNGS: &[(&str, u32, f64, f64)] = &[("1/64", 72, 25.0, 1.5), ("1/8", 576, 200.0, 1.5)];

/// One policy × workload × rung measurement.
struct Cell {
    submitted: u64,
    placed: u64,
    completed: u64,
    jobs_per_minute: f64,
    steady_gpu_occupancy: f64,
    p50_wait_us: u64,
    p99_wait_us: u64,
    backfills: u64,
    match_misses: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives one workload stream through a bare engine (production matcher
/// configuration: first-match + async) under `policy` for `hours`
/// virtual hours, sampling GPU occupancy once per virtual minute.
fn run_cell(policy: SchedPolicy, spec: &WorkloadSpec, nodes: u32, hours: u64, seed: u64) -> Cell {
    let graph = ResourceGraph::new(MachineSpec::summit_allocation(nodes));
    let total_gpus = graph.gpu_usage().1 as f64;
    let mut engine = SchedEngine::new(
        graph,
        MatchPolicy::FirstMatch,
        Coupling::Asynchronous,
        Costs::summit_campaign(),
    );
    engine.set_sched_policy(policy);
    engine.collect_wait_samples(true);
    // Job budget sized to the fastest synthetic cadence (~3 arrivals/min)
    // so every mix keeps arriving across the whole horizon; sources whose
    // stream would outlast the window are truncated at `end` below.
    let mut src = spec
        .build(seed, nodes, hours * 180)
        .unwrap_or_else(|e| panic!("workload {} failed to build: {e}", spec.name()));

    let end = SimTime::from_hours(hours);
    let minute = SimDuration::from_mins(1);
    let mut next_sample = SimTime::ZERO + minute;
    let mut occupancy = Vec::new();
    // Event-driven drive: jump to the earlier of the next arrival and the
    // next sample boundary; the engine orders everything in between
    // internally (the same interleaving the replay tests pin).
    loop {
        let mut next = next_sample;
        if let Some(at) = src.next_at() {
            next = next.min(at);
        }
        if next > end {
            break;
        }
        engine.advance(next);
        while let Some(job) = src.pop_due(next) {
            engine.submit(job.spec, job.at);
        }
        if next == next_sample {
            let (_, free_gpus, _) = engine.graph().free_totals();
            occupancy.push(1.0 - free_gpus as f64 / total_gpus.max(1.0));
            next_sample += minute;
        }
    }
    engine.advance(end);

    let stats = engine.stats();
    let mut waits = engine.wait_samples().to_vec();
    waits.sort_unstable();
    let steady = &occupancy[occupancy.len() * 2 / 3..];
    Cell {
        submitted: stats.submitted,
        placed: stats.placed,
        completed: stats.completed,
        jobs_per_minute: stats.placed as f64 / (hours * 60) as f64,
        steady_gpu_occupancy: if steady.is_empty() {
            0.0
        } else {
            steady.iter().sum::<f64>() / steady.len() as f64
        },
        p50_wait_us: percentile(&waits, 0.50),
        p99_wait_us: percentile(&waits, 0.99),
        backfills: stats.backfills,
        match_misses: stats.match_misses,
    }
}

fn matrix_main(rungs_arg: &str, hours: u64, seed: u64, out: &str) {
    let wanted: Vec<&str> = rungs_arg.split(',').map(str::trim).collect();
    let mut entries = Vec::new();
    let mut ratio_checks = Vec::new();
    for label in &wanted {
        let Some(&(_, nodes, flat_floor, hier_floor)) =
            MATRIX_RUNGS.iter().find(|&&(l, _, _, _)| l == *label)
        else {
            eprintln!(
                "unknown rung {label:?}; expected one of: {}",
                MATRIX_RUNGS
                    .iter()
                    .map(|&(l, _, _, _)| l)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        };
        for policy in SchedPolicy::ALL {
            for spec in &WorkloadSpec::SYNTHETIC {
                let c = run_cell(policy, spec, nodes, hours, seed);
                eprintln!(
                    "rung {label} × {} × {}: {:.1} jobs/min, occupancy {:.2}, p99 wait {:.1} s, {} backfills",
                    policy.name(),
                    spec.name(),
                    c.jobs_per_minute,
                    c.steady_gpu_occupancy,
                    c.p99_wait_us as f64 / 1e6,
                    c.backfills
                );
                entries.push(format!(
                    "{{\"rung\": \"{label}\", \"nodes\": {nodes}, \"policy\": \"{}\", \
                     \"workload\": \"{}\", \"virtual_hours\": {hours}, \"submitted\": {}, \
                     \"placed\": {}, \"completed\": {}, \"jobs_per_minute\": {:.3}, \
                     \"steady_gpu_occupancy\": {:.4}, \"p50_wait_us\": {}, \"p99_wait_us\": {}, \
                     \"backfills\": {}, \"match_misses\": {}}}",
                    policy.name(),
                    spec.name(),
                    c.submitted,
                    c.placed,
                    c.completed,
                    c.jobs_per_minute,
                    c.steady_gpu_occupancy,
                    c.p50_wait_us,
                    c.p99_wait_us,
                    c.backfills,
                    c.match_misses,
                ));
            }

            // The ablation itself, scaled to the rung, under this policy:
            // the async/first-match configuration must still beat the
            // sync/low-ID one on matcher work by at least the rung floor.
            let ratio_floor = if policy == SchedPolicy::Hierarchical {
                hier_floor
            } else {
                flat_floor
            };
            let continuum_nodes = (nodes * 3).div_ceil(80).max(1);
            let sims = nodes as usize * 4;
            let old = run_mix(
                MatchPolicy::LowIdExhaustive,
                Coupling::Synchronous,
                policy,
                nodes,
                continuum_nodes,
                sims,
            );
            let new = run_mix(
                MatchPolicy::FirstMatch,
                Coupling::Asynchronous,
                policy,
                nodes,
                continuum_nodes,
                sims,
            );
            assert_eq!(
                (old.placed, new.placed),
                (sims + 1, sims + 1),
                "rung {label} × {}: ablation mix did not fully place",
                policy.name()
            );
            let visit_ratio = old.visited as f64 / new.visited.max(1) as f64;
            let time_ratio =
                old.virtual_time.as_secs_f64() / new.virtual_time.as_secs_f64().max(1e-9);
            eprintln!(
                "rung {label} × {}: matcher-work ratio {visit_ratio:.0}× (floor {ratio_floor}×), load-time ratio {time_ratio:.1}×",
                policy.name()
            );
            assert!(
                visit_ratio >= ratio_floor,
                "rung {label} × {}: async/first-match matcher-work ratio {visit_ratio:.1}× \
                 fell below the declared {ratio_floor}× floor — the paper's coordination win \
                 no longer reproduces under this policy",
                policy.name()
            );
            ratio_checks.push(format!(
                "{{\"rung\": \"{label}\", \"nodes\": {nodes}, \"policy\": \"{}\", \
                 \"jobs\": {}, \"visited_sync_low_id\": {}, \"visited_async_first_match\": {}, \
                 \"matcher_work_ratio\": {visit_ratio:.2}, \"load_time_ratio\": {time_ratio:.3}, \
                 \"declared_floor\": {ratio_floor}}}",
                policy.name(),
                sims + 1,
                old.visited,
                new.visited,
            ));
        }
    }

    let mut json = format!(
        "{{\n  \"bench\": \"policy-matrix\",\n  \"schema\": {},\n  \"virtual_hours\": {hours},\n  \"seed\": {seed},\n  \"entries\": [\n",
        mummi_bench::files::SCHEMA
    );
    for (i, e) in entries.iter().enumerate() {
        json.push_str("    ");
        json.push_str(e);
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"ratio_checks\": [\n");
    for (i, e) in ratio_checks.iter().enumerate() {
        json.push_str("    ");
        json.push_str(e);
        json.push_str(if i + 1 < ratio_checks.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "wrote {out} ({} cells, {} ratio checks)",
        entries.len(),
        ratio_checks.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if args.iter().any(|a| a == "--matrix") {
        let rungs = arg_after("--rungs").unwrap_or_else(|| "1/64,1/8".to_string());
        let hours: u64 = arg_after("--hours")
            .and_then(|s| s.parse().ok())
            .unwrap_or(6);
        let seed: u64 = arg_after("--seed")
            .and_then(|s| s.parse().ok())
            .unwrap_or(2021);
        let out = arg_after("--out").unwrap_or_else(|| "BENCH_policies.json".to_string());
        matrix_main(&rungs, hours, seed, &out);
        return;
    }
    ablation_main();
}
