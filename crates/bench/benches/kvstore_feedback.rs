//! Criterion microbenchmarks behind Figure 7: the three feedback query
//! types against the 20-shard cluster.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kvstore::{Client, Cluster};

fn populated(n: u64) -> (Client, Vec<String>) {
    let client = Client::new(Cluster::new(20));
    let payload = Bytes::from(vec![0u8; 17 * 1024]);
    let pairs: Vec<(String, Bytes)> = (0..n)
        .map(|i| (format!("rdf:new:{{s{}}}:f{i}", i % 3600), payload.clone()))
        .collect();
    client.mset(&pairs);
    let keys = pairs.into_iter().map(|(k, _)| k).collect();
    (client, keys)
}

fn bench_feedback_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("kvstore_feedback");
    for &n in &[10_000u64, 40_000] {
        g.throughput(Throughput::Elements(n));
        let (client, keys) = populated(n);
        g.bench_with_input(BenchmarkId::new("retrieve_keys", n), &n, |b, _| {
            b.iter(|| {
                let found = client.keys("rdf:new:*");
                assert_eq!(found.len() as u64, n);
            })
        });
        g.bench_with_input(BenchmarkId::new("retrieve_values", n), &n, |b, _| {
            b.iter(|| {
                let vals = client.mget(&keys);
                assert_eq!(vals.len() as u64, n);
            })
        });
        g.bench_with_input(BenchmarkId::new("rename_pairs", n), &n, |b, _| {
            // Rename (tagging) round trip so state is restored per iter.
            b.iter(|| {
                for k in &keys {
                    let done = k.replace("rdf:new", "rdf:done");
                    client.rename(k, &done).expect("rename");
                    client.rename(&done, k).expect("rename back");
                }
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_feedback_queries
}
criterion_main!(benches);
