//! Criterion microbenchmarks behind the ≥12× feedback speedup: one
//! CG→continuum feedback iteration over each data-store backend, same
//! frames, same aggregation code (in-process costs only; the bin
//! `feedback_speedup` adds the modeled GPFS/interconnect latencies).

use cg::analysis::CgFrame;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datastore::{DataStore, FsStore, KvDataStore, TarStore};
use mummi_core::{CgToContinuumFeedback, FeedbackManager};

fn frame(i: usize) -> CgFrame {
    CgFrame {
        id: format!("sim{}:f{i}", i % 360),
        time: i as f64,
        encoding: [0.1, 0.5, 0.9],
        rdfs: vec![vec![1.5; 64]; 4],
    }
}

fn fill(store: &mut dyn DataStore, n: usize) {
    for i in 0..n {
        let f = frame(i);
        store
            .write(mummi_core::ns::RDF_NEW, &f.id, &f.encode())
            .expect("write");
    }
}

fn bench_backends(c: &mut Criterion) {
    let n = 500usize;
    let mut g = c.benchmark_group("feedback_backend");
    g.throughput(Throughput::Elements(n as u64));

    g.bench_with_input(BenchmarkId::new("redis", n), &n, |b, &n| {
        b.iter_batched(
            || {
                let mut store = KvDataStore::new(20);
                fill(&mut store, n);
                store
            },
            |mut store| {
                let mut fb = CgToContinuumFeedback::new(4);
                let out = fb.iterate(&mut store).expect("iterate");
                assert_eq!(out.processed, n);
            },
            criterion::BatchSize::LargeInput,
        )
    });

    g.bench_with_input(BenchmarkId::new("filesystem", n), &n, |b, &n| {
        let dir = std::env::temp_dir().join(format!("fbb-fs-{}", std::process::id()));
        b.iter_batched(
            || {
                let _ = std::fs::remove_dir_all(&dir);
                let mut store = FsStore::open(&dir).expect("open");
                fill(&mut store, n);
                store
            },
            |mut store| {
                let mut fb = CgToContinuumFeedback::new(4);
                let out = fb.iterate(&mut store).expect("iterate");
                assert_eq!(out.processed, n);
            },
            criterion::BatchSize::LargeInput,
        )
    });

    g.bench_with_input(BenchmarkId::new("taridx", n), &n, |b, &n| {
        let dir = std::env::temp_dir().join(format!("fbb-tar-{}", std::process::id()));
        b.iter_batched(
            || {
                let _ = std::fs::remove_dir_all(&dir);
                let mut store = TarStore::open(&dir).expect("open");
                fill(&mut store, n);
                store
            },
            |mut store| {
                let mut fb = CgToContinuumFeedback::new(4);
                let out = fb.iterate(&mut store).expect("iterate");
                assert_eq!(out.processed, n);
            },
            criterion::BatchSize::LargeInput,
        )
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_backends
}
criterion_main!(benches);
