//! Criterion microbenchmarks behind the matcher ablation (§5.2): cost of
//! one placement under the exhaustive low-ID policy vs first-match, as a
//! function of resource-graph size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resources::{JobShape, MachineSpec, MatchPolicy, ResourceGraph};

fn bench_match_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_match");
    for &nodes in &[1000u32, 4000] {
        for (name, policy) in [
            ("low_id_exhaustive", MatchPolicy::LowIdExhaustive),
            ("first_match", MatchPolicy::FirstMatch),
        ] {
            g.bench_with_input(BenchmarkId::new(name, nodes), &nodes, |b, &nodes| {
                let mut graph = ResourceGraph::new(MachineSpec::summit_allocation(nodes));
                b.iter(|| {
                    let alloc = graph
                        .try_alloc(&JobShape::sim_standard(), policy)
                        .expect("fits");
                    graph.release(&alloc);
                })
            });
        }
    }
    // Matching into a nearly-full graph (the late-load regime).
    g.bench_function("first_match_nearly_full_1000", |b| {
        let mut graph = ResourceGraph::new(MachineSpec::summit_allocation(1000));
        // Fill all but the last node.
        for _ in 0..(999 * 6) {
            graph.try_alloc(&JobShape::sim_standard(), MatchPolicy::FirstMatch);
        }
        b.iter(|| {
            let alloc = graph
                .try_alloc(&JobShape::sim_standard(), MatchPolicy::FirstMatch)
                .expect("one node left");
            graph.release(&alloc);
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_match_policies
}
criterion_main!(benches);
