//! Criterion microbenchmarks behind the 165× selector-capacity claim:
//! candidate ingestion and selection cost for the farthest-point sampler
//! (at its queue cap) vs the binned sampler (at much larger counts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dynim::{
    BinnedConfig, BinnedSampler, FarthestPointSampler, FpsConfig, HdPoint, KdTreeNn, Sampler,
};

fn point9(i: u64) -> HdPoint {
    let x = (i as f64 * 0.754877) % 1.0;
    let y = (i as f64 * 0.569840) % 1.0;
    HdPoint::new(
        format!("p{i}"),
        vec![
            x,
            y,
            (x * 7.3) % 1.0,
            (y * 3.1) % 1.0,
            x * y,
            x - y,
            x + y,
            x,
            y,
        ],
    )
}

fn point3(i: u64) -> HdPoint {
    HdPoint::new(
        format!("f{i}"),
        vec![
            (i % 97) as f64 / 97.0,
            (i % 89) as f64 / 89.0,
            (i % 83) as f64 / 83.0,
        ],
    )
}

fn bench_samplers(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynim_samplers");

    // Ingest cost (the "negligible add" requirement).
    g.throughput(Throughput::Elements(1000));
    g.bench_function("fps_add_1000", |b| {
        b.iter(|| {
            let mut s = FarthestPointSampler::new(FpsConfig { cap: 0 }, KdTreeNn::new());
            for i in 0..1000 {
                s.add(point9(i));
            }
            assert_eq!(s.candidates(), 1000);
        })
    });
    g.bench_function("binned_add_1000", |b| {
        b.iter(|| {
            let mut s = BinnedSampler::new(BinnedConfig::cg_frames());
            for i in 0..1000 {
                s.add(point3(i));
            }
            assert_eq!(s.candidates(), 1000);
        })
    });

    // Selection cost at queue scale.
    for &n in &[5_000u64, 35_000] {
        g.bench_with_input(BenchmarkId::new("fps_select10", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut s = FarthestPointSampler::new(FpsConfig { cap: 0 }, KdTreeNn::new());
                    for i in 0..n {
                        s.add(point9(i));
                    }
                    s
                },
                |mut s| {
                    assert_eq!(s.select(10).len(), 10);
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    for &n in &[35_000u64, 1_000_000] {
        g.bench_with_input(BenchmarkId::new("binned_select10", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut s = BinnedSampler::new(BinnedConfig::cg_frames());
                    for i in 0..n {
                        s.add(point3(i));
                    }
                    s
                },
                |mut s| {
                    assert_eq!(s.select(10).len(), 10);
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_samplers
}
criterion_main!(benches);
