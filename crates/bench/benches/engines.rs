//! Criterion microbenchmarks of the physics substrates: per-step cost of
//! the DDFT continuum solver and the CG/AA particle engines at a few
//! sizes. These anchor the campaign performance models to the real code.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cg::system::{build_membrane, MembraneConfig};
use continuum::{ContinuumConfig, ContinuumSim};
use mapping::{backmap, BackmapConfig};

fn bench_continuum(c: &mut Criterion) {
    let mut g = c.benchmark_group("continuum_step");
    for &(nx, species) in &[(96usize, 3usize), (192, 14)] {
        g.bench_with_input(
            BenchmarkId::new("ddft", format!("{nx}x{nx}x{species}")),
            &(nx, species),
            |b, &(nx, species)| {
                let mut sim = ContinuumSim::new(ContinuumConfig {
                    nx,
                    ny: nx,
                    inner_species: species.saturating_sub(6).max(1),
                    outer_species: species.min(6),
                    ..ContinuumConfig::laptop()
                });
                b.iter(|| sim.step_once());
            },
        );
    }
    g.finish();
}

fn bench_md(c: &mut Criterion) {
    let mut g = c.benchmark_group("md_step");
    for &lipids in &[16usize, 64] {
        g.bench_with_input(
            BenchmarkId::new("cg_langevin", lipids * 3 * 2 * 2 + 6),
            &lipids,
            |b, &lipids| {
                let mut m = build_membrane(&MembraneConfig {
                    lipids_per_species: lipids,
                    ..MembraneConfig::small()
                });
                m.relax(20);
                b.iter(|| m.run(1));
            },
        );
    }
    g.bench_function("aa_langevin_backmapped", |b| {
        let mut m = build_membrane(&MembraneConfig::small());
        m.relax(20);
        let (mut aa, _) = backmap(&m, &BackmapConfig::default());
        b.iter(|| aa.run(1));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_continuum, bench_md
}
criterion_main!(benches);
