//! Criterion microbenchmarks behind the taridx numbers (§5.2): append and
//! random-access read throughput at the campaign's ~156 KB member size.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use taridx::IndexedTar;

fn bench_taridx(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("taridx-crit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");
    let member = vec![42u8; 156 * 1024];

    let mut g = c.benchmark_group("taridx_io");
    g.throughput(Throughput::Bytes(member.len() as u64));

    g.bench_function("append_156k", |b| {
        let mut tar = IndexedTar::create(dir.join("append.tar")).expect("create");
        let mut i = 0u64;
        b.iter(|| {
            tar.append(&format!("m{i}"), &member).expect("append");
            i += 1;
        });
    });

    g.bench_function("random_read_156k", |b| {
        let path = dir.join("read.tar");
        let mut tar = IndexedTar::create(&path).expect("create");
        let n = 500;
        for i in 0..n {
            tar.append(&format!("m{i}"), &member).expect("append");
        }
        let mut keys: Vec<String> = (0..n).map(|i| format!("m{i}")).collect();
        keys.shuffle(&mut rand::rngs::StdRng::seed_from_u64(1));
        let mut it = keys.iter().cycle();
        b.iter(|| {
            let k = it.next().expect("cycle");
            let data = tar.read(k).expect("read");
            assert_eq!(data.len(), member.len());
        });
    });

    g.bench_function("recover_index_500_members", |b| {
        let path = dir.join("recover.tar");
        let mut tar = IndexedTar::create(&path).expect("create");
        for i in 0..500 {
            tar.append(&format!("m{i}"), &member[..1024])
                .expect("append");
        }
        b.iter(|| {
            tar.recover_index().expect("recover");
            assert_eq!(tar.len(), 500);
        });
    });

    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_taridx
}
criterion_main!(benches);
