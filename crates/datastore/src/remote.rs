//! Datastore backend over the networked [`storeserver`] tier.
//!
//! Same `ns/key → ns:{key}` hash-tag mapping as [`crate::KvDataStore`],
//! same trace vocabulary (`datastore.kv.*` — the counters describe the
//! *operation mix*, which is transport-independent), different engine:
//! ops travel as wire frames through a [`storeserver::StoreClient`],
//! either over TCP to a real server or through the deterministic
//! in-process loopback transport. Loopback is the campaign path: no
//! sockets, no threads, no latency model — so a campaign run against
//! this backend traces byte-identical to the in-process kvstore path
//! (pinned by `campaign/tests/netstore.rs`), while the exact same
//! backend pointed at a TCP address rides a durable, crash-recoverable
//! server.
//!
//! Bulk reads use the wire `get_many` (one round trip) and listing uses
//! server-side glob `keys`; the batched client is what keeps the
//! feedback loop's op cost amortized once a real network sits between
//! the workflow manager and its frames.

use std::net::SocketAddr;
use std::sync::Arc;

use bytes::Bytes;
use storeserver::{StoreClient, StoreEngine, StoreError};
use trace::Tracer;

use crate::store::{BackendKind, DataStore};
use crate::{DataError, Result};

/// A store backed by the networked datastore tier.
pub struct RemoteDataStore {
    client: StoreClient,
    tracer: Tracer,
}

impl std::fmt::Debug for RemoteDataStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteDataStore").finish_non_exhaustive()
    }
}

impl RemoteDataStore {
    /// A deterministic in-process store: a fresh memory-only engine
    /// behind the loopback transport. The drop-in replacement for
    /// `KvDataStore::new(shards)` on the campaign path.
    pub fn loopback(shards: usize) -> RemoteDataStore {
        RemoteDataStore::over_engine(Arc::new(StoreEngine::in_memory(shards)))
    }

    /// Loopback over an existing engine (shared, or durable via
    /// `StoreEngine::open` — WAL records and recovery work identically
    /// in-process).
    pub fn over_engine(engine: Arc<StoreEngine>) -> RemoteDataStore {
        RemoteDataStore {
            client: StoreClient::loopback(engine),
            tracer: Tracer::disabled(),
        }
    }

    /// Connects to a store server over TCP.
    pub fn connect(addr: SocketAddr) -> std::io::Result<RemoteDataStore> {
        Ok(RemoteDataStore {
            client: StoreClient::connect(addr)?,
            tracer: Tracer::disabled(),
        })
    }

    /// Installs a tracer; each operation bumps the same `datastore.kv.*`
    /// counter family as the in-process backend.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The underlying wire client.
    pub fn client(&mut self) -> &mut StoreClient {
        &mut self.client
    }

    /// Records one store operation. The op counter matches
    /// `KvDataStore` byte for byte; there is no virtual latency model
    /// on the wire client, so the `datastore.kv.op_ns` histogram never
    /// observes — exactly the zero-latency case of the in-process path.
    fn trace_op(&self, op: &'static str) {
        if !self.tracer.is_enabled() {
            return;
        }
        self.tracer.counter_add(&format!("datastore.kv.{op}s"), 1);
    }

    fn full_key(ns: &str, key: &str) -> String {
        format!("{ns}:{{{key}}}")
    }

    fn strip_ns(ns: &str, full: &str) -> Option<String> {
        let prefix = format!("{ns}:{{");
        full.strip_prefix(&prefix)
            .and_then(|rest| rest.strip_suffix('}'))
            .map(str::to_string)
    }
}

fn lift(e: StoreError) -> DataError {
    match e {
        StoreError::Io(e) => DataError::Io(e),
        StoreError::NoSuchKey(k) => DataError::Kv(kvstore::KvError::NoSuchKey(k)),
        StoreError::CrossShardRename { from, to } => {
            DataError::Kv(kvstore::KvError::CrossShardRename { from, to })
        }
        other => DataError::Io(std::io::Error::other(other.to_string())),
    }
}

impl DataStore for RemoteDataStore {
    fn kind(&self) -> BackendKind {
        BackendKind::RemoteKv
    }

    fn write(&mut self, ns: &str, key: &str, data: &[u8]) -> Result<()> {
        self.client
            .put(&Self::full_key(ns, key), Bytes::copy_from_slice(data))
            .map_err(lift)?;
        self.trace_op("write");
        Ok(())
    }

    fn read(&mut self, ns: &str, key: &str) -> Result<Vec<u8>> {
        let got = self.client.get(&Self::full_key(ns, key)).map_err(lift)?;
        self.trace_op("read");
        got.map(|b| b.to_vec()).ok_or_else(|| DataError::NotFound {
            ns: ns.to_string(),
            key: key.to_string(),
        })
    }

    fn exists(&mut self, ns: &str, key: &str) -> bool {
        self.client
            .exists(&Self::full_key(ns, key))
            .unwrap_or(false)
    }

    fn list(&mut self, ns: &str) -> Result<Vec<String>> {
        let mut keys: Vec<String> = self
            .client
            .keys(&format!("{ns}:{{*"))
            .map_err(lift)?
            .iter()
            .filter_map(|k| Self::strip_ns(ns, k))
            .collect();
        // Shard-grouped on the wire; the trait promises lexicographic.
        keys.sort_unstable();
        Ok(keys)
    }

    fn move_ns(&mut self, key: &str, from: &str, to: &str) -> Result<()> {
        let renamed = self
            .client
            .rename(&Self::full_key(from, key), &Self::full_key(to, key));
        self.trace_op("move");
        renamed.map_err(|e| match e {
            StoreError::NoSuchKey(_) => DataError::NotFound {
                ns: from.to_string(),
                key: key.to_string(),
            },
            other => lift(other),
        })
    }

    fn delete(&mut self, ns: &str, key: &str) -> Result<bool> {
        self.client.del(&Self::full_key(ns, key)).map_err(lift)
    }

    fn flush(&mut self) -> Result<()> {
        // The wire durability barrier (a no-op on a memory-only engine).
        self.client.sync().map_err(lift)?;
        Ok(())
    }

    fn read_many(&mut self, ns: &str, keys: &[String]) -> Result<Vec<Vec<u8>>> {
        let full: Vec<String> = keys.iter().map(|k| Self::full_key(ns, k)).collect();
        let vals = self.client.get_many(full).map_err(lift)?;
        self.trace_op("read_many");
        keys.iter()
            .zip(vals)
            .map(|(k, v)| {
                v.map(|b| b.to_vec()).ok_or_else(|| DataError::NotFound {
                    ns: ns.to_string(),
                    key: k.clone(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvDataStore;

    /// Every op, run against both backends: results (including error
    /// shapes and list order) must agree — the differential oracle for
    /// transport independence.
    #[test]
    fn remote_loopback_matches_in_process_kv() {
        let mut kv = KvDataStore::new(20);
        let mut remote = RemoteDataStore::loopback(20);
        let both = |kv: &mut KvDataStore,
                    remote: &mut RemoteDataStore,
                    f: &dyn Fn(&mut dyn DataStore) -> String| {
            let a = f(kv);
            let b = f(remote);
            assert_eq!(a, b);
        };

        for i in 0..50 {
            both(&mut kv, &mut remote, &|s| {
                format!("{:?}", s.write("rdf-new", &format!("s{i}:f0"), &[i as u8]))
            });
        }
        both(&mut kv, &mut remote, &|s| {
            format!("{:?}", s.list("rdf-new"))
        });
        both(&mut kv, &mut remote, &|s| {
            format!("{:?}", s.read("rdf-new", "s7:f0"))
        });
        both(&mut kv, &mut remote, &|s| {
            format!("{:?}", s.read("rdf-new", "missing"))
        });
        both(&mut kv, &mut remote, &|s| {
            format!("{}", s.exists("rdf-new", "s3:f0"))
        });
        for i in 0..25 {
            both(&mut kv, &mut remote, &|s| {
                format!(
                    "{:?}",
                    s.move_ns(&format!("s{i}:f0"), "rdf-new", "rdf-done")
                )
            });
        }
        both(&mut kv, &mut remote, &|s| {
            format!("{:?}", s.move_ns("missing", "rdf-new", "rdf-done"))
        });
        let keys: Vec<String> = (20..30).map(|i| format!("s{i}:f0")).collect();
        both(&mut kv, &mut remote, &|s| {
            format!("{:?}", s.read_many("rdf-new", &keys.clone()))
        });
        both(&mut kv, &mut remote, &|s| {
            format!("{:?}", s.delete("rdf-new", "s30:f0"))
        });
        both(&mut kv, &mut remote, &|s| {
            format!("{:?}", s.count("rdf-done"))
        });
        both(&mut kv, &mut remote, &|s| format!("{:?}", s.flush()));
    }

    #[test]
    fn traces_share_the_kv_vocabulary() {
        let tracer = Tracer::enabled();
        let mut remote = RemoteDataStore::loopback(4);
        remote.set_tracer(tracer.clone());
        remote.write("ns", "k", b"v").unwrap();
        remote.read("ns", "k").unwrap();
        remote.move_ns("k", "ns", "done").unwrap();
        remote.read_many("done", &["k".to_string()]).unwrap();
        let jsonl = tracer.to_jsonl();
        for counter in [
            "datastore.kv.writes",
            "datastore.kv.reads",
            "datastore.kv.moves",
            "datastore.kv.read_manys",
        ] {
            assert!(jsonl.contains(counter), "missing {counter} in {jsonl}");
        }
    }
}
