//! Generic data management: one abstract interface, three backends.
//!
//! §4.2 of the paper: "Rather than speculating on all possible scenarios and
//! creating tailored implementations, we have developed an abstract notion of
//! a data interface to support different specific backends. Currently, we use
//! three backends: filesystem, taridx, and redis." Application modules are
//! written against the [`DataStore`] trait and the backend is "a single
//! configuration switch":
//!
//! - [`FsStore`] — plain files under a root directory, with I/O armoring
//!   (bounded retries) and optional checkpoint backups;
//! - [`TarStore`] — one [`taridx::IndexedTar`] archive per namespace,
//!   append-only, for the billion-file problem;
//! - [`KvDataStore`] — a [`kvstore`] cluster, for high-throughput in-situ
//!   feedback data;
//! - [`TieredStore`] — the §6 RAM-disk/GPFS pair: a fast tier absorbing
//!   all traffic with selected namespaces written through to a durable
//!   tier.
//!
//! The namespace-move operation ([`DataStore::move_ns`]) is the paper's
//! frame-tagging primitive: processed items are moved out of the live
//! namespace (file rename / archive append / key rename) so feedback cost
//! "scales only with the number of ongoing simulations, and not with the
//! total simulation frames ever generated."
//!
//! [`codec`] provides the byte-stream encoding of numeric arrays (the
//! "Numpy archive into a byte stream" of §4.2) used by analyses and
//! feedback. [`faults`] wraps any store with deterministic failure
//! injection for resilience testing.

//! ```
//! use datastore::{DataStore, KvDataStore};
//!
//! let mut store = KvDataStore::new(4); // one config switch picks a backend
//! store.write("rdf-new", "sim1:f0", b"frame").unwrap();
//! // Feedback tags the frame by moving it out of the live namespace.
//! store.move_ns("sim1:f0", "rdf-new", "rdf-done").unwrap();
//! assert_eq!(store.count("rdf-new").unwrap(), 0);
//! assert_eq!(store.read("rdf-done", "sim1:f0").unwrap(), b"frame");
//! ```

pub mod codec;
pub mod faults;
mod fs;
mod kv;
mod remote;
mod store;
mod tar;
mod tiered;

pub use faults::{FailingStore, FaultWindow, Op, ScheduledFaultStore, OP_COUNT};
pub use fs::FsStore;
pub use kv::KvDataStore;
pub use remote::RemoteDataStore;
pub use store::{BackendKind, DataStore};
pub use tar::TarStore;
pub use tiered::TieredStore;

use std::fmt;
use std::io;

/// Errors surfaced by data-store operations.
#[derive(Debug)]
pub enum DataError {
    /// Underlying filesystem failure (possibly after exhausting retries).
    Io(io::Error),
    /// Archive-layer failure.
    Tar(taridx::TarError),
    /// Key-value-layer failure.
    Kv(kvstore::KvError),
    /// The requested item does not exist in the namespace.
    NotFound { ns: String, key: String },
    /// Injected fault (testing only).
    Injected(String),
    /// Malformed encoded payload.
    Codec(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::Tar(e) => write!(f, "archive error: {e}"),
            DataError::Kv(e) => write!(f, "kv error: {e}"),
            DataError::NotFound { ns, key } => write!(f, "not found: {ns}/{key}"),
            DataError::Injected(m) => write!(f, "injected fault: {m}"),
            DataError::Codec(m) => write!(f, "codec error: {m}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::Tar(e) => Some(e),
            DataError::Kv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DataError {
    fn from(e: io::Error) -> Self {
        DataError::Io(e)
    }
}

impl From<taridx::TarError> for DataError {
    fn from(e: taridx::TarError) -> Self {
        match e {
            taridx::TarError::KeyNotFound(k) => DataError::NotFound {
                ns: String::new(),
                key: k,
            },
            other => DataError::Tar(other),
        }
    }
}

impl From<kvstore::KvError> for DataError {
    fn from(e: kvstore::KvError) -> Self {
        DataError::Kv(e)
    }
}

/// Convenience alias for data-store results.
pub type Result<T> = std::result::Result<T, DataError>;
