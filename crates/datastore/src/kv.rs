//! Key-value backend over a [`kvstore`] cluster.
//!
//! Item `ns/key` maps to cluster key `ns:{key}` — the user key is the hash
//! tag, so all namespaces of the same item co-locate on one shard and
//! [`DataStore::move_ns`] is a single-shard atomic rename. This is how the
//! CG→continuum feedback marks frames as processed without touching GPFS.

use bytes::Bytes;
use std::sync::Arc;

use kvstore::{Client, Cluster, LatencyModel};
use trace::Tracer;

use crate::store::{BackendKind, DataStore};
use crate::{DataError, Result};

/// A store backed by an in-memory key-value cluster.
#[derive(Debug, Clone)]
pub struct KvDataStore {
    client: Client,
    tracer: Tracer,
}

impl Default for KvDataStore {
    /// A fresh four-shard cluster (handy for scratch tiers and tests).
    fn default() -> Self {
        KvDataStore::new(4)
    }
}

impl KvDataStore {
    /// Creates a store over a fresh cluster of `shards` shards.
    pub fn new(shards: usize) -> KvDataStore {
        KvDataStore {
            client: Client::new(Cluster::new(shards)),
            tracer: Tracer::disabled(),
        }
    }

    /// Creates a store over an existing cluster (shared with other
    /// components, as on the 4000-node run where all compute nodes mapped
    /// onto 20 Redis nodes).
    pub fn over(cluster: Arc<Cluster>) -> KvDataStore {
        KvDataStore {
            client: Client::new(cluster),
            tracer: Tracer::disabled(),
        }
    }

    /// Same, with a network latency model for throughput studies.
    pub fn over_with_latency(cluster: Arc<Cluster>, latency: LatencyModel) -> KvDataStore {
        KvDataStore {
            client: Client::with_latency(cluster, latency),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a tracer; each operation bumps a `datastore.kv.*` counter
    /// and feeds its virtual network latency (from the client's latency
    /// model, in nanoseconds) into the `datastore.kv.op_ns` histogram.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Records one cluster operation: the op counter plus the virtual
    /// nanoseconds it cost (delta of the client's accumulator).
    fn trace_op(&self, op: &'static str, ns_before: u64) {
        if !self.tracer.is_enabled() {
            return;
        }
        self.tracer.counter_add(&format!("datastore.kv.{op}s"), 1);
        let delta = self.client.virtual_ns().saturating_sub(ns_before);
        if delta > 0 {
            self.tracer.observe("datastore.kv.op_ns", delta);
        }
    }

    /// The underlying client (for virtual-time accounting in benchmarks).
    pub fn client(&self) -> &Client {
        &self.client
    }

    fn full_key(ns: &str, key: &str) -> String {
        format!("{ns}:{{{key}}}")
    }

    fn strip_ns(ns: &str, full: &str) -> Option<String> {
        let prefix = format!("{ns}:{{");
        full.strip_prefix(&prefix)
            .and_then(|rest| rest.strip_suffix('}'))
            .map(str::to_string)
    }
}

impl DataStore for KvDataStore {
    fn kind(&self) -> BackendKind {
        BackendKind::Redis
    }

    fn write(&mut self, ns: &str, key: &str, data: &[u8]) -> Result<()> {
        let before = self.client.virtual_ns();
        self.client
            .set(&Self::full_key(ns, key), Bytes::copy_from_slice(data));
        self.trace_op("write", before);
        Ok(())
    }

    fn read(&mut self, ns: &str, key: &str) -> Result<Vec<u8>> {
        let before = self.client.virtual_ns();
        let got = self.client.get(&Self::full_key(ns, key));
        self.trace_op("read", before);
        got.map(|b| b.to_vec()).ok_or_else(|| DataError::NotFound {
            ns: ns.to_string(),
            key: key.to_string(),
        })
    }

    fn exists(&mut self, ns: &str, key: &str) -> bool {
        self.client.exists(&Self::full_key(ns, key))
    }

    fn list(&mut self, ns: &str) -> Result<Vec<String>> {
        let mut keys: Vec<String> = self
            .client
            .keys(&format!("{ns}:{{*"))
            .iter()
            .filter_map(|k| Self::strip_ns(ns, k))
            .collect();
        // Cluster scans return keys grouped by shard; the trait promises
        // lexicographic order.
        keys.sort_unstable();
        Ok(keys)
    }

    fn move_ns(&mut self, key: &str, from: &str, to: &str) -> Result<()> {
        let before = self.client.virtual_ns();
        let renamed = self
            .client
            .rename(&Self::full_key(from, key), &Self::full_key(to, key));
        self.trace_op("move", before);
        renamed.map_err(|e| match e {
            kvstore::KvError::NoSuchKey(_) => DataError::NotFound {
                ns: from.to_string(),
                key: key.to_string(),
            },
            other => DataError::Kv(other),
        })
    }

    fn delete(&mut self, ns: &str, key: &str) -> Result<bool> {
        Ok(self.client.del(&Self::full_key(ns, key)))
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    fn read_many(&mut self, ns: &str, keys: &[String]) -> Result<Vec<Vec<u8>>> {
        let full: Vec<String> = keys.iter().map(|k| Self::full_key(ns, k)).collect();
        let before = self.client.virtual_ns();
        let vals = self.client.mget(&full);
        self.trace_op("read_many", before);
        keys.iter()
            .zip(vals)
            .map(|(k, v)| {
                v.map(|b| b.to_vec()).ok_or_else(|| DataError::NotFound {
                    ns: ns.to_string(),
                    key: k.clone(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_namespacing() {
        let mut s = KvDataStore::new(8);
        s.write("rdf-new", "sim1:f1", b"data").unwrap();
        s.write("other", "sim1:f1", b"other-data").unwrap();
        assert_eq!(s.read("rdf-new", "sim1:f1").unwrap(), b"data");
        assert_eq!(s.read("other", "sim1:f1").unwrap(), b"other-data");
        let keys = s.list("rdf-new").unwrap();
        assert_eq!(keys, vec!["sim1:f1"]);
    }

    #[test]
    fn move_ns_is_single_shard_rename() {
        let mut s = KvDataStore::new(20);
        for i in 0..100 {
            s.write("new", &format!("f{i}"), b"x").unwrap();
        }
        for i in 0..100 {
            s.move_ns(&format!("f{i}"), "new", "done").unwrap();
        }
        assert_eq!(s.count("new").unwrap(), 0);
        assert_eq!(s.count("done").unwrap(), 100);
    }

    #[test]
    fn missing_key_errors() {
        let mut s = KvDataStore::new(4);
        assert!(matches!(s.read("ns", "k"), Err(DataError::NotFound { .. })));
        assert!(matches!(
            s.move_ns("k", "a", "b"),
            Err(DataError::NotFound { .. })
        ));
        assert!(!s.delete("ns", "k").unwrap());
    }

    #[test]
    fn read_many_pipelines() {
        let mut s = KvDataStore::new(4);
        let keys: Vec<String> = (0..50).map(|i| format!("f{i}")).collect();
        for (i, k) in keys.iter().enumerate() {
            s.write("ns", k, &[i as u8]).unwrap();
        }
        let vals = s.read_many("ns", &keys).unwrap();
        assert_eq!(vals.len(), 50);
        assert_eq!(vals[7], vec![7u8]);
    }

    #[test]
    fn shared_cluster_sees_writes_from_clones() {
        let cluster = Cluster::new(4);
        let mut a = KvDataStore::over(Arc::clone(&cluster));
        let mut b = KvDataStore::over(cluster);
        a.write("ns", "k", b"v").unwrap();
        assert_eq!(b.read("ns", "k").unwrap(), b"v");
    }
}
