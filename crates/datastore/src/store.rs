//! The abstract data interface.

use crate::Result;

/// Which backend a store is (the paper's "single configuration switch").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Direct filesystem files.
    Filesystem,
    /// Indexed tar archives.
    Taridx,
    /// In-memory key-value cluster.
    Redis,
    /// Networked sharded store tier (wire protocol + WAL durability).
    RemoteKv,
}

impl BackendKind {
    /// Short stable name for configs and logs.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Filesystem => "filesystem",
            BackendKind::Taridx => "taridx",
            BackendKind::Redis => "redis",
            BackendKind::RemoteKv => "remote-kv",
        }
    }
}

/// Abstract, namespaced binary storage.
///
/// A *namespace* groups related items (e.g. `rdf-new`, `rdf-done`,
/// `patches`); a *key* identifies one item inside it. Implementations map
/// these onto directories/files, archives/members, or key prefixes.
///
/// Methods take `&mut self` because the tar backend keeps seekable file
/// handles; thread-shared use goes through one store per worker or an
/// external lock, mirroring MuMMI's "thread-safe objects … with a mix of
/// blocking and nonblocking locks".
pub trait DataStore: Send {
    /// Backend identity.
    fn kind(&self) -> BackendKind;

    /// Writes `data` under `ns/key`, overwriting any existing item.
    fn write(&mut self, ns: &str, key: &str, data: &[u8]) -> Result<()>;

    /// Reads the item at `ns/key`.
    fn read(&mut self, ns: &str, key: &str) -> Result<Vec<u8>>;

    /// Whether `ns/key` exists.
    fn exists(&mut self, ns: &str, key: &str) -> bool;

    /// Lists all keys in `ns`, in ascending lexicographic (byte) order.
    ///
    /// Ordering is part of the contract, not a courtesy: feedback
    /// managers fold over `list` output with order-sensitive running
    /// aggregates, so a backend-dependent order would make campaign
    /// results depend on the storage configuration switch.
    fn list(&mut self, ns: &str) -> Result<Vec<String>>;

    /// Moves `key` from namespace `from` to namespace `to` — the feedback
    /// "tagging" primitive. Fails if the source item does not exist.
    fn move_ns(&mut self, key: &str, from: &str, to: &str) -> Result<()>;

    /// Deletes `ns/key`; returns whether it existed.
    fn delete(&mut self, ns: &str, key: &str) -> Result<bool>;

    /// Persists any buffered state (indices, file syncs).
    fn flush(&mut self) -> Result<()>;

    /// Number of keys in `ns` (default: `list().len()`).
    fn count(&mut self, ns: &str) -> Result<usize> {
        Ok(self.list(ns)?.len())
    }

    /// Bulk read; default loops over [`DataStore::read`]. Backends with
    /// pipelining override this.
    fn read_many(&mut self, ns: &str, keys: &[String]) -> Result<Vec<Vec<u8>>> {
        keys.iter().map(|k| self.read(ns, k)).collect()
    }

    /// Bulk namespace move; default loops over [`DataStore::move_ns`].
    fn move_ns_many(&mut self, keys: &[String], from: &str, to: &str) -> Result<()> {
        for k in keys {
            self.move_ns(k, from, to)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(BackendKind::Filesystem.name(), "filesystem");
        assert_eq!(BackendKind::Taridx.name(), "taridx");
        assert_eq!(BackendKind::Redis.name(), "redis");
        assert_eq!(BackendKind::RemoteKv.name(), "remote-kv");
    }
}
