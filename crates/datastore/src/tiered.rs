//! The RAM-disk / parallel-filesystem tier pair.
//!
//! §6 "Responsible Use of Shared Resources": "MuMMI employs a conscious
//! mix of the shared filesystem and local on-node RAM disk, which
//! alleviates its footprint by reducing frequency of high-bandwidth file
//! I/O operations" — e.g. backmapping "produces 2.9 GB data every 2 hours
//! on the local on-node RAM disk and about 0.5 GB data is backed up to
//! GPFS".
//!
//! [`TieredStore`] composes two backends: a **fast** tier absorbing all
//! traffic and a **durable** tier receiving write-through copies of the
//! namespaces that matter after the node dies (checkpoints, selected
//! frames). Reads prefer the fast tier and fall back to the durable one —
//! the recovery path after a node loss wipes the RAM disk.

use crate::store::{BackendKind, DataStore};
use crate::{DataError, Result};

/// A two-tier store: fast front, durable back.
pub struct TieredStore<F: DataStore, D: DataStore> {
    fast: F,
    durable: D,
    /// Namespaces that are written through to the durable tier. Everything
    /// else lives only in the fast tier (scratch data).
    durable_namespaces: Vec<String>,
    writes_fast: u64,
    writes_durable: u64,
    fallback_reads: u64,
}

impl<F: DataStore, D: DataStore> TieredStore<F, D> {
    /// Composes the tiers; `durable_namespaces` are written through.
    pub fn new(fast: F, durable: D, durable_namespaces: &[&str]) -> TieredStore<F, D> {
        TieredStore {
            fast,
            durable,
            durable_namespaces: durable_namespaces.iter().map(|s| s.to_string()).collect(),
            writes_fast: 0,
            writes_durable: 0,
            fallback_reads: 0,
        }
    }

    fn is_durable(&self, ns: &str) -> bool {
        self.durable_namespaces.iter().any(|d| d == ns)
    }

    /// (fast writes, durable writes) — the paper's 2.9 GB vs 0.5 GB split
    /// is visible here as a write-count ratio.
    pub fn write_counts(&self) -> (u64, u64) {
        (self.writes_fast, self.writes_durable)
    }

    /// Reads that had to fall back to the durable tier.
    pub fn fallback_reads(&self) -> u64 {
        self.fallback_reads
    }

    /// Simulates losing the node: the fast tier's contents vanish.
    /// Durable namespaces remain readable through the fallback path.
    pub fn lose_fast_tier(&mut self) -> Result<()>
    where
        F: Default,
    {
        self.fast = F::default();
        Ok(())
    }

    /// Direct access to the durable tier (e.g. for post-campaign archival).
    pub fn durable_mut(&mut self) -> &mut D {
        &mut self.durable
    }
}

impl<F: DataStore, D: DataStore> DataStore for TieredStore<F, D> {
    fn kind(&self) -> BackendKind {
        self.fast.kind()
    }

    fn write(&mut self, ns: &str, key: &str, data: &[u8]) -> Result<()> {
        self.fast.write(ns, key, data)?;
        self.writes_fast += 1;
        if self.is_durable(ns) {
            self.durable.write(ns, key, data)?;
            self.writes_durable += 1;
        }
        Ok(())
    }

    fn read(&mut self, ns: &str, key: &str) -> Result<Vec<u8>> {
        match self.fast.read(ns, key) {
            Ok(v) => Ok(v),
            Err(DataError::NotFound { .. }) if self.is_durable(ns) => {
                self.fallback_reads += 1;
                self.durable.read(ns, key)
            }
            Err(e) => Err(e),
        }
    }

    fn exists(&mut self, ns: &str, key: &str) -> bool {
        self.fast.exists(ns, key) || (self.is_durable(ns) && self.durable.exists(ns, key))
    }

    fn list(&mut self, ns: &str) -> Result<Vec<String>> {
        let mut keys = self.fast.list(ns)?;
        if self.is_durable(ns) {
            for k in self.durable.list(ns)? {
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
            // The union of two sorted tiers is not sorted; restore the
            // trait's lexicographic order.
            keys.sort_unstable();
        }
        Ok(keys)
    }

    fn move_ns(&mut self, key: &str, from: &str, to: &str) -> Result<()> {
        // Move in the fast tier; mirror the move durably where applicable.
        let data = self.read(from, key)?;
        self.write(to, key, &data)?;
        let _ = self.fast.delete(from, key)?;
        if self.is_durable(from) {
            let _ = self.durable.delete(from, key)?;
        }
        Ok(())
    }

    fn delete(&mut self, ns: &str, key: &str) -> Result<bool> {
        let fast = self.fast.delete(ns, key)?;
        let durable = if self.is_durable(ns) {
            self.durable.delete(ns, key)?
        } else {
            false
        };
        Ok(fast || durable)
    }

    fn flush(&mut self) -> Result<()> {
        self.fast.flush()?;
        self.durable.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvDataStore;

    fn tiered() -> TieredStore<KvDataStore, KvDataStore> {
        TieredStore::new(
            KvDataStore::new(4),
            KvDataStore::new(4),
            &["checkpoints", "aa-input"],
        )
    }

    #[test]
    fn scratch_stays_fast_durable_is_mirrored() {
        let mut s = tiered();
        s.write("scratch", "traj", &vec![0u8; 1000]).unwrap();
        s.write("checkpoints", "ckpt-1", b"state").unwrap();
        let (fast, durable) = s.write_counts();
        assert_eq!((fast, durable), (2, 1));
        // Both readable through the tier.
        assert_eq!(s.read("scratch", "traj").unwrap().len(), 1000);
        assert_eq!(s.read("checkpoints", "ckpt-1").unwrap(), b"state");
        // The durable tier holds only the checkpoint.
        assert!(s.durable_mut().exists("checkpoints", "ckpt-1"));
        assert!(!s.durable_mut().exists("scratch", "traj"));
    }

    #[test]
    fn node_loss_keeps_durable_namespaces() {
        let mut s = tiered();
        s.write("scratch", "traj", b"big trajectory").unwrap();
        s.write("checkpoints", "ckpt-1", b"state").unwrap();
        s.lose_fast_tier().unwrap();
        // Scratch is gone; the checkpoint survives via fallback reads.
        assert!(matches!(
            s.read("scratch", "traj"),
            Err(DataError::NotFound { .. })
        ));
        assert_eq!(s.read("checkpoints", "ckpt-1").unwrap(), b"state");
        assert_eq!(s.fallback_reads(), 1);
        assert!(s.exists("checkpoints", "ckpt-1"));
        assert_eq!(s.list("checkpoints").unwrap(), vec!["ckpt-1"]);
    }

    #[test]
    fn move_ns_works_across_tiers() {
        let mut s = tiered();
        s.write("aa-input", "sys-1", b"backmapped").unwrap();
        s.move_ns("sys-1", "aa-input", "scratch").unwrap();
        assert!(!s.exists("aa-input", "sys-1"));
        assert_eq!(s.read("scratch", "sys-1").unwrap(), b"backmapped");
        // The durable copy of the source was cleaned up too.
        assert!(!s.durable_mut().exists("aa-input", "sys-1"));
    }

    #[test]
    fn delete_covers_both_tiers() {
        let mut s = tiered();
        s.write("checkpoints", "c", b"x").unwrap();
        assert!(s.delete("checkpoints", "c").unwrap());
        assert!(!s.exists("checkpoints", "c"));
        assert!(!s.durable_mut().exists("checkpoints", "c"));
        assert!(!s.delete("checkpoints", "c").unwrap());
    }
}
