//! Deterministic fault injection for resilience testing.
//!
//! The paper stresses that MuMMI "can be restored completely after any such
//! crash without much loss of data". [`FailingStore`] wraps any backend and
//! fails operations on a deterministic schedule so tests can exercise the
//! retry/armoring and producer/consumer wait paths. [`ScheduledFaultStore`]
//! generalizes it from a fixed period to virtual-time fault windows (the
//! form serialized in `chaos` fault plans): inside a window, the targeted
//! operation fails periodically and is slowed by a configured latency.

use simcore::{SimDuration, SimTime};

use crate::store::{BackendKind, DataStore};
use crate::{DataError, Result};

/// Which operations the injector can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `write` calls.
    Write,
    /// `read` calls.
    Read,
    /// `move_ns` calls.
    MoveNs,
    /// `delete` calls.
    Delete,
    /// `flush` calls.
    Flush,
}

/// Number of [`Op`] variants (size of per-op counter arrays).
pub const OP_COUNT: usize = 5;

impl Op {
    /// Stable label (used by serialized fault plans).
    pub fn label(self) -> &'static str {
        match self {
            Op::Write => "write",
            Op::Read => "read",
            Op::MoveNs => "move_ns",
            Op::Delete => "delete",
            Op::Flush => "flush",
        }
    }

    /// The inverse of [`Op::label`].
    pub fn from_label(label: &str) -> Option<Op> {
        match label {
            "write" => Some(Op::Write),
            "read" => Some(Op::Read),
            "move_ns" => Some(Op::MoveNs),
            "delete" => Some(Op::Delete),
            "flush" => Some(Op::Flush),
            _ => None,
        }
    }
}

/// A wrapper that fails every `period`-th call of the targeted operation.
///
/// With `period == 3`, targeted calls 3, 6, 9, … fail. A `period` of 0
/// disables injection.
///
/// Per-op counting semantics: **every** fallible call — `write`, `read`,
/// `move_ns`, `delete`, `flush` — increments its own slot in
/// [`FailingStore::op_counts`] exactly once per call, whether or not the
/// op is the injection target. The failure schedule is driven solely by
/// the targeted op's own counter, so untargeted traffic never shifts it,
/// and `injected()` always equals `op_counts()[target] / period`
/// (integer division).
#[derive(Debug)]
pub struct FailingStore<S> {
    inner: S,
    target: Op,
    period: u64,
    counts: [u64; OP_COUNT],
    injected: u64,
}

impl<S: DataStore> FailingStore<S> {
    /// Wraps `inner`, failing every `period`-th `target` operation.
    pub fn new(inner: S, target: Op, period: u64) -> FailingStore<S> {
        FailingStore {
            inner,
            target,
            period,
            counts: [0; OP_COUNT],
            injected: 0,
        }
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Calls observed per op, indexed by `Op as usize`. Every fallible
    /// call is counted, targeted or not.
    pub fn op_counts(&self) -> [u64; OP_COUNT] {
        self.counts
    }

    /// Calls observed for one op. (Named `op_count` so it cannot shadow
    /// the [`DataStore::count`] trait method on the wrapper.)
    pub fn op_count(&self, op: Op) -> u64 {
        self.counts[op as usize]
    }

    /// Consumes the wrapper, returning the inner store.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Direct access to the wrapped store.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    fn should_fail(&mut self, op: Op) -> bool {
        let slot = op as usize;
        self.counts[slot] += 1;
        if op != self.target || self.period == 0 {
            return false;
        }
        if self.counts[slot].is_multiple_of(self.period) {
            self.injected += 1;
            true
        } else {
            false
        }
    }

    fn fault(op: Op) -> DataError {
        DataError::Injected(format!("scheduled fault on {op:?}"))
    }
}

impl<S: DataStore> DataStore for FailingStore<S> {
    fn kind(&self) -> BackendKind {
        self.inner.kind()
    }

    fn write(&mut self, ns: &str, key: &str, data: &[u8]) -> Result<()> {
        if self.should_fail(Op::Write) {
            return Err(Self::fault(Op::Write));
        }
        self.inner.write(ns, key, data)
    }

    fn read(&mut self, ns: &str, key: &str) -> Result<Vec<u8>> {
        if self.should_fail(Op::Read) {
            return Err(Self::fault(Op::Read));
        }
        self.inner.read(ns, key)
    }

    fn exists(&mut self, ns: &str, key: &str) -> bool {
        self.inner.exists(ns, key)
    }

    fn list(&mut self, ns: &str) -> Result<Vec<String>> {
        self.inner.list(ns)
    }

    fn move_ns(&mut self, key: &str, from: &str, to: &str) -> Result<()> {
        if self.should_fail(Op::MoveNs) {
            return Err(Self::fault(Op::MoveNs));
        }
        self.inner.move_ns(key, from, to)
    }

    fn delete(&mut self, ns: &str, key: &str) -> Result<bool> {
        if self.should_fail(Op::Delete) {
            return Err(Self::fault(Op::Delete));
        }
        self.inner.delete(ns, key)
    }

    fn flush(&mut self) -> Result<()> {
        if self.should_fail(Op::Flush) {
            return Err(Self::fault(Op::Flush));
        }
        self.inner.flush()
    }
}

/// One scheduled fault window: between `from` (inclusive) and `until`
/// (exclusive) in virtual time, every `period`-th call of `op` fails, and
/// every call of `op` is charged `extra_latency` of virtual I/O delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// The targeted operation.
    pub op: Op,
    /// Fail every `period`-th targeted call made inside the window
    /// (counted on the window's own counter; 0 = latency only).
    pub period: u64,
    /// Virtual latency added to each targeted call inside the window.
    pub extra_latency: SimDuration,
}

impl FaultWindow {
    fn active(&self, now: SimTime, op: Op) -> bool {
        self.op == op && self.from <= now && now < self.until
    }
}

/// A wrapper driven by virtual time: the owner advances the clock with
/// [`ScheduledFaultStore::set_now`] and the wrapper applies whichever
/// [`FaultWindow`]s are open. With no windows it is an exact passthrough,
/// so a campaign can always run behind it.
///
/// Counting follows [`FailingStore`] semantics: every fallible call
/// increments its per-op counter exactly once; each window additionally
/// counts the targeted calls it saw, drives its failure schedule from
/// that private counter, and the totals satisfy
/// `injected() == Σ_w (window_hits(w) / period(w))`.
#[derive(Debug)]
pub struct ScheduledFaultStore<S> {
    inner: S,
    windows: Vec<FaultWindow>,
    /// Targeted calls observed per window (drives its schedule).
    window_hits: Vec<u64>,
    now: SimTime,
    counts: [u64; OP_COUNT],
    injected: u64,
    delayed: u64,
    delay_total: SimDuration,
}

impl<S: DataStore> ScheduledFaultStore<S> {
    /// Wraps `inner` with a schedule of fault windows.
    pub fn new(inner: S, windows: Vec<FaultWindow>) -> ScheduledFaultStore<S> {
        let window_hits = vec![0; windows.len()];
        ScheduledFaultStore {
            inner,
            windows,
            window_hits,
            now: SimTime::ZERO,
            counts: [0; OP_COUNT],
            injected: 0,
            delayed: 0,
            delay_total: SimDuration::ZERO,
        }
    }

    /// Advances the wrapper's virtual clock (call once per driver tick).
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// (calls delayed, total virtual delay charged) by latency spikes.
    pub fn delayed(&self) -> (u64, SimDuration) {
        (self.delayed, self.delay_total)
    }

    /// Calls observed per op, indexed by `Op as usize`.
    pub fn op_counts(&self) -> [u64; OP_COUNT] {
        self.counts
    }

    /// Consumes the wrapper, returning the inner store.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Direct access to the wrapped store.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    fn should_fail(&mut self, op: Op) -> bool {
        self.counts[op as usize] += 1;
        let mut fail = false;
        for (i, w) in self.windows.iter().enumerate() {
            if !w.active(self.now, op) {
                continue;
            }
            self.window_hits[i] += 1;
            if w.extra_latency > SimDuration::ZERO {
                self.delayed += 1;
                self.delay_total += w.extra_latency;
            }
            if w.period > 0 && self.window_hits[i].is_multiple_of(w.period) {
                fail = true;
            }
        }
        if fail {
            self.injected += 1;
        }
        fail
    }

    fn fault(op: Op) -> DataError {
        DataError::Injected(format!("windowed fault on {op:?}"))
    }
}

impl<S: DataStore> DataStore for ScheduledFaultStore<S> {
    fn kind(&self) -> BackendKind {
        self.inner.kind()
    }

    fn write(&mut self, ns: &str, key: &str, data: &[u8]) -> Result<()> {
        if self.should_fail(Op::Write) {
            return Err(Self::fault(Op::Write));
        }
        self.inner.write(ns, key, data)
    }

    fn read(&mut self, ns: &str, key: &str) -> Result<Vec<u8>> {
        if self.should_fail(Op::Read) {
            return Err(Self::fault(Op::Read));
        }
        self.inner.read(ns, key)
    }

    fn exists(&mut self, ns: &str, key: &str) -> bool {
        self.inner.exists(ns, key)
    }

    fn list(&mut self, ns: &str) -> Result<Vec<String>> {
        self.inner.list(ns)
    }

    fn move_ns(&mut self, key: &str, from: &str, to: &str) -> Result<()> {
        if self.should_fail(Op::MoveNs) {
            return Err(Self::fault(Op::MoveNs));
        }
        self.inner.move_ns(key, from, to)
    }

    fn delete(&mut self, ns: &str, key: &str) -> Result<bool> {
        if self.should_fail(Op::Delete) {
            return Err(Self::fault(Op::Delete));
        }
        self.inner.delete(ns, key)
    }

    fn flush(&mut self) -> Result<()> {
        if self.should_fail(Op::Flush) {
            return Err(Self::fault(Op::Flush));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvDataStore;

    #[test]
    fn fails_on_schedule() {
        let mut s = FailingStore::new(KvDataStore::new(2), Op::Write, 3);
        let mut results = Vec::new();
        for i in 0..9 {
            results.push(s.write("ns", &format!("k{i}"), b"v").is_ok());
        }
        assert_eq!(
            results,
            vec![true, true, false, true, true, false, true, true, false]
        );
        assert_eq!(s.injected(), 3);
    }

    #[test]
    fn zero_period_never_fails() {
        let mut s = FailingStore::new(KvDataStore::new(2), Op::Write, 0);
        for i in 0..10 {
            assert!(s.write("ns", &format!("k{i}"), b"v").is_ok());
        }
        assert_eq!(s.injected(), 0);
        assert_eq!(s.op_count(Op::Write), 10, "untargeted counting still exact");
    }

    #[test]
    fn only_targeted_op_fails() {
        let mut s = FailingStore::new(KvDataStore::new(2), Op::Read, 1);
        assert!(s.write("ns", "k", b"v").is_ok());
        assert!(matches!(s.read("ns", "k"), Err(DataError::Injected(_))));
        // Untargeted ops pass through.
        assert!(s.delete("ns", "k").is_ok());
    }

    #[test]
    fn every_op_is_counted_exactly_once_per_call() {
        let mut s = FailingStore::new(KvDataStore::new(2), Op::Read, 0);
        s.write("a", "k", b"v").unwrap();
        s.write("a", "k2", b"v").unwrap();
        s.read("a", "k").unwrap();
        s.move_ns("k", "a", "b").unwrap();
        s.delete("b", "k").unwrap();
        s.flush().unwrap();
        s.flush().unwrap();
        assert_eq!(s.op_counts(), [2, 1, 1, 1, 2]);
        assert_eq!(s.op_count(Op::Flush), 2);
        assert_eq!(s.op_count(Op::MoveNs), 1);
    }

    #[test]
    fn untargeted_traffic_does_not_shift_the_schedule() {
        // flush/move_ns between writes must not advance the Write schedule.
        let mut with_noise = FailingStore::new(KvDataStore::new(2), Op::Write, 2);
        let mut quiet = FailingStore::new(KvDataStore::new(2), Op::Write, 2);
        let mut noisy_results = Vec::new();
        let mut quiet_results = Vec::new();
        for i in 0..6 {
            with_noise.flush().unwrap();
            let _ = with_noise.move_ns("nope", "a", "b");
            noisy_results.push(with_noise.write("ns", &format!("k{i}"), b"v").is_ok());
            quiet_results.push(quiet.write("ns", &format!("k{i}"), b"v").is_ok());
        }
        assert_eq!(noisy_results, quiet_results);
        assert_eq!(with_noise.injected(), quiet.injected());
    }

    #[test]
    fn retry_after_fault_succeeds() {
        // Period 2: every second read fails; a retry loop makes progress.
        let mut s = FailingStore::new(KvDataStore::new(2), Op::Read, 2);
        s.write("ns", "k", b"v").unwrap();
        // Advance the schedule so the loop's first attempt is the failing one.
        assert!(s.read("ns", "k").is_ok());
        let mut attempts = 0;
        let val = loop {
            attempts += 1;
            match s.read("ns", "k") {
                Ok(v) => break v,
                Err(DataError::Injected(_)) if attempts < 5 => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert_eq!(val, b"v");
        assert!(attempts >= 2);
    }

    #[test]
    fn window_fails_only_inside_its_span() {
        let w = FaultWindow {
            from: SimTime::from_secs(10),
            until: SimTime::from_secs(20),
            op: Op::Read,
            period: 1,
            extra_latency: SimDuration::ZERO,
        };
        let mut s = ScheduledFaultStore::new(KvDataStore::new(2), vec![w]);
        s.write("ns", "k", b"v").unwrap();
        s.set_now(SimTime::from_secs(5));
        assert!(s.read("ns", "k").is_ok(), "before the window");
        s.set_now(SimTime::from_secs(10));
        assert!(s.read("ns", "k").is_err(), "window start is inclusive");
        s.set_now(SimTime::from_secs(19));
        assert!(s.read("ns", "k").is_err(), "inside the window");
        s.set_now(SimTime::from_secs(20));
        assert!(s.read("ns", "k").is_ok(), "window end is exclusive");
        assert_eq!(s.injected(), 2);
        assert_eq!(s.op_counts()[Op::Read as usize], 4);
        assert_eq!(s.op_counts()[Op::Write as usize], 1);
    }

    #[test]
    fn window_period_counts_only_window_traffic() {
        let w = FaultWindow {
            from: SimTime::from_secs(10),
            until: SimTime::from_secs(20),
            op: Op::Write,
            period: 2,
            extra_latency: SimDuration::ZERO,
        };
        let mut s = ScheduledFaultStore::new(KvDataStore::new(2), vec![w]);
        // Heavy traffic before the window must not pre-advance the period.
        for i in 0..7 {
            s.write("ns", &format!("pre{i}"), b"v").unwrap();
        }
        s.set_now(SimTime::from_secs(10));
        assert!(s.write("ns", "w1", b"v").is_ok(), "1st window call passes");
        assert!(s.write("ns", "w2", b"v").is_err(), "2nd window call fails");
        assert!(s.write("ns", "w3", b"v").is_ok());
        assert!(s.write("ns", "w4", b"v").is_err());
        assert_eq!(s.injected(), 2);
    }

    #[test]
    fn latency_only_window_delays_without_failing() {
        let w = FaultWindow {
            from: SimTime::ZERO,
            until: SimTime::from_secs(100),
            op: Op::Read,
            period: 0,
            extra_latency: SimDuration::from_millis(7),
        };
        let mut s = ScheduledFaultStore::new(KvDataStore::new(2), vec![w]);
        s.write("ns", "k", b"v").unwrap();
        for _ in 0..3 {
            assert!(s.read("ns", "k").is_ok());
        }
        assert_eq!(s.injected(), 0);
        let (n, total) = s.delayed();
        assert_eq!(n, 3);
        assert_eq!(total, SimDuration::from_millis(21));
    }

    #[test]
    fn no_windows_is_exact_passthrough() {
        let mut s = ScheduledFaultStore::new(KvDataStore::new(2), Vec::new());
        for i in 0..20 {
            assert!(s.write("ns", &format!("k{i}"), b"v").is_ok());
            assert!(s.read("ns", &format!("k{i}")).is_ok());
        }
        assert_eq!(s.injected(), 0);
        assert_eq!(s.delayed().0, 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::kv::KvDataStore;
    use proptest::prelude::*;

    fn is_injected(s: &mut FailingStore<KvDataStore>, op: Op, i: usize) -> bool {
        let key = format!("k{i}");
        let r = match op {
            Op::Write => s.write("ns", &key, b"v").err(),
            Op::Read => s.read("ns", &key).err(),
            Op::MoveNs => s.move_ns(&key, "ns", "ns2").err(),
            Op::Delete => s.delete("ns", &key).err(),
            Op::Flush => s.flush().err(),
        };
        matches!(r, Some(DataError::Injected(_)))
    }

    proptest! {
        /// Over arbitrary op sequences: per-op counts equal occurrence
        /// counts, and injected-failure totals are exactly
        /// `count(target) / period`, independent of interleaving.
        #[test]
        fn counts_and_injections_are_exact(
            ops in proptest::collection::vec(0usize..5, 0..120),
            target in 0usize..5,
            period in 0u64..5,
        ) {
            let all = [Op::Write, Op::Read, Op::MoveNs, Op::Delete, Op::Flush];
            let target = all[target];
            let mut s = FailingStore::new(KvDataStore::new(2), target, period);
            let mut expected = [0u64; OP_COUNT];
            let mut injected = 0u64;
            for (i, &oi) in ops.iter().enumerate() {
                let op = all[oi];
                expected[op as usize] += 1;
                let was_injected = is_injected(&mut s, op, i);
                let should = op == target
                    && period > 0
                    && expected[op as usize].is_multiple_of(period);
                prop_assert_eq!(was_injected, should, "call {} of {:?}", i, op);
                if was_injected {
                    injected += 1;
                }
            }
            prop_assert_eq!(s.op_counts(), expected);
            prop_assert_eq!(s.injected(), injected);
            let quota = expected[target as usize].checked_div(period).unwrap_or(0);
            prop_assert_eq!(s.injected(), quota);
        }
    }
}
