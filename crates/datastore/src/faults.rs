//! Deterministic fault injection for resilience testing.
//!
//! The paper stresses that MuMMI "can be restored completely after any such
//! crash without much loss of data". [`FailingStore`] wraps any backend and
//! fails operations on a deterministic schedule so tests can exercise the
//! retry/armoring and producer/consumer wait paths.

use crate::store::{BackendKind, DataStore};
use crate::{DataError, Result};

/// Which operations the injector can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `write` calls.
    Write,
    /// `read` calls.
    Read,
    /// `move_ns` calls.
    MoveNs,
    /// `delete` calls.
    Delete,
    /// `flush` calls.
    Flush,
}

/// A wrapper that fails every `period`-th call of the targeted operation.
///
/// With `period == 3`, calls 3, 6, 9, … fail. A `period` of 0 disables
/// injection. Counting is per-operation-kind and deterministic.
#[derive(Debug)]
pub struct FailingStore<S> {
    inner: S,
    target: Op,
    period: u64,
    counts: [u64; 5],
    injected: u64,
}

impl<S: DataStore> FailingStore<S> {
    /// Wraps `inner`, failing every `period`-th `target` operation.
    pub fn new(inner: S, target: Op, period: u64) -> FailingStore<S> {
        FailingStore {
            inner,
            target,
            period,
            counts: [0; 5],
            injected: 0,
        }
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Consumes the wrapper, returning the inner store.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Direct access to the wrapped store.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    fn should_fail(&mut self, op: Op) -> bool {
        if op != self.target || self.period == 0 {
            return false;
        }
        let slot = op as usize;
        self.counts[slot] += 1;
        if self.counts[slot].is_multiple_of(self.period) {
            self.injected += 1;
            true
        } else {
            false
        }
    }

    fn fault(op: Op) -> DataError {
        DataError::Injected(format!("scheduled fault on {op:?}"))
    }
}

impl<S: DataStore> DataStore for FailingStore<S> {
    fn kind(&self) -> BackendKind {
        self.inner.kind()
    }

    fn write(&mut self, ns: &str, key: &str, data: &[u8]) -> Result<()> {
        if self.should_fail(Op::Write) {
            return Err(Self::fault(Op::Write));
        }
        self.inner.write(ns, key, data)
    }

    fn read(&mut self, ns: &str, key: &str) -> Result<Vec<u8>> {
        if self.should_fail(Op::Read) {
            return Err(Self::fault(Op::Read));
        }
        self.inner.read(ns, key)
    }

    fn exists(&mut self, ns: &str, key: &str) -> bool {
        self.inner.exists(ns, key)
    }

    fn list(&mut self, ns: &str) -> Result<Vec<String>> {
        self.inner.list(ns)
    }

    fn move_ns(&mut self, key: &str, from: &str, to: &str) -> Result<()> {
        if self.should_fail(Op::MoveNs) {
            return Err(Self::fault(Op::MoveNs));
        }
        self.inner.move_ns(key, from, to)
    }

    fn delete(&mut self, ns: &str, key: &str) -> Result<bool> {
        if self.should_fail(Op::Delete) {
            return Err(Self::fault(Op::Delete));
        }
        self.inner.delete(ns, key)
    }

    fn flush(&mut self) -> Result<()> {
        if self.should_fail(Op::Flush) {
            return Err(Self::fault(Op::Flush));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvDataStore;

    #[test]
    fn fails_on_schedule() {
        let mut s = FailingStore::new(KvDataStore::new(2), Op::Write, 3);
        let mut results = Vec::new();
        for i in 0..9 {
            results.push(s.write("ns", &format!("k{i}"), b"v").is_ok());
        }
        assert_eq!(
            results,
            vec![true, true, false, true, true, false, true, true, false]
        );
        assert_eq!(s.injected(), 3);
    }

    #[test]
    fn zero_period_never_fails() {
        let mut s = FailingStore::new(KvDataStore::new(2), Op::Write, 0);
        for i in 0..10 {
            assert!(s.write("ns", &format!("k{i}"), b"v").is_ok());
        }
        assert_eq!(s.injected(), 0);
    }

    #[test]
    fn only_targeted_op_fails() {
        let mut s = FailingStore::new(KvDataStore::new(2), Op::Read, 1);
        assert!(s.write("ns", "k", b"v").is_ok());
        assert!(matches!(s.read("ns", "k"), Err(DataError::Injected(_))));
        // Untargeted ops pass through.
        assert!(s.delete("ns", "k").is_ok());
    }

    #[test]
    fn retry_after_fault_succeeds() {
        // Period 2: every second read fails; a retry loop makes progress.
        let mut s = FailingStore::new(KvDataStore::new(2), Op::Read, 2);
        s.write("ns", "k", b"v").unwrap();
        // Advance the schedule so the loop's first attempt is the failing one.
        assert!(s.read("ns", "k").is_ok());
        let mut attempts = 0;
        let val = loop {
            attempts += 1;
            match s.read("ns", "k") {
                Ok(v) => break v,
                Err(DataError::Injected(_)) if attempts < 5 => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert_eq!(val, b"v");
        assert!(attempts >= 2);
    }
}
