//! Byte-stream codecs for numeric payloads.
//!
//! The paper's data interfaces make it "possible to have custom
//! implementations of standard data formats, e.g., save a Numpy archive into
//! a byte stream that can be redirected effortlessly to a file, an archive,
//! or a database" (§4.2). [`Array`] is our n-dimensional f64 array with a
//! compact binary encoding; [`Records`] is the npz-like named bundle used
//! for patches, RDFs, and analysis outputs.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{DataError, Result};

const ARRAY_MAGIC: &[u8; 4] = b"MMA1";
const RECORDS_MAGIC: &[u8; 4] = b"MMR1";

/// An n-dimensional array of `f64` in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct Array {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Array {
    /// Creates an array, checking that `data.len()` matches the shape.
    ///
    /// # Panics
    /// Panics when the element count disagrees with the shape product.
    pub fn new(shape: Vec<usize>, data: Vec<f64>) -> Array {
        let n: usize = shape.iter().product();
        assert_eq!(n, data.len(), "shape/product mismatch");
        Array { shape, data }
    }

    /// A 1-D array.
    pub fn from_vec(data: Vec<f64>) -> Array {
        Array {
            shape: vec![data.len()],
            data,
        }
    }

    /// A zero-filled array.
    pub fn zeros(shape: Vec<usize>) -> Array {
        let n: usize = shape.iter().product();
        Array {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Array shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Flat element view.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable element view.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-element array.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// 2-D element access (row-major).
    ///
    /// # Panics
    /// Panics if the array is not 2-D or indices are out of bounds.
    pub fn at2(&self, r: usize, c: usize) -> f64 {
        assert_eq!(self.shape.len(), 2, "at2 requires a 2-D array");
        self.data[r * self.shape[1] + c]
    }

    /// Encodes to the compact binary format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.shape.len() * 8 + self.data.len() * 8);
        buf.put_slice(ARRAY_MAGIC);
        buf.put_u32_le(self.shape.len() as u32);
        for &d in &self.shape {
            buf.put_u64_le(d as u64);
        }
        for &v in &self.data {
            buf.put_f64_le(v);
        }
        buf.freeze()
    }

    /// Decodes from the compact binary format.
    pub fn decode(mut bytes: &[u8]) -> Result<Array> {
        if bytes.len() < 8 || &bytes[..4] != ARRAY_MAGIC {
            return Err(DataError::Codec("bad array magic".into()));
        }
        bytes.advance(4);
        let ndim = bytes.get_u32_le() as usize;
        if bytes.remaining() < ndim * 8 {
            return Err(DataError::Codec("truncated array shape".into()));
        }
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(bytes.get_u64_le() as usize);
        }
        let n: usize = shape.iter().product();
        if bytes.remaining() != n * 8 {
            return Err(DataError::Codec(format!(
                "array payload is {} bytes, expected {}",
                bytes.remaining(),
                n * 8
            )));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(bytes.get_f64_le());
        }
        Ok(Array { shape, data })
    }
}

/// A named bundle of arrays — the byte-stream analogue of a `.npz`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Records {
    entries: Vec<(String, Array)>,
}

impl Records {
    /// Creates an empty bundle.
    pub fn new() -> Records {
        Records::default()
    }

    /// Adds (or replaces) a named array.
    pub fn insert(&mut self, name: &str, array: Array) {
        if let Some(slot) = self.entries.iter_mut().find(|(n, _)| n == name) {
            slot.1 = array;
        } else {
            self.entries.push((name.to_string(), array));
        }
    }

    /// Looks up a named array.
    pub fn get(&self, name: &str) -> Option<&Array> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, a)| a)
    }

    /// Entry names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Encodes the bundle to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(RECORDS_MAGIC);
        buf.put_u32_le(self.entries.len() as u32);
        for (name, array) in &self.entries {
            let enc = array.encode();
            buf.put_u16_le(name.len() as u16);
            buf.put_slice(name.as_bytes());
            buf.put_u64_le(enc.len() as u64);
            buf.put_slice(&enc);
        }
        buf.freeze()
    }

    /// Decodes a bundle from bytes.
    pub fn decode(mut bytes: &[u8]) -> Result<Records> {
        if bytes.len() < 8 || &bytes[..4] != RECORDS_MAGIC {
            return Err(DataError::Codec("bad records magic".into()));
        }
        bytes.advance(4);
        let count = bytes.get_u32_le() as usize;
        let mut out = Records::new();
        for _ in 0..count {
            if bytes.remaining() < 2 {
                return Err(DataError::Codec("truncated record name length".into()));
            }
            let name_len = bytes.get_u16_le() as usize;
            if bytes.remaining() < name_len {
                return Err(DataError::Codec("truncated record name".into()));
            }
            let name = std::str::from_utf8(&bytes[..name_len])
                .map_err(|_| DataError::Codec("non-utf8 record name".into()))?
                .to_string();
            bytes.advance(name_len);
            if bytes.remaining() < 8 {
                return Err(DataError::Codec("truncated record size".into()));
            }
            let sz = bytes.get_u64_le() as usize;
            if bytes.remaining() < sz {
                return Err(DataError::Codec("truncated record payload".into()));
            }
            let array = Array::decode(&bytes[..sz])?;
            bytes.advance(sz);
            out.insert(&name, array);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_roundtrip() {
        let a = Array::new(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Array::decode(&a.encode()).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.at2(1, 2), 6.0);
    }

    #[test]
    fn empty_and_1d_arrays() {
        let empty = Array::from_vec(vec![]);
        assert_eq!(Array::decode(&empty.encode()).unwrap(), empty);
        let one = Array::from_vec(vec![42.0]);
        assert_eq!(Array::decode(&one.encode()).unwrap(), one);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Array::decode(b"nope").is_err());
        assert!(Array::decode(b"MMA1\x02\x00\x00\x00").is_err());
        // Declared shape larger than payload.
        let mut enc = Array::from_vec(vec![1.0, 2.0]).encode().to_vec();
        enc.truncate(enc.len() - 8);
        assert!(Array::decode(&enc).is_err());
    }

    #[test]
    fn records_roundtrip_and_replace() {
        let mut r = Records::new();
        r.insert("rdf", Array::from_vec(vec![0.1, 0.2]));
        r.insert("counts", Array::new(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]));
        r.insert("rdf", Array::from_vec(vec![9.0])); // replace
        assert_eq!(r.len(), 2);
        let back = Records::decode(&r.encode()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.get("rdf").unwrap().data(), &[9.0]);
        assert_eq!(back.names(), vec!["rdf", "counts"]);
    }

    #[test]
    fn records_decode_rejects_truncation() {
        let mut r = Records::new();
        r.insert("x", Array::from_vec(vec![1.0, 2.0, 3.0]));
        let enc = r.encode();
        for cut in [3, 6, 10, enc.len() - 1] {
            assert!(Records::decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    #[should_panic(expected = "shape/product mismatch")]
    fn bad_shape_panics() {
        let _ = Array::new(vec![2, 2], vec![1.0]);
    }

    #[test]
    fn zeros_has_right_shape() {
        let z = Array::zeros(vec![3, 4]);
        assert_eq!(z.len(), 12);
        assert!(z.data().iter().all(|&v| v == 0.0));
    }
}
