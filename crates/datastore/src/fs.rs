//! Filesystem backend with I/O armoring.
//!
//! "The simplest data interface accesses the filesystem directly … Where
//! needed, I/O armoring and redundancy is used to guard against filesystem
//! failures, e.g., backups of checkpoint files and retrials if
//! reading/writing fails" (§4.2).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use trace::Tracer;

use crate::store::{BackendKind, DataStore};
use crate::{DataError, Result};

/// Direct-filesystem store: `root/<ns>/<key>` files.
///
/// Writes are armored: data goes to a `.tmp` file that is renamed into
/// place (atomic on POSIX), with up to `retries` attempts per operation.
/// With [`FsStore::with_backups`], each overwrite first preserves the old
/// value as `<key>.bak` — the paper's checkpoint-backup redundancy.
#[derive(Debug)]
pub struct FsStore {
    root: PathBuf,
    retries: u32,
    backups: bool,
    tracer: Tracer,
}

impl FsStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<FsStore> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(FsStore {
            root,
            retries: 3,
            backups: false,
            tracer: Tracer::disabled(),
        })
    }

    /// Sets the retry budget per I/O operation (minimum 1 attempt).
    pub fn with_retries(mut self, retries: u32) -> FsStore {
        self.retries = retries.max(1);
        self
    }

    /// Enables `.bak` backups on overwrite (checkpoint armoring).
    pub fn with_backups(mut self, enabled: bool) -> FsStore {
        self.backups = enabled;
        self
    }

    /// Installs a tracer; reads and writes record per-op events (with the
    /// retry count the armoring consumed) plus `datastore.fs.*` counters.
    /// The event timestamps come from the tracer's virtual clock — keep it
    /// current via [`Tracer::set_now`] (the WM tick does this).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn ns_dir(&self, ns: &str) -> PathBuf {
        self.root.join(ns)
    }

    fn item_path(&self, ns: &str, key: &str) -> PathBuf {
        self.ns_dir(ns).join(key)
    }

    /// Reads the backup copy of `ns/key` if present — the recovery path
    /// when a checkpoint read fails.
    pub fn read_backup(&self, ns: &str, key: &str) -> Result<Vec<u8>> {
        let mut p = self.item_path(ns, key).into_os_string();
        p.push(".bak");
        fs::read(PathBuf::from(p)).map_err(DataError::Io)
    }

    fn retrying<T>(&self, op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        self.retrying_counted(op).map(|(v, _)| v)
    }

    /// Like [`FsStore::retrying`], but also reports how many attempts the
    /// operation consumed (1 = first try succeeded).
    fn retrying_counted<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<(T, u32)> {
        let budget = self.retries.max(1);
        let mut attempt = 1;
        loop {
            match op() {
                Ok(v) => return Ok((v, attempt)),
                Err(e) if attempt >= budget => return Err(e),
                Err(_) => attempt += 1,
            }
        }
    }

    /// Records one store operation (retries = attempts beyond the first).
    fn trace_op(&self, op: &'static str, ns: &str, key: &str, bytes: usize, attempts: u32) {
        if !self.tracer.is_enabled() {
            return;
        }
        let retries = u64::from(attempts.saturating_sub(1));
        self.tracer.instant(
            "datastore",
            &format!("op.{op}"),
            &[
                ("backend", "fs".into()),
                ("ns", ns.into()),
                ("key", key.into()),
                ("bytes", bytes.into()),
                ("retries", retries.into()),
            ],
        );
        self.tracer.counter_add(&format!("datastore.fs.{op}s"), 1);
        if retries > 0 {
            self.tracer.counter_add("datastore.fs.retries", retries);
        }
    }
}

impl DataStore for FsStore {
    fn kind(&self) -> BackendKind {
        BackendKind::Filesystem
    }

    fn write(&mut self, ns: &str, key: &str, data: &[u8]) -> Result<()> {
        let dir = self.ns_dir(ns);
        let mut attempts = 0;
        attempts += self.retrying_counted(|| fs::create_dir_all(&dir))?.1;
        let path = self.item_path(ns, key);
        let mut steps = 3;
        if self.backups && path.exists() {
            let mut bak = path.clone().into_os_string();
            bak.push(".bak");
            attempts += self
                .retrying_counted(|| fs::copy(&path, PathBuf::from(&bak)).map(|_| ()))?
                .1;
            steps += 1;
        }
        let tmp = dir.join(format!(".{key}.tmp"));
        attempts += self.retrying_counted(|| fs::write(&tmp, data))?.1;
        attempts += self.retrying_counted(|| fs::rename(&tmp, &path))?.1;
        // Each write is 3–4 armored steps; report retries beyond one
        // attempt per step.
        self.trace_op("write", ns, key, data.len(), attempts - steps + 1);
        Ok(())
    }

    fn read(&mut self, ns: &str, key: &str) -> Result<Vec<u8>> {
        let path = self.item_path(ns, key);
        match self.retrying_counted(|| fs::read(&path)) {
            Ok((data, attempts)) => {
                self.trace_op("read", ns, key, data.len(), attempts);
                Ok(data)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Err(DataError::NotFound {
                ns: ns.to_string(),
                key: key.to_string(),
            }),
            Err(e) => Err(DataError::Io(e)),
        }
    }

    fn exists(&mut self, ns: &str, key: &str) -> bool {
        self.item_path(ns, key).is_file()
    }

    fn list(&mut self, ns: &str) -> Result<Vec<String>> {
        let dir = self.ns_dir(ns);
        if !dir.is_dir() {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            if let Some(name) = entry.file_name().to_str() {
                // Skip armoring artifacts.
                if name.starts_with('.') || name.ends_with(".bak") {
                    continue;
                }
                out.push(name.to_string());
            }
        }
        // `read_dir` order is filesystem-dependent; the trait promises
        // lexicographic order.
        out.sort_unstable();
        Ok(out)
    }

    fn move_ns(&mut self, key: &str, from: &str, to: &str) -> Result<()> {
        let src = self.item_path(from, key);
        if !src.is_file() {
            return Err(DataError::NotFound {
                ns: from.to_string(),
                key: key.to_string(),
            });
        }
        let dst_dir = self.ns_dir(to);
        self.retrying(|| fs::create_dir_all(&dst_dir))?;
        let dst = self.item_path(to, key);
        self.retrying(|| fs::rename(&src, &dst))?;
        Ok(())
    }

    fn delete(&mut self, ns: &str, key: &str) -> Result<bool> {
        let path = self.item_path(ns, key);
        match fs::remove_file(path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(DataError::Io(e)),
        }
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str) -> FsStore {
        let dir = std::env::temp_dir().join(format!("fsstore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        FsStore::open(dir).unwrap()
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = store("rt");
        s.write("patches", "p-0001", b"bytes").unwrap();
        assert_eq!(s.read("patches", "p-0001").unwrap(), b"bytes");
        assert!(s.exists("patches", "p-0001"));
        assert!(!s.exists("patches", "p-0002"));
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn missing_read_is_not_found() {
        let mut s = store("nf");
        assert!(matches!(
            s.read("ns", "nope"),
            Err(DataError::NotFound { .. })
        ));
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn list_skips_artifacts() {
        let mut s = store("list").with_backups(true);
        s.write("ns", "a", b"1").unwrap();
        s.write("ns", "a", b"2").unwrap(); // creates a.bak
        s.write("ns", "b", b"3").unwrap();
        let mut keys = s.list("ns").unwrap();
        keys.sort();
        assert_eq!(keys, vec!["a", "b"]);
        assert_eq!(s.read_backup("ns", "a").unwrap(), b"1");
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn list_of_missing_namespace_is_empty() {
        let mut s = store("empty");
        assert!(s.list("void").unwrap().is_empty());
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn move_ns_relocates_item() {
        let mut s = store("mv");
        s.write("rdf-new", "f1", b"rdf").unwrap();
        s.move_ns("f1", "rdf-new", "rdf-done").unwrap();
        assert!(!s.exists("rdf-new", "f1"));
        assert_eq!(s.read("rdf-done", "f1").unwrap(), b"rdf");
        assert!(matches!(
            s.move_ns("f1", "rdf-new", "rdf-done"),
            Err(DataError::NotFound { .. })
        ));
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn delete_reports_existence() {
        let mut s = store("del");
        s.write("ns", "k", b"v").unwrap();
        assert!(s.delete("ns", "k").unwrap());
        assert!(!s.delete("ns", "k").unwrap());
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn overwrite_replaces_content() {
        let mut s = store("ow");
        s.write("ns", "k", b"old").unwrap();
        s.write("ns", "k", b"new").unwrap();
        assert_eq!(s.read("ns", "k").unwrap(), b"new");
        fs::remove_dir_all(s.root()).unwrap();
    }
}
