//! Indexed-tar backend: one archive per namespace.
//!
//! This is the paper's inode-reduction strategy: "we had compiled over 1
//! billion files … across 114,552 tar archives — a 9000× reduction in the
//! number of files (and inodes) while retaining efficient random access."

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use taridx::IndexedTar;

use crate::store::{BackendKind, DataStore};
use crate::{DataError, Result};

/// A store backed by one [`IndexedTar`] archive per namespace, living under
/// a common root directory as `<root>/<ns>.tar` (+ `.idx` sidecars).
#[derive(Debug)]
pub struct TarStore {
    root: PathBuf,
    // Ordered by namespace so bulk operations (repack_all, flush) touch
    // archives in a stable order regardless of open history.
    archives: BTreeMap<String, IndexedTar>,
}

impl TarStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<TarStore> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(TarStore {
            root,
            archives: BTreeMap::new(),
        })
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of archive files currently open.
    pub fn open_archives(&self) -> usize {
        self.archives.len()
    }

    /// Repacks every open archive, dropping superseded and moved-out
    /// payloads. Returns total bytes reclaimed. Run this between campaign
    /// phases to keep archive growth bounded despite the append-only
    /// `move_ns` semantics.
    pub fn repack_all(&mut self) -> Result<u64> {
        let mut reclaimed = 0;
        for tar in self.archives.values_mut() {
            reclaimed += tar.repack()?;
        }
        Ok(reclaimed)
    }

    fn archive(&mut self, ns: &str) -> Result<&mut IndexedTar> {
        match self.archives.entry(ns.to_string()) {
            Entry::Occupied(slot) => Ok(slot.into_mut()),
            Entry::Vacant(slot) => {
                let path = self.root.join(format!("{ns}.tar"));
                let tar = if path.exists() {
                    IndexedTar::open(&path)?
                } else {
                    IndexedTar::create(&path)?
                };
                Ok(slot.insert(tar))
            }
        }
    }
}

impl DataStore for TarStore {
    fn kind(&self) -> BackendKind {
        BackendKind::Taridx
    }

    fn write(&mut self, ns: &str, key: &str, data: &[u8]) -> Result<()> {
        self.archive(ns)?.append(key, data)?;
        Ok(())
    }

    fn read(&mut self, ns: &str, key: &str) -> Result<Vec<u8>> {
        self.archive(ns)?.read(key).map_err(|e| match e {
            taridx::TarError::KeyNotFound(k) => DataError::NotFound {
                ns: ns.to_string(),
                key: k,
            },
            other => DataError::Tar(other),
        })
    }

    fn exists(&mut self, ns: &str, key: &str) -> bool {
        self.archive(ns).map(|a| a.contains(key)).unwrap_or(false)
    }

    fn list(&mut self, ns: &str) -> Result<Vec<String>> {
        Ok(self.archive(ns)?.keys())
    }

    /// Append-to-destination then drop-from-source-index. The payload stays
    /// in the source tar (append-only format) but is no longer referenced —
    /// exactly the paper's "moving files to tar archives" semantics.
    fn move_ns(&mut self, key: &str, from: &str, to: &str) -> Result<()> {
        let data = self.read(from, key)?;
        self.write(to, key, &data)?;
        self.archive(from)?.remove_key(key);
        Ok(())
    }

    fn delete(&mut self, ns: &str, key: &str) -> Result<bool> {
        Ok(self.archive(ns)?.remove_key(key))
    }

    fn flush(&mut self) -> Result<()> {
        for tar in self.archives.values_mut() {
            tar.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str) -> TarStore {
        let dir = std::env::temp_dir().join(format!("tarstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TarStore::open(dir).unwrap()
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = store("rt");
        s.write("frames", "f1", b"frame-bytes").unwrap();
        assert_eq!(s.read("frames", "f1").unwrap(), b"frame-bytes");
        assert!(s.exists("frames", "f1"));
        std::fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn namespaces_map_to_archives() {
        let mut s = store("ns");
        s.write("a", "k", b"1").unwrap();
        s.write("b", "k", b"2").unwrap();
        s.flush().unwrap();
        assert_eq!(s.open_archives(), 2);
        assert!(s.root().join("a.tar").is_file());
        assert!(s.root().join("b.tar").is_file());
        assert_eq!(s.read("a", "k").unwrap(), b"1");
        assert_eq!(s.read("b", "k").unwrap(), b"2");
        std::fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn move_ns_appends_and_unindexes() {
        let mut s = store("mv");
        s.write("new", "f1", b"rdf").unwrap();
        s.move_ns("f1", "new", "done").unwrap();
        assert!(!s.exists("new", "f1"));
        assert_eq!(s.read("done", "f1").unwrap(), b"rdf");
        assert_eq!(s.count("new").unwrap(), 0);
        std::fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("tarstore-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut s = TarStore::open(&dir).unwrap();
            s.write("ns", "k", b"v").unwrap();
            s.flush().unwrap();
        }
        let mut s = TarStore::open(&dir).unwrap();
        assert_eq!(s.read("ns", "k").unwrap(), b"v");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn repack_reclaims_moved_namespace_space() {
        let mut s = store("repack");
        for i in 0..20 {
            s.write("new", &format!("f{i}"), &vec![1u8; 2000]).unwrap();
        }
        for i in 0..20 {
            s.move_ns(&format!("f{i}"), "new", "done").unwrap();
        }
        s.flush().unwrap();
        // The "new" archive is all dead weight now.
        let reclaimed = s.repack_all().unwrap();
        assert!(reclaimed > 20 * 2000, "reclaimed {reclaimed}");
        assert_eq!(s.count("new").unwrap(), 0);
        assert_eq!(s.count("done").unwrap(), 20);
        assert_eq!(s.read("done", "f7").unwrap(), vec![1u8; 2000]);
        std::fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn missing_key_is_not_found() {
        let mut s = store("nf");
        assert!(matches!(
            s.read("ns", "ghost"),
            Err(DataError::NotFound { .. })
        ));
        std::fs::remove_dir_all(s.root()).unwrap();
    }
}
