//! The DDFT simulation: lipid density fields plus protein particles.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::grid::{periodic_delta, Grid2};
use crate::snapshot::Snapshot;

/// Protein particle kind — the campaign tracks RAS and RAS-RAF complexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProteinKind {
    /// A lone RAS protein.
    Ras,
    /// A RAS-RAF complex.
    RasRaf,
}

impl ProteinKind {
    /// Stable integer code used in snapshots.
    pub fn code(self) -> usize {
        match self {
            ProteinKind::Ras => 0,
            ProteinKind::RasRaf => 1,
        }
    }

    /// Decodes a snapshot code.
    pub fn from_code(c: usize) -> ProteinKind {
        if c == 0 {
            ProteinKind::Ras
        } else {
            ProteinKind::RasRaf
        }
    }
}

/// A protein particle: position, kind, and configurational state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Protein {
    /// Position (nm), periodic in the domain.
    pub x: f64,
    /// Position (nm), periodic in the domain.
    pub y: f64,
    /// RAS or RAS-RAF.
    pub kind: ProteinKind,
    /// Configurational state index (0-based; the paper distinguishes
    /// multiple orientation states that route patches to the five queues).
    pub state: usize,
}

/// Protein–lipid coupling parameters — the quantity the CG→continuum
/// feedback refines.
///
/// `strength[kind][species]` scales a Gaussian potential well each protein
/// imprints on that species' free energy: negative values attract the
/// species toward the protein (lipid-fingerprint formation), positive repel.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingParams {
    /// Coupling strengths per protein kind (rows) and species (cols).
    pub strength: Vec<Vec<f64>>,
    /// Gaussian range of the protein footprint (nm).
    pub range: f64,
}

impl CouplingParams {
    /// Neutral (no coupling) parameters for `kinds` × `species`.
    pub fn neutral(kinds: usize, species: usize) -> CouplingParams {
        CouplingParams {
            strength: vec![vec![0.0; species]; kinds],
            range: 2.5,
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct ContinuumConfig {
    /// Grid cells per side.
    pub nx: usize,
    /// Grid cells per side.
    pub ny: usize,
    /// Cell size (nm). The campaign grid is 2400×2400 at ~0.42 nm.
    pub h: f64,
    /// Lipid species in the inner leaflet (campaign: 8).
    pub inner_species: usize,
    /// Lipid species in the outer leaflet (campaign: 6).
    pub outer_species: usize,
    /// Diffusion constant per species (nm²/µs).
    pub diffusion: f64,
    /// Time step (µs).
    pub dt: f64,
    /// Number of protein particles.
    pub n_proteins: usize,
    /// Configurational states per protein.
    pub n_states: usize,
    /// Protein mobility (nm²/µs per unit force).
    pub protein_mobility: f64,
    /// Thermal noise amplitude for protein Langevin dynamics.
    pub protein_noise: f64,
    /// Per-step probability of a configurational state transition.
    pub state_flip_prob: f64,
    /// Relative amplitude of initial density fluctuations (thermal noise
    /// seed; required for spontaneous domain formation).
    pub density_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ContinuumConfig {
    /// Laptop-scale default: 96 nm × 96 nm, 14 species, 8 proteins.
    pub fn laptop() -> ContinuumConfig {
        ContinuumConfig {
            nx: 192,
            ny: 192,
            h: 0.5,
            inner_species: 8,
            outer_species: 6,
            diffusion: 0.1,
            dt: 0.25,
            n_proteins: 8,
            n_states: 5,
            protein_mobility: 0.5,
            protein_noise: 0.05,
            state_flip_prob: 0.002,
            density_noise: 0.0,
            seed: 1,
        }
    }

    /// The campaign shape: 1 µm × 1 µm on a 2400×2400 grid. (Heavy; used
    /// by the benchmarks that measure per-step cost, not by tests.)
    pub fn campaign() -> ContinuumConfig {
        ContinuumConfig {
            nx: 2400,
            ny: 2400,
            h: 1000.0 / 2400.0,
            n_proteins: 300,
            ..ContinuumConfig::laptop()
        }
    }

    /// Total species count across leaflets.
    pub fn species(&self) -> usize {
        self.inner_species + self.outer_species
    }
}

/// The running DDFT simulation.
#[derive(Debug, Clone)]
pub struct ContinuumSim {
    cfg: ContinuumConfig,
    /// One density field per species (inner leaflet first).
    fields: Vec<Grid2>,
    proteins: Vec<Protein>,
    coupling: CouplingParams,
    /// Per-species protein potential, rebuilt each step.
    potential: Vec<Grid2>,
    /// Optional lipid–lipid interaction matrix χ[s][s'] (Flory-Huggins-like
    /// cross terms): positive entries make species s avoid regions rich in
    /// s' — the driver of membrane **domain formation**, one of the
    /// phenomena the study probes ("membrane dynamics (e.g., undulations
    /// and domain formation)", §2).
    lipid_chi: Option<Vec<Vec<f64>>>,
    time_us: f64,
    step: u64,
    rng: StdRng,
}

impl ContinuumSim {
    /// Initializes fields at uniform densities (with species-dependent
    /// levels) and proteins at random positions.
    pub fn new(cfg: ContinuumConfig) -> ContinuumSim {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let species = cfg.species();
        let fields = (0..species)
            .map(|s| {
                // Species have distinct background densities, mirroring the
                // distinct lipid compositions per leaflet.
                let level = 0.5 + 0.05 * (s % 7) as f64;
                let mut g = Grid2::constant(cfg.nx, cfg.ny, cfg.h, level);
                if cfg.density_noise > 0.0 {
                    let amp = level * cfg.density_noise;
                    for v in g.data_mut() {
                        *v += rng.gen_range(-amp..amp);
                    }
                }
                g
            })
            .collect();
        let (lx, ly) = (cfg.nx as f64 * cfg.h, cfg.ny as f64 * cfg.h);
        let proteins = (0..cfg.n_proteins)
            .map(|i| Protein {
                x: rng.gen_range(0.0..lx),
                y: rng.gen_range(0.0..ly),
                kind: if i % 3 == 0 {
                    ProteinKind::RasRaf
                } else {
                    ProteinKind::Ras
                },
                state: rng.gen_range(0..cfg.n_states.max(1)),
            })
            .collect();
        let potential = (0..species)
            .map(|_| Grid2::zeros(cfg.nx, cfg.ny, cfg.h))
            .collect();
        ContinuumSim {
            coupling: CouplingParams::neutral(2, species),
            fields,
            proteins,
            potential,
            lipid_chi: None,
            time_us: 0.0,
            step: 0,
            rng,
            cfg,
        }
    }

    /// Configuration.
    pub fn config(&self) -> &ContinuumConfig {
        &self.cfg
    }

    /// Simulated time (µs).
    pub fn time_us(&self) -> f64 {
        self.time_us
    }

    /// Steps taken.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Density field of one species.
    pub fn field(&self, species: usize) -> &Grid2 {
        &self.fields[species]
    }

    /// The protein particles.
    pub fn proteins(&self) -> &[Protein] {
        &self.proteins
    }

    /// Current coupling parameters.
    pub fn coupling(&self) -> &CouplingParams {
        &self.coupling
    }

    /// Sets the lipid–lipid interaction matrix χ (species × species).
    /// Positive χ[s][s'] makes species `s` drift away from regions rich in
    /// `s'`; a symmetric positive pair demixes into domains.
    ///
    /// # Panics
    /// Panics when the matrix is not species × species.
    pub fn set_lipid_interactions(&mut self, chi: Vec<Vec<f64>>) {
        let n = self.cfg.species();
        assert_eq!(chi.len(), n, "chi must be species x species");
        for row in &chi {
            assert_eq!(row.len(), n, "chi must be species x species");
        }
        self.lipid_chi = Some(chi);
    }

    /// Spatial demixing metric for a species pair: the negative Pearson
    /// correlation of their density fields. 0 for uncorrelated fields,
    /// approaching 1 as the species segregate into complementary domains.
    pub fn demixing(&self, a: usize, b: usize) -> f64 {
        let fa = self.fields[a].data();
        let fb = self.fields[b].data();
        let n = fa.len() as f64;
        let (ma, mb) = (fa.iter().sum::<f64>() / n, fb.iter().sum::<f64>() / n);
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (&x, &y) in fa.iter().zip(fb) {
            cov += (x - ma) * (y - mb);
            va += (x - ma) * (x - ma);
            vb += (y - mb) * (y - mb);
        }
        if va <= 1e-30 || vb <= 1e-30 {
            return 0.0;
        }
        -(cov / (va.sqrt() * vb.sqrt()))
    }

    /// Hot-reloads the protein–lipid couplings — the feedback entry point.
    ///
    /// # Panics
    /// Panics when the parameter shape does not match (kinds × species).
    pub fn set_coupling(&mut self, params: CouplingParams) {
        assert_eq!(params.strength.len(), 2, "two protein kinds");
        for row in &params.strength {
            assert_eq!(row.len(), self.cfg.species(), "species mismatch");
        }
        self.coupling = params;
    }

    /// Advances `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step_once();
        }
    }

    /// One DDFT + Langevin step.
    pub fn step_once(&mut self) {
        self.build_potentials();
        self.update_fields();
        self.move_proteins();
        self.flip_states();
        self.step += 1;
        self.time_us += self.cfg.dt;
    }

    /// Rebuilds the per-species potential fields: protein footprints plus
    /// lipid–lipid cross terms (V_s += Σ_s' χ[s][s'] ρ_s').
    fn build_potentials(&mut self) {
        let range = self.coupling.range;
        for (s, pot) in self.potential.iter_mut().enumerate() {
            pot.data_mut().fill(0.0);
            for p in &self.proteins {
                let w = self.coupling.strength[p.kind.code()][s];
                if w != 0.0 {
                    pot.add_gaussian(p.x, p.y, range, w);
                }
            }
            if let Some(chi) = &self.lipid_chi {
                for (sp, field) in self.fields.iter().enumerate() {
                    let k = chi[s][sp];
                    if k != 0.0 {
                        for (v, &rho) in pot.data_mut().iter_mut().zip(field.data()) {
                            *v += k * rho;
                        }
                    }
                }
            }
        }
    }

    /// DDFT update: ∂ρ/∂t = D [∇²ρ + ∇·(ρ ∇V)] with V the protein
    /// potential; explicit Euler, parallel over species and rows.
    fn update_fields(&mut self) {
        let d = self.cfg.diffusion;
        let dt = self.cfg.dt;
        let nx = self.cfg.nx;
        let ny = self.cfg.ny;
        let h = self.cfg.h;
        let inv_h2 = 1.0 / (h * h);
        let inv_2h = 1.0 / (2.0 * h);
        let potential = &self.potential;
        self.fields
            .par_iter_mut() // lint: allow(L8: one species field per task; fields are disjoint)
            .zip(potential.par_iter()) // lint: allow(L8: read-only zip over the matching potential field)
            .for_each(|(rho, v)| {
                let src = rho.data().to_vec();
                let vdat = v.data();
                rho.data_mut()
                    .par_chunks_mut(nx) // lint: allow(L8: row stencil into disjoint rows of this field's own buffer)
                    .enumerate()
                    .for_each(|(y, row)| {
                        let yu = (y + 1) % ny;
                        let yd = (y + ny - 1) % ny;
                        for x in 0..nx {
                            let xr = (x + 1) % nx;
                            let xl = (x + nx - 1) % nx;
                            let c = src[y * nx + x];
                            let lap_rho = (src[y * nx + xr]
                                + src[y * nx + xl]
                                + src[yu * nx + x]
                                + src[yd * nx + x]
                                - 4.0 * c)
                                * inv_h2;
                            let lap_v = (vdat[y * nx + xr]
                                + vdat[y * nx + xl]
                                + vdat[yu * nx + x]
                                + vdat[yd * nx + x]
                                - 4.0 * vdat[y * nx + x])
                                * inv_h2;
                            let grad_rho_x = (src[y * nx + xr] - src[y * nx + xl]) * inv_2h;
                            let grad_rho_y = (src[yu * nx + x] - src[yd * nx + x]) * inv_2h;
                            let grad_v_x = (vdat[y * nx + xr] - vdat[y * nx + xl]) * inv_2h;
                            let grad_v_y = (vdat[yu * nx + x] - vdat[yd * nx + x]) * inv_2h;
                            let div_flux =
                                grad_rho_x * grad_v_x + grad_rho_y * grad_v_y + c * lap_v;
                            let next = c + dt * d * (lap_rho + div_flux);
                            row[x] = next.max(0.0);
                        }
                    });
            });
    }

    /// Langevin dynamics for proteins: drift down the coupling-weighted
    /// density gradient (toward preferred lipids), soft pair repulsion,
    /// thermal noise.
    fn move_proteins(&mut self) {
        let (lx, ly) = self.fields[0].extent();
        let mobility = self.cfg.protein_mobility;
        let noise = self.cfg.protein_noise;
        let dt = self.cfg.dt;
        let n = self.proteins.len();
        let mut forces = vec![(0.0f64, 0.0f64); n];
        for (i, p) in self.proteins.iter().enumerate() {
            let mut fx = 0.0;
            let mut fy = 0.0;
            // Attraction toward species it couples to (strength < 0 wells
            // also *pull lipids in*; the protein reciprocally drifts toward
            // higher preferred-lipid density).
            for (s, field) in self.fields.iter().enumerate() {
                let w = self.coupling.strength[p.kind.code()][s];
                if w != 0.0 {
                    let (gx, gy) = field.gradient_at(p.x, p.y);
                    fx -= w * gx;
                    fy -= w * gy;
                }
            }
            // Soft repulsion between proteins.
            for (j, q) in self.proteins.iter().enumerate() {
                if i == j {
                    continue;
                }
                let dx = periodic_delta(p.x - q.x, lx);
                let dy = periodic_delta(p.y - q.y, ly);
                let r2 = dx * dx + dy * dy;
                let r0 = 3.0; // nm exclusion radius
                if r2 < r0 * r0 && r2 > 1e-9 {
                    let r = r2.sqrt();
                    let f = (r0 - r) / r0 / r;
                    fx += f * dx;
                    fy += f * dy;
                }
            }
            forces[i] = (fx, fy);
        }
        for (p, (fx, fy)) in self.proteins.iter_mut().zip(forces) {
            let nx: f64 = self.rng.gen_range(-1.0..1.0);
            let ny: f64 = self.rng.gen_range(-1.0..1.0);
            p.x = (p.x + mobility * fx * dt + noise * nx * dt.sqrt()).rem_euclid(lx);
            p.y = (p.y + mobility * fy * dt + noise * ny * dt.sqrt()).rem_euclid(ly);
        }
    }

    /// Markov transitions of protein configurational states.
    fn flip_states(&mut self) {
        let n_states = self.cfg.n_states.max(1);
        let prob = self.cfg.state_flip_prob;
        for p in &mut self.proteins {
            if self.rng.gen_bool(prob) {
                p.state = self.rng.gen_range(0..n_states);
            }
        }
    }

    /// Captures a snapshot of the current state.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::capture(self.time_us, &self.fields, &self.proteins)
    }

    /// Total lipid mass across species (diagnostic; conserved up to the
    /// non-negativity clamp).
    pub fn total_mass(&self) -> f64 {
        self.fields.iter().map(Grid2::integral).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ContinuumConfig {
        ContinuumConfig {
            nx: 32,
            ny: 32,
            h: 1.0,
            inner_species: 2,
            outer_species: 1,
            n_proteins: 3,
            ..ContinuumConfig::laptop()
        }
    }

    #[test]
    fn mass_is_conserved_without_coupling() {
        let mut sim = ContinuumSim::new(tiny());
        let m0 = sim.total_mass();
        sim.run(200);
        let m1 = sim.total_mass();
        assert!(
            (m1 - m0).abs() / m0 < 1e-9,
            "pure diffusion must conserve mass: {m0} -> {m1}"
        );
    }

    #[test]
    fn densities_stay_nonnegative_under_strong_coupling() {
        let mut sim = ContinuumSim::new(tiny());
        let mut params = CouplingParams::neutral(2, 3);
        params.strength[0] = vec![-2.0, 2.0, -1.0];
        params.strength[1] = vec![2.0, -2.0, 1.0];
        sim.set_coupling(params);
        sim.run(300);
        for s in 0..3 {
            assert!(sim.field(s).min() >= 0.0, "species {s} went negative");
        }
    }

    #[test]
    fn attractive_coupling_builds_lipid_fingerprint() {
        let mut cfg = tiny();
        cfg.n_proteins = 1;
        cfg.protein_mobility = 0.0; // pin the protein
        cfg.protein_noise = 0.0;
        cfg.state_flip_prob = 0.0;
        let mut sim = ContinuumSim::new(cfg);
        let mut params = CouplingParams::neutral(2, 3);
        params.strength[0][0] = -1.0; // species 0 attracted to RAS
        params.strength[1][0] = -1.0;
        sim.set_coupling(params);
        let p = sim.proteins()[0];
        let before = sim.field(0).sample(p.x, p.y);
        sim.run(400);
        let after = sim.field(0).sample(p.x, p.y);
        assert!(
            after > before * 1.05,
            "density at protein should grow: {before} -> {after}"
        );
        // Uncoupled species stays flat.
        let other = sim.field(1);
        assert!((other.sample(p.x, p.y) - other.mean()).abs() < 1e-6);
    }

    #[test]
    fn proteins_stay_in_domain() {
        let mut sim = ContinuumSim::new(tiny());
        sim.run(500);
        let (lx, ly) = sim.field(0).extent();
        for p in sim.proteins() {
            assert!(p.x >= 0.0 && p.x < lx);
            assert!(p.y >= 0.0 && p.y < ly);
        }
    }

    #[test]
    fn simulation_is_deterministic_for_a_seed() {
        let run = || {
            let mut sim = ContinuumSim::new(tiny());
            sim.run(50);
            (sim.proteins().to_vec(), sim.field(0).data().to_vec())
        };
        let (p1, f1) = run();
        let (p2, f2) = run();
        assert_eq!(p1, p2);
        assert_eq!(f1, f2);
    }

    #[test]
    fn state_flips_happen_over_time() {
        let mut cfg = tiny();
        cfg.state_flip_prob = 0.2;
        cfg.n_proteins = 10;
        let mut sim = ContinuumSim::new(cfg);
        let before: Vec<usize> = sim.proteins().iter().map(|p| p.state).collect();
        sim.run(100);
        let after: Vec<usize> = sim.proteins().iter().map(|p| p.state).collect();
        assert_ne!(before, after, "states should have churned");
        assert!(after.iter().all(|&s| s < 5));
    }

    #[test]
    fn set_coupling_validates_shape() {
        let mut sim = ContinuumSim::new(tiny());
        let bad = CouplingParams {
            strength: vec![vec![0.0; 99]; 2],
            range: 2.0,
        };
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || sim.set_coupling(bad)));
        assert!(result.is_err());
    }

    #[test]
    fn repulsive_chi_drives_domain_formation() {
        // Species 0 and 1 repel each other; a small symmetry-breaking
        // perturbation grows into complementary domains.
        let mut cfg = tiny();
        cfg.n_proteins = 0;
        cfg.dt = 0.1;
        cfg.density_noise = 0.02; // the fluctuation seed domains grow from
        let mut sim = ContinuumSim::new(cfg);
        let n = 3;
        let mut chi = vec![vec![0.0; n]; n];
        chi[0][1] = 0.8;
        chi[1][0] = 0.8;
        sim.set_lipid_interactions(chi);
        let before = sim.demixing(0, 1);
        sim.run(1500);
        let after = sim.demixing(0, 1);
        assert!(
            after > before + 0.3,
            "repulsive chi should demix: {before:.3} -> {after:.3}"
        );
        // Fields stay physical.
        assert!(sim.field(0).min() >= 0.0);
        assert!(sim.field(1).min() >= 0.0);
        // The uninvolved species stays mixed.
        assert!(sim.demixing(0, 2).abs() < 0.5);
    }

    #[test]
    fn zero_chi_diffuses_fluctuations_away() {
        // Without cross-interactions, diffusion erases the initial noise
        // instead of amplifying it into domains.
        let mut cfg = tiny();
        cfg.n_proteins = 0;
        cfg.density_noise = 0.02;
        let mut sim = ContinuumSim::new(cfg);
        sim.set_lipid_interactions(vec![vec![0.0; 3]; 3]);
        let var = |sim: &ContinuumSim, s: usize| {
            let d = sim.field(s).data();
            let m = d.iter().sum::<f64>() / d.len() as f64;
            d.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / d.len() as f64
        };
        let v0 = var(&sim, 0);
        sim.run(300);
        let v1 = var(&sim, 0);
        assert!(v1 < v0 * 0.1, "diffusion should mix: {v0:.2e} -> {v1:.2e}");
    }

    #[test]
    #[should_panic(expected = "species x species")]
    fn bad_chi_shape_panics() {
        let mut sim = ContinuumSim::new(tiny());
        sim.set_lipid_interactions(vec![vec![0.0; 2]; 2]);
    }

    #[test]
    fn time_advances_by_dt() {
        let mut sim = ContinuumSim::new(tiny());
        sim.run(10);
        assert!((sim.time_us() - 10.0 * sim.config().dt).abs() < 1e-12);
        assert_eq!(sim.step_count(), 10);
    }
}
