//! Patch extraction: cutting 30 nm × 30 nm windows around proteins.
//!
//! "30 nm × 30 nm 'patches' are cut out of continuum snapshots in regions
//! that may be of interest for CG and AA simulations" (§4.1(2)); the
//! selector evaluates them "sampled on a 37×37 grid" (§4.1(6), "almost 55×
//! larger" than the earlier 5×5). [`Patch::feature_vector`] produces the
//! ML-encoder input: the per-species density window downsampled onto a
//! small feature grid.

use datastore::codec::{Array, Records};

use crate::grid::periodic_delta;
use crate::snapshot::Snapshot;

/// Patch extraction parameters.
#[derive(Debug, Clone, Copy)]
pub struct PatchConfig {
    /// Patch side length (nm); the campaign uses 30.
    pub size_nm: f64,
    /// Sampling resolution of the stored patch (cells per side); the
    /// campaign uses 37.
    pub resolution: usize,
    /// Feature-grid side for the ML encoding (downsampled from
    /// `resolution`).
    pub feature_grid: usize,
}

impl Default for PatchConfig {
    fn default() -> Self {
        PatchConfig {
            size_nm: 30.0,
            resolution: 37,
            feature_grid: 4,
        }
    }
}

/// A patch: the window of every species' density around one protein.
#[derive(Debug, Clone, PartialEq)]
pub struct Patch {
    /// Identifier: `p-<snapshot µs>-<protein index>`.
    pub id: String,
    /// Center position (nm) in the source snapshot.
    pub center: (f64, f64),
    /// Protein kind code at the center.
    pub kind: usize,
    /// Protein configurational state at the center (routes the patch to
    /// one of the selector's queues).
    pub state: usize,
    /// Per-species density windows, each shape (resolution, resolution).
    pub windows: Vec<Array>,
}

impl Patch {
    /// Flattened ML input: each species window averaged onto the feature
    /// grid, concatenated (species × g × g values).
    pub fn feature_vector(&self, cfg: &PatchConfig) -> Vec<f64> {
        let g = cfg.feature_grid.max(1);
        let res = cfg.resolution;
        let mut out = Vec::with_capacity(self.windows.len() * g * g);
        for w in &self.windows {
            for by in 0..g {
                for bx in 0..g {
                    let x0 = bx * res / g;
                    let x1 = ((bx + 1) * res / g).max(x0 + 1);
                    let y0 = by * res / g;
                    let y1 = ((by + 1) * res / g).max(y0 + 1);
                    let mut sum = 0.0;
                    for y in y0..y1 {
                        for x in x0..x1 {
                            sum += w.at2(y, x);
                        }
                    }
                    out.push(sum / ((x1 - x0) * (y1 - y0)) as f64);
                }
            }
        }
        out
    }

    /// Serializes the patch (the "standard Numpy format" analogue: ~70 KB
    /// at campaign resolution).
    pub fn encode(&self) -> Vec<u8> {
        let mut rec = Records::new();
        rec.insert(
            "meta",
            Array::from_vec(vec![
                self.center.0,
                self.center.1,
                self.kind as f64,
                self.state as f64,
                self.windows.len() as f64,
            ]),
        );
        for (s, w) in self.windows.iter().enumerate() {
            rec.insert(&format!("w{s}"), w.clone());
        }
        rec.encode().to_vec()
    }

    /// Decodes a serialized patch; the id is not stored and must be
    /// supplied by the namespace key.
    pub fn decode(id: &str, bytes: &[u8]) -> datastore::Result<Patch> {
        let rec = Records::decode(bytes)?;
        let meta = rec
            .get("meta")
            .ok_or_else(|| datastore::DataError::Codec("missing meta".into()))?;
        let n = meta.data()[4] as usize;
        let mut windows = Vec::with_capacity(n);
        for s in 0..n {
            windows.push(
                rec.get(&format!("w{s}"))
                    .ok_or_else(|| datastore::DataError::Codec(format!("missing w{s}")))?
                    .clone(),
            );
        }
        Ok(Patch {
            id: id.to_string(),
            center: (meta.data()[0], meta.data()[1]),
            kind: meta.data()[2] as usize,
            state: meta.data()[3] as usize,
            windows,
        })
    }
}

/// Cuts one patch per protein out of a snapshot.
pub fn extract_patches(snap: &Snapshot, cfg: &PatchConfig) -> Vec<Patch> {
    let res = cfg.resolution;
    let mut out = Vec::with_capacity(snap.proteins.len());
    for (pi, &(cx, cy, kind, state)) in snap.proteins.iter().enumerate() {
        let mut windows = Vec::with_capacity(snap.fields.len());
        for field in &snap.fields {
            let ny = field.shape()[0];
            let nx = field.shape()[1];
            let (lx, ly) = (nx as f64 * snap.h, ny as f64 * snap.h);
            let mut w = vec![0.0; res * res];
            for iy in 0..res {
                for ix in 0..res {
                    // Physical offset from patch corner; periodic sample by
                    // nearest cell (adequate at patch resolution).
                    let ox = (ix as f64 + 0.5) / res as f64 * cfg.size_nm - cfg.size_nm / 2.0;
                    let oy = (iy as f64 + 0.5) / res as f64 * cfg.size_nm - cfg.size_nm / 2.0;
                    let px = (cx + ox).rem_euclid(lx);
                    let py = (cy + oy).rem_euclid(ly);
                    let gx = ((px / snap.h) as usize).min(nx - 1);
                    let gy = ((py / snap.h) as usize).min(ny - 1);
                    w[iy * res + ix] = field.at2(gy, gx);
                }
            }
            windows.push(Array::new(vec![res, res], w));
        }
        out.push(Patch {
            id: format!("p-{:012.3}-{pi:04}", snap.time_us),
            center: (cx, cy),
            kind,
            state,
            windows,
        });
    }
    out
}

/// True when two patch centers overlap within `min_sep` nm on the periodic
/// domain (used to avoid spawning near-duplicate CG systems).
pub fn centers_overlap(a: (f64, f64), b: (f64, f64), domain: (f64, f64), min_sep: f64) -> bool {
    let dx = periodic_delta(a.0 - b.0, domain.0);
    let dy = periodic_delta(a.1 - b.1, domain.1);
    dx * dx + dy * dy < min_sep * min_sep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ContinuumConfig, ContinuumSim, CouplingParams};

    fn sim() -> ContinuumSim {
        let mut sim = ContinuumSim::new(ContinuumConfig {
            nx: 64,
            ny: 64,
            h: 1.0,
            inner_species: 2,
            outer_species: 1,
            n_proteins: 5,
            ..ContinuumConfig::laptop()
        });
        sim.run(10);
        sim
    }

    #[test]
    fn one_patch_per_protein() {
        let snap = sim().snapshot();
        let cfg = PatchConfig::default();
        let patches = extract_patches(&snap, &cfg);
        assert_eq!(patches.len(), 5);
        for p in &patches {
            assert_eq!(p.windows.len(), 3);
            assert_eq!(p.windows[0].shape(), &[37, 37]);
        }
        // IDs are unique.
        let ids: std::collections::HashSet<&str> = patches.iter().map(|p| p.id.as_str()).collect();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn patch_window_reflects_local_density() {
        // Plant a strong density bump at a protein and check its patch sees
        // higher mean density than a far-away patch.
        let mut sim = sim();
        let mut params = CouplingParams::neutral(2, 3);
        params.strength[0][0] = -3.0;
        params.strength[1][0] = -3.0;
        sim.set_coupling(params);
        sim.run(300);
        let snap = sim.snapshot();
        let cfg = PatchConfig {
            size_nm: 10.0,
            resolution: 11,
            feature_grid: 2,
        };
        let patches = extract_patches(&snap, &cfg);
        for p in &patches {
            let mean: f64 = p.windows[0].data().iter().sum::<f64>() / p.windows[0].len() as f64;
            let global = snap.fields[0].data().iter().sum::<f64>() / snap.fields[0].len() as f64;
            assert!(
                mean > global,
                "patch at a protein should see enriched species 0: {mean} vs {global}"
            );
        }
    }

    #[test]
    fn feature_vector_has_expected_length() {
        let snap = sim().snapshot();
        let cfg = PatchConfig::default();
        let patches = extract_patches(&snap, &cfg);
        let fv = patches[0].feature_vector(&cfg);
        assert_eq!(fv.len(), 3 * 4 * 4);
        assert!(fv.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sim().snapshot();
        let patches = extract_patches(&snap, &PatchConfig::default());
        let bytes = patches[0].encode();
        let back = Patch::decode(&patches[0].id, &bytes).unwrap();
        assert_eq!(back, patches[0]);
    }

    #[test]
    fn patch_wraps_periodic_boundary() {
        // A protein at the domain corner must still get a full window.
        let mut snap = sim().snapshot();
        snap.proteins[0] = (0.1, 0.1, 0, 0);
        let patches = extract_patches(&snap, &PatchConfig::default());
        assert!(patches[0].windows[0].data().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn overlap_respects_periodicity() {
        let domain = (64.0, 64.0);
        assert!(centers_overlap((1.0, 1.0), (63.0, 63.0), domain, 5.0));
        assert!(!centers_overlap((1.0, 1.0), (32.0, 32.0), domain, 5.0));
    }
}
