//! The continuum (macro) scale: a DDFT lipid model with protein particles.
//!
//! The paper's macro model "is a continuum description of lipids that uses
//! DDFT for representing lipid dynamics in terms of their density fields.
//! Proteins (positions and configurational states) are represented as
//! particles that interact with each other and with the lipids. This model
//! comprises a 1 µm × 1 µm bilayer discretized as a 2400×2400 grid, with 8
//! lipid types in the inner and 6 types in the outer leaflet" (§4.1(1)).
//!
//! This crate is the GridSim2D stand-in:
//!
//! - [`Grid2`] — periodic 2-D scalar fields with finite-difference
//!   operators, rayon-parallel over rows;
//! - [`ContinuumSim`] — dynamic density functional theory time stepping
//!   for every lipid species, Langevin dynamics for protein particles, and
//!   protein–lipid coupling parameters that can be **hot-reloaded** — the
//!   CG→continuum feedback path ("the ongoing continuum simulation …
//!   reads and updates these parameters on the fly");
//! - [`Snapshot`] — the custom binary snapshot format (via
//!   [`datastore::codec`]) delivered at a fixed I/O interval;
//! - [`patch`] — cutting 30 nm × 30 nm patches around proteins out of a
//!   snapshot, the input to createsim and the patch selector.
//!
//! Default configurations are laptop-scaled (e.g. 240×240 grids); the full
//! 2400×2400 campaign shape is just a parameter choice.

mod grid;
pub mod patch;
mod sim;
mod snapshot;

pub use grid::Grid2;
pub use patch::{extract_patches, Patch, PatchConfig};
pub use sim::{ContinuumConfig, ContinuumSim, CouplingParams, Protein, ProteinKind};
pub use snapshot::Snapshot;
