//! Snapshot capture and the custom binary format.
//!
//! The campaign's GridSim2D delivered "a new snapshot … every 90 seconds
//! and, when stored in a custom binary format, consumes ∽374 MB" (§4.1(1)).
//! Snapshots here serialize through [`datastore::codec::Records`], so they
//! flow unchanged into any backend (file, archive, or database).

use datastore::codec::{Array, Records};

use crate::grid::Grid2;
use crate::sim::{Protein, ProteinKind};

/// A point-in-time capture of the continuum state.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Simulated time (µs).
    pub time_us: f64,
    /// Cell size (nm).
    pub h: f64,
    /// Density fields, one per species, shape (ny, nx).
    pub fields: Vec<Array>,
    /// Protein rows: (x, y, kind code, state).
    pub proteins: Vec<(f64, f64, usize, usize)>,
}

impl Snapshot {
    /// Captures a snapshot from live state.
    pub fn capture(time_us: f64, fields: &[Grid2], proteins: &[Protein]) -> Snapshot {
        Snapshot {
            time_us,
            h: fields.first().map_or(1.0, Grid2::h),
            fields: fields
                .iter()
                .map(|g| Array::new(vec![g.ny(), g.nx()], g.data().to_vec()))
                .collect(),
            proteins: proteins
                .iter()
                .map(|p| (p.x, p.y, p.kind.code(), p.state))
                .collect(),
        }
    }

    /// Number of lipid species captured.
    pub fn species(&self) -> usize {
        self.fields.len()
    }

    /// Reconstructs the protein list.
    pub fn protein_list(&self) -> Vec<Protein> {
        self.proteins
            .iter()
            .map(|&(x, y, kind, state)| Protein {
                x,
                y,
                kind: ProteinKind::from_code(kind),
                state,
            })
            .collect()
    }

    /// Serializes to the byte-stream format.
    pub fn encode(&self) -> Vec<u8> {
        let mut rec = Records::new();
        rec.insert(
            "meta",
            Array::from_vec(vec![
                self.time_us,
                self.h,
                self.fields.len() as f64,
                self.proteins.len() as f64,
            ]),
        );
        for (s, f) in self.fields.iter().enumerate() {
            rec.insert(&format!("rho{s}"), f.clone());
        }
        let mut pdata = Vec::with_capacity(self.proteins.len() * 4);
        for &(x, y, k, st) in &self.proteins {
            pdata.extend_from_slice(&[x, y, k as f64, st as f64]);
        }
        rec.insert("proteins", Array::new(vec![self.proteins.len(), 4], pdata));
        rec.encode().to_vec()
    }

    /// Decodes the byte-stream format.
    pub fn decode(bytes: &[u8]) -> datastore::Result<Snapshot> {
        let rec = Records::decode(bytes)?;
        let meta = rec
            .get("meta")
            .ok_or_else(|| datastore::DataError::Codec("missing meta".into()))?;
        let time_us = meta.data()[0];
        let h = meta.data()[1];
        let n_species = meta.data()[2] as usize;
        let mut fields = Vec::with_capacity(n_species);
        for s in 0..n_species {
            let f = rec
                .get(&format!("rho{s}"))
                .ok_or_else(|| datastore::DataError::Codec(format!("missing rho{s}")))?;
            fields.push(f.clone());
        }
        let parr = rec
            .get("proteins")
            .ok_or_else(|| datastore::DataError::Codec("missing proteins".into()))?;
        let n = parr.shape()[0];
        let proteins = (0..n)
            .map(|i| {
                let row = &parr.data()[i * 4..(i + 1) * 4];
                (row[0], row[1], row[2] as usize, row[3] as usize)
            })
            .collect();
        Ok(Snapshot {
            time_us,
            h,
            fields,
            proteins,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ContinuumConfig, ContinuumSim};

    fn tiny_sim() -> ContinuumSim {
        ContinuumSim::new(ContinuumConfig {
            nx: 16,
            ny: 16,
            h: 1.0,
            inner_species: 2,
            outer_species: 1,
            n_proteins: 4,
            ..ContinuumConfig::laptop()
        })
    }

    #[test]
    fn capture_reflects_state() {
        let mut sim = tiny_sim();
        sim.run(5);
        let snap = sim.snapshot();
        assert_eq!(snap.species(), 3);
        assert_eq!(snap.proteins.len(), 4);
        assert!((snap.time_us - sim.time_us()).abs() < 1e-12);
        assert_eq!(snap.fields[0].shape(), &[16, 16]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut sim = tiny_sim();
        sim.run(3);
        let snap = sim.snapshot();
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back, snap);
        let plist = back.protein_list();
        assert_eq!(plist.len(), 4);
        assert_eq!(plist[0].x, snap.proteins[0].0);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Snapshot::decode(b"junk").is_err());
        // A valid Records missing the expected entries also fails.
        let mut rec = datastore::codec::Records::new();
        rec.insert("other", datastore::codec::Array::from_vec(vec![1.0]));
        assert!(Snapshot::decode(&rec.encode()).is_err());
    }

    #[test]
    fn snapshot_size_scales_with_grid() {
        let small = tiny_sim().snapshot().encode().len();
        let mut big_cfg = ContinuumConfig::laptop();
        big_cfg.inner_species = 2;
        big_cfg.outer_species = 1;
        big_cfg.nx = 32;
        big_cfg.ny = 32;
        let big = ContinuumSim::new(big_cfg).snapshot().encode().len();
        assert!(
            big > small * 3,
            "snapshot bytes should scale ~4x: {small} vs {big}"
        );
    }
}
