//! Periodic 2-D scalar fields with finite-difference operators.

use rayon::prelude::*;

/// A periodic (torus) 2-D field of `f64`, row-major, square cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2 {
    nx: usize,
    ny: usize,
    /// Physical cell size (nm per cell).
    h: f64,
    data: Vec<f64>,
}

impl Grid2 {
    /// A zero field of `nx × ny` cells with spacing `h`.
    ///
    /// # Panics
    /// Panics on empty dimensions or non-positive spacing.
    pub fn zeros(nx: usize, ny: usize, h: f64) -> Grid2 {
        assert!(nx > 0 && ny > 0, "grid must be non-empty");
        assert!(h > 0.0, "cell size must be positive");
        Grid2 {
            nx,
            ny,
            h,
            data: vec![0.0; nx * ny],
        }
    }

    /// A constant field.
    pub fn constant(nx: usize, ny: usize, h: f64, value: f64) -> Grid2 {
        let mut g = Grid2::zeros(nx, ny, h);
        g.data.fill(value);
        g
    }

    /// Grid width in cells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in cells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Cell size.
    pub fn h(&self) -> f64 {
        self.h
    }

    /// Physical domain side lengths (nm).
    pub fn extent(&self) -> (f64, f64) {
        (self.nx as f64 * self.h, self.ny as f64 * self.h)
    }

    /// Flat data view.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable data view.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Periodic index wrap.
    #[inline]
    fn wrap(v: isize, n: usize) -> usize {
        v.rem_euclid(n as isize) as usize
    }

    /// Periodic element access.
    #[inline]
    pub fn at(&self, x: isize, y: isize) -> f64 {
        let xi = Self::wrap(x, self.nx);
        let yi = Self::wrap(y, self.ny);
        self.data[yi * self.nx + xi]
    }

    /// Periodic mutable element access.
    #[inline]
    pub fn at_mut(&mut self, x: isize, y: isize) -> &mut f64 {
        let xi = Self::wrap(x, self.nx);
        let yi = Self::wrap(y, self.ny);
        &mut self.data[yi * self.nx + xi]
    }

    /// Bilinear interpolation at physical position `(px, py)` (nm),
    /// periodic.
    pub fn sample(&self, px: f64, py: f64) -> f64 {
        let fx = px / self.h;
        let fy = py / self.h;
        let x0 = fx.floor();
        let y0 = fy.floor();
        let tx = fx - x0;
        let ty = fy - y0;
        let (x0, y0) = (x0 as isize, y0 as isize);
        let v00 = self.at(x0, y0);
        let v10 = self.at(x0 + 1, y0);
        let v01 = self.at(x0, y0 + 1);
        let v11 = self.at(x0 + 1, y0 + 1);
        v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty
    }

    /// Central-difference gradient at physical position (nm), periodic.
    pub fn gradient_at(&self, px: f64, py: f64) -> (f64, f64) {
        let d = self.h;
        let gx = (self.sample(px + d, py) - self.sample(px - d, py)) / (2.0 * d);
        let gy = (self.sample(px, py + d) - self.sample(px, py - d)) / (2.0 * d);
        (gx, gy)
    }

    /// Five-point Laplacian into `out` (parallel over rows).
    ///
    /// # Panics
    /// Panics when `out` has a different shape.
    pub fn laplacian_into(&self, out: &mut Grid2) {
        assert_eq!((self.nx, self.ny), (out.nx, out.ny), "shape mismatch");
        let inv_h2 = 1.0 / (self.h * self.h);
        let nx = self.nx;
        let ny = self.ny;
        let src = &self.data;
        out.data
            .par_chunks_mut(nx) // lint: allow(L8: row stencil into disjoint output rows; reads only the immutable source grid)
            .enumerate()
            .for_each(|(y, row)| {
                let yu = (y + 1) % ny;
                let yd = (y + ny - 1) % ny;
                for x in 0..nx {
                    let xr = (x + 1) % nx;
                    let xl = (x + nx - 1) % nx;
                    let c = src[y * nx + x];
                    row[x] =
                        (src[y * nx + xr] + src[y * nx + xl] + src[yu * nx + x] + src[yd * nx + x]
                            - 4.0 * c)
                            * inv_h2;
                }
            });
    }

    /// Total integral of the field (sum × cell area) — conserved mass.
    pub fn integral(&self) -> f64 {
        self.data.iter().sum::<f64>() * self.h * self.h
    }

    /// Mean value.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Minimum value.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Adds a Gaussian bump of amplitude `amp` and width `sigma` (nm) at a
    /// physical position, periodic.
    pub fn add_gaussian(&mut self, cx: f64, cy: f64, sigma: f64, amp: f64) {
        let (lx, ly) = self.extent();
        let reach = (3.0 * sigma / self.h).ceil() as isize;
        let cxi = (cx / self.h).round() as isize;
        let cyi = (cy / self.h).round() as isize;
        for dy in -reach..=reach {
            for dx in -reach..=reach {
                let x = cxi + dx;
                let y = cyi + dy;
                let px = x as f64 * self.h;
                let py = y as f64 * self.h;
                let ddx = periodic_delta(px - cx, lx);
                let ddy = periodic_delta(py - cy, ly);
                let r2 = ddx * ddx + ddy * ddy;
                *self.at_mut(x, y) += amp * (-r2 / (2.0 * sigma * sigma)).exp();
            }
        }
    }
}

/// Shortest signed displacement on a periodic axis of length `l`.
pub fn periodic_delta(d: f64, l: f64) -> f64 {
    let mut d = d % l;
    if d > l / 2.0 {
        d -= l;
    } else if d < -l / 2.0 {
        d += l;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_and_access() {
        let mut g = Grid2::zeros(4, 4, 1.0);
        *g.at_mut(0, 0) = 7.0;
        assert_eq!(g.at(4, 4), 7.0);
        assert_eq!(g.at(-4, -4), 7.0);
        assert_eq!(g.at(8, 0), 7.0);
    }

    #[test]
    fn laplacian_of_constant_is_zero() {
        let g = Grid2::constant(8, 8, 0.5, 3.25);
        let mut out = Grid2::zeros(8, 8, 0.5);
        g.laplacian_into(&mut out);
        assert!(out.data().iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn laplacian_of_spike_sums_to_zero() {
        // Discrete Laplacian conserves mass: sum over all cells is 0.
        let mut g = Grid2::zeros(16, 16, 1.0);
        *g.at_mut(5, 7) = 10.0;
        let mut out = Grid2::zeros(16, 16, 1.0);
        g.laplacian_into(&mut out);
        let total: f64 = out.data().iter().sum();
        assert!(total.abs() < 1e-10);
        assert!(out.at(5, 7) < 0.0);
        assert!(out.at(6, 7) > 0.0);
    }

    #[test]
    fn sample_interpolates_bilinearly() {
        let mut g = Grid2::zeros(4, 4, 1.0);
        *g.at_mut(0, 0) = 1.0;
        *g.at_mut(1, 0) = 3.0;
        assert!((g.sample(0.5, 0.0) - 2.0).abs() < 1e-12);
        assert!((g.sample(0.0, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_points_uphill() {
        let mut g = Grid2::zeros(32, 32, 1.0);
        g.add_gaussian(16.0, 16.0, 3.0, 1.0);
        let (gx, gy) = g.gradient_at(12.0, 16.0);
        assert!(gx > 0.0, "gradient x should point toward the bump");
        assert!(gy.abs() < 1e-6);
    }

    #[test]
    fn gaussian_wraps_periodically() {
        let mut g = Grid2::zeros(16, 16, 1.0);
        g.add_gaussian(0.5, 0.5, 2.0, 1.0);
        // The bump must be visible across the periodic boundary.
        assert!(g.at(15, 15) > 1e-3);
    }

    #[test]
    fn integral_tracks_mass() {
        let mut g = Grid2::constant(10, 10, 2.0, 1.0);
        assert!((g.integral() - 400.0).abs() < 1e-9);
        g.add_gaussian(10.0, 10.0, 2.0, 0.5);
        assert!(g.integral() > 400.0);
    }

    #[test]
    fn periodic_delta_shortest_path() {
        assert_eq!(periodic_delta(1.0, 10.0), 1.0);
        assert_eq!(periodic_delta(9.0, 10.0), -1.0);
        assert_eq!(periodic_delta(-9.0, 10.0), 1.0);
        assert_eq!(periodic_delta(5.0, 10.0), 5.0);
    }
}
