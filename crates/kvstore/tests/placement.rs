//! Property-based placement contracts: hash tags pin co-location, a
//! rename that would cross shards is a typed error (never a silent
//! partial mutation), and a saved cluster snapshot restores placement
//! exactly. These are the invariants the networked store tier inherits
//! — `storeserver` routes with this same `Cluster`, so a placement bug
//! here would surface as wire-level data loss there.

use bytes::Bytes;
use proptest::prelude::*;

use kvstore::{Client, Cluster, KvError};

/// A key fragment: namespace-ish text without hash-tag braces.
fn frag() -> impl Strategy<Value = String> {
    "[a-z0-9:._-]{0,12}"
}

/// A hash tag body (non-empty — an empty tag falls back to whole-key
/// hashing by the Redis rule).
fn tag() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,16}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any two keys sharing a `{tag}` land on the same shard, whatever
    /// surrounds the tag and however many shards the cluster has. This
    /// is what makes `move_ns` (rename across namespaces) single-shard
    /// and atomic for every frame of a simulation.
    #[test]
    fn same_tag_keys_co_shard(
        shards in 1usize..64,
        tag in tag(),
        pre_a in frag(), post_a in frag(),
        pre_b in frag(), post_b in frag(),
    ) {
        let cluster = Cluster::new(shards);
        let a = format!("{pre_a}{{{tag}}}{post_a}");
        let b = format!("{pre_b}{{{tag}}}{post_b}");
        prop_assert_eq!(
            cluster.shard_for(&a),
            cluster.shard_for(&b),
            "{} and {} share tag {{{}}} but split shards",
            a, b, tag
        );
    }

    /// A rename whose source and destination hash to different shards
    /// returns the typed `CrossShardRename` error carrying both key
    /// names, and mutates nothing: the source stays, the destination
    /// never appears. Same-shard renames succeed and move the value.
    #[test]
    fn cross_shard_rename_is_typed_and_mutation_free(
        shards in 2usize..32,
        from_tag in tag(),
        to_tag in tag(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let cluster = Cluster::new(shards);
        let client = Client::new(std::sync::Arc::clone(&cluster));
        let from = format!("src:{{{from_tag}}}");
        let to = format!("dst:{{{to_tag}}}");
        client.set(&from, Bytes::from(payload.clone()));
        let crosses = cluster.shard_for(&from) != cluster.shard_for(&to);
        match client.rename(&from, &to) {
            Ok(()) => {
                prop_assert!(!crosses, "cross-shard rename succeeded silently");
                if from != to {
                    prop_assert!(!client.exists(&from));
                }
                let moved = client.get(&to);
                prop_assert_eq!(moved.as_deref(), Some(&payload[..]));
            }
            Err(KvError::CrossShardRename { from: f, to: t }) => {
                prop_assert!(crosses, "same-shard rename bounced as cross-shard");
                prop_assert_eq!(&f, &from);
                prop_assert_eq!(&t, &to);
                // The failed rename is a no-op, not a partial move.
                let kept = client.get(&from);
                prop_assert_eq!(kept.as_deref(), Some(&payload[..]));
                prop_assert!(!client.exists(&to));
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// `save` → `load` round-trips the shard count and every shard's
    /// exact population — placement is preserved byte for byte, not
    /// recomputed.
    #[test]
    fn snapshot_round_trips_shard_populations(
        shards in 1usize..24,
        entries in proptest::collection::vec(
            ("[a-z0-9:{}_-]{1,20}", proptest::collection::vec(any::<u8>(), 0..32)),
            0..40,
        ),
    ) {
        let cluster = Cluster::new(shards);
        let client = Client::new(std::sync::Arc::clone(&cluster));
        for (k, v) in &entries {
            client.set(k, Bytes::from(v.clone()));
        }
        let mut buf = Vec::new();
        cluster.save(&mut buf).unwrap();
        let restored = Cluster::load(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(restored.shard_count(), cluster.shard_count());
        prop_assert_eq!(restored.len(), cluster.len());
        for i in 0..cluster.shard_count() {
            let mut want = cluster.shard(i).keys("*");
            let mut got = restored.shard(i).keys("*");
            want.sort();
            got.sort();
            prop_assert_eq!(&got, &want, "shard {} population diverged", i);
            for key in want {
                prop_assert_eq!(
                    restored.shard(i).get(&key),
                    cluster.shard(i).get(&key),
                    "value diverged at {}", key
                );
            }
        }
    }
}

#[test]
fn load_rejects_garbage() {
    assert!(Cluster::load(&mut &b"not a snapshot"[..]).is_err());
    let mut truncated = Vec::new();
    let cluster = Cluster::new(4);
    Client::new(std::sync::Arc::clone(&cluster)).set("k:{t}", &b"v"[..]);
    cluster.save(&mut truncated).unwrap();
    truncated.truncate(truncated.len() - 1);
    assert!(Cluster::load(&mut truncated.as_slice()).is_err());
}
