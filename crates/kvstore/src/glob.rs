//! Redis-style glob matching for `KEYS pattern` scans.
//!
//! Supports `*` (any run of characters), `?` (any single character), and
//! literal matching. Character classes are not needed by the workflow and
//! are intentionally omitted.

/// Returns true when `key` matches the glob `pattern`.
///
/// Matching is iterative (no recursion) with the classic single-backtrack
/// algorithm, so pathological patterns cannot blow the stack.
pub fn glob_match(pattern: &str, key: &str) -> bool {
    let p: &[u8] = pattern.as_bytes();
    let k: &[u8] = key.as_bytes();
    let (mut pi, mut ki) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after '*', key idx)

    while ki < k.len() {
        if pi < p.len() && (p[pi] == b'?' || p[pi] == k[ki]) {
            pi += 1;
            ki += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some((pi + 1, ki));
            pi += 1;
        } else if let Some((sp, sk)) = star {
            // Backtrack: let the last '*' absorb one more key byte.
            pi = sp;
            ki = sk + 1;
            star = Some((sp, sk + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_matching() {
        assert!(glob_match("abc", "abc"));
        assert!(!glob_match("abc", "abd"));
        assert!(!glob_match("abc", "ab"));
        assert!(!glob_match("ab", "abc"));
    }

    #[test]
    fn star_matches_runs() {
        assert!(glob_match("rdf:*", "rdf:sim-00042:frame-7"));
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a*c", "abbbc"));
        assert!(glob_match("a*c", "ac"));
        assert!(!glob_match("a*c", "ab"));
    }

    #[test]
    fn question_matches_single() {
        assert!(glob_match("frame-????", "frame-0042"));
        assert!(!glob_match("frame-????", "frame-042"));
        assert!(!glob_match("?", ""));
    }

    #[test]
    fn mixed_patterns() {
        assert!(glob_match("rdf:new:*:f?", "rdf:new:sim12:f3"));
        assert!(!glob_match("rdf:new:*:f?", "rdf:done:sim12:f3"));
        assert!(glob_match("*:*:*", "a:b:c"));
        assert!(glob_match("a*b*c", "aXbYbZc"));
    }

    #[test]
    fn multiple_stars_backtrack() {
        assert!(glob_match("**a**b", "aab"));
        assert!(glob_match("*ab*ab*", "abab"));
        assert!(!glob_match("*ab*ab*ab*", "abab"));
    }

    #[test]
    fn empty_pattern_matches_only_empty_key() {
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
    }
}
