//! One key-value shard: a single "Redis server" in the cluster.

use bytes::Bytes;
use parking_lot::RwLock; // lint: allow(L6: shard storage lock import; the field carries the reason)
use std::collections::BTreeMap;

use crate::glob::glob_match;
use crate::{KvError, Result};

/// A thread-safe in-memory key-value shard.
///
/// Values are [`Bytes`], so handing a value to many readers is a cheap
/// refcount bump rather than a copy — important for feedback loops that
/// fetch thousands of RDF blobs per iteration.
///
/// Keys live in a [`BTreeMap`]: `keys`/`scan` results come back in key
/// order, so feedback iterations consume frames in the same order on
/// every run (determinism contract — no hash-ordered iteration leaks
/// into coordination decisions). Scan cursors are positions in that
/// stable order.
#[derive(Debug, Default)]
pub struct Shard {
    map: RwLock<BTreeMap<String, Bytes>>, // lint: allow(L6: datastore leaf lock; no coordination decision happens under it)
}

impl Shard {
    /// Creates an empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `value` under `key`, returning true when the key was new.
    pub fn set(&self, key: &str, value: impl Into<Bytes>) -> bool {
        self.map
            .write()
            .insert(key.to_string(), value.into())
            .is_none()
    }

    /// Fetches the value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<Bytes> {
        self.map.read().get(key).cloned()
    }

    /// Deletes `key`, returning true when it existed.
    pub fn del(&self, key: &str) -> bool {
        self.map.write().remove(key).is_some()
    }

    /// Whether `key` exists.
    pub fn exists(&self, key: &str) -> bool {
        self.map.read().contains_key(key)
    }

    /// Renames `from` to `to` atomically (within this shard), overwriting
    /// any existing value at `to`. This is the feedback "tagging" primitive.
    pub fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut map = self.map.write();
        match map.remove(from) {
            Some(v) => {
                map.insert(to.to_string(), v);
                Ok(())
            }
            None => Err(KvError::NoSuchKey(from.to_string())),
        }
    }

    /// Returns all keys matching a Redis-style glob pattern.
    pub fn keys(&self, pattern: &str) -> Vec<String> {
        self.map
            .read()
            .keys()
            .filter(|k| glob_match(pattern, k))
            .cloned()
            .collect()
    }

    /// Number of keys in the shard.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when the shard holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Total bytes of stored values (not counting keys).
    pub fn memory_bytes(&self) -> usize {
        self.map.read().values().map(|v| v.len()).sum()
    }

    /// Removes every key.
    pub fn flush_all(&self) {
        self.map.write().clear();
    }

    /// Cursor-based incremental scan (Redis `SCAN`): returns up to `count`
    /// matching keys starting at `cursor`, plus the next cursor (`None`
    /// when the scan completed). Unlike [`Shard::keys`], each call holds
    /// the lock only briefly, so a huge namespace never blocks writers —
    /// the behaviour production deployments need at the paper's frame
    /// volumes.
    ///
    /// The cursor is a position in the shard's key order; like Redis,
    /// the scan guarantees that keys present for the whole scan are
    /// returned at least once, not exactly once under concurrent
    /// mutation.
    pub fn scan(&self, pattern: &str, cursor: u64, count: usize) -> (Vec<String>, Option<u64>) {
        let map = self.map.read();
        let mut out = Vec::new();
        let mut seen = 0u64;
        let mut next = None;
        for k in map.keys() {
            if seen < cursor {
                seen += 1;
                continue;
            }
            if out.len() >= count {
                next = Some(seen);
                break;
            }
            seen += 1;
            if glob_match(pattern, k) {
                out.push(k.clone());
            }
        }
        (out, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_del() {
        let s = Shard::new();
        assert!(s.set("k", &b"v"[..]));
        assert!(!s.set("k", &b"v2"[..]));
        assert_eq!(s.get("k").unwrap().as_ref(), b"v2");
        assert!(s.del("k"));
        assert!(!s.del("k"));
        assert!(s.get("k").is_none());
    }

    #[test]
    fn rename_moves_value() {
        let s = Shard::new();
        s.set("rdf:new:1", &b"data"[..]);
        s.rename("rdf:new:1", "rdf:done:1").unwrap();
        assert!(!s.exists("rdf:new:1"));
        assert_eq!(s.get("rdf:done:1").unwrap().as_ref(), b"data");
        assert_eq!(
            s.rename("rdf:new:1", "x"),
            Err(KvError::NoSuchKey("rdf:new:1".into()))
        );
    }

    #[test]
    fn keys_pattern_scan() {
        let s = Shard::new();
        for i in 0..10 {
            s.set(&format!("rdf:new:{i}"), &b"x"[..]);
            s.set(&format!("rdf:done:{i}"), &b"x"[..]);
        }
        let mut new_keys = s.keys("rdf:new:*");
        new_keys.sort();
        assert_eq!(new_keys.len(), 10);
        assert!(new_keys.iter().all(|k| k.starts_with("rdf:new:")));
        assert_eq!(s.keys("*").len(), 20);
        assert!(s.keys("nothing*").is_empty());
    }

    #[test]
    fn memory_accounting() {
        let s = Shard::new();
        s.set("a", vec![0u8; 100]);
        s.set("b", vec![0u8; 50]);
        assert_eq!(s.memory_bytes(), 150);
        s.del("a");
        assert_eq!(s.memory_bytes(), 50);
        s.flush_all();
        assert!(s.is_empty());
    }

    #[test]
    fn scan_visits_every_key_exactly_once_when_quiescent() {
        let s = Shard::new();
        for i in 0..250 {
            s.set(&format!("rdf:new:{i}"), &b"x"[..]);
            s.set(&format!("other:{i}"), &b"x"[..]);
        }
        let mut cursor = 0u64;
        let mut found = Vec::new();
        let mut rounds = 0;
        loop {
            rounds += 1;
            let (batch, next) = s.scan("rdf:new:*", cursor, 64);
            found.extend(batch);
            match next {
                Some(c) => cursor = c,
                None => break,
            }
            assert!(rounds < 100, "scan must terminate");
        }
        found.sort();
        found.dedup();
        assert_eq!(found.len(), 250);
        assert!(rounds > 1, "scan was actually incremental: {rounds}");
    }

    #[test]
    fn scan_empty_shard_completes_immediately() {
        let s = Shard::new();
        let (batch, next) = s.scan("*", 0, 10);
        assert!(batch.is_empty());
        assert!(next.is_none());
    }

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        use std::sync::Arc;
        let s = Arc::new(Shard::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    s.set(&format!("t{t}-k{i}"), &b"v"[..]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 8 * 500);
    }
}
