//! A sharded, in-memory key-value store — the Redis™ stand-in.
//!
//! MuMMI "sets up a cluster of Redis servers that are allocated randomly to
//! all compute nodes" and uses it as "a short-term and highly responsive
//! in-memory cache to reduce the amount of time per feedback loop" (§4.2).
//! This crate provides that substrate:
//!
//! - [`Shard`] — one server: a hash map of binary values behind a
//!   reader-writer lock, with the Redis-shaped operations the workflow needs
//!   (`set`, `get`, `del`, `rename`, glob-pattern `keys`);
//! - [`Cluster`] — N shards with hash-based key placement, mirroring the
//!   20-node Redis cluster of the 4000-node scaling run;
//! - [`Client`] — a cheap-to-clone handle with **pipelined** batch
//!   operations and an optional [`LatencyModel`] that accounts simulated
//!   network time per round-trip and per byte, so Figure 7's throughput
//!   series can be regenerated with a realistic interconnect model.
//!
//! Feedback "tagging" (§4.4 Task 4) maps to [`Client::rename`]: a processed
//! frame's key is moved out of the live namespace instead of being tracked
//! in memory.
//!
//! ```
//! use kvstore::{Client, Cluster};
//!
//! let client = Client::new(Cluster::new(20));
//! client.set("rdf:new:{sim1}:f0", &b"rdf bytes"[..]);
//! assert_eq!(client.keys("rdf:new:*").len(), 1);
//! // Tag as processed: rename within the hash-tag's shard.
//! client.rename("rdf:new:{sim1}:f0", "rdf:done:{sim1}:f0").unwrap();
//! assert!(client.keys("rdf:new:*").is_empty());
//! ```

mod cluster;
mod glob;
mod shard;

pub use cluster::{Client, Cluster, LatencyModel};
pub use glob::glob_match;
pub use shard::Shard;

use std::fmt;

/// Errors surfaced by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// `rename` source key does not exist.
    NoSuchKey(String),
    /// `rename` would cross shards (not supported by real Redis clusters
    /// either without hash tags); callers must keep namespaces co-located.
    CrossShardRename { from: String, to: String },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::NoSuchKey(k) => write!(f, "no such key: {k}"),
            KvError::CrossShardRename { from, to } => {
                write!(f, "rename crosses shards: {from} -> {to}")
            }
        }
    }
}

impl std::error::Error for KvError {}

/// Convenience alias for store results.
pub type Result<T> = std::result::Result<T, KvError>;
