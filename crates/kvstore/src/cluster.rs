//! The shard cluster and pipelined client.

use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering}; // lint: allow(L6: virtual-latency meter import; uses carry their own reasons)
use std::sync::Arc;

use crate::shard::Shard;
use crate::{KvError, Result};

/// A cluster of [`Shard`]s with hash-based key placement.
///
/// Keys may embed a *hash tag* (`{...}`, as in Redis Cluster): when present,
/// only the tag is hashed, so related keys — e.g. `rdf:new:{sim42}:f1` and
/// `rdf:done:{sim42}:f1` — co-locate on one shard and can be renamed
/// atomically. The MuMMI feedback namespaces rely on this.
#[derive(Debug)]
pub struct Cluster {
    shards: Vec<Shard>,
}

impl Cluster {
    /// Creates a cluster of `n` shards (the paper's scaling run used 20
    /// Redis nodes). `n` is clamped to at least 1.
    pub fn new(n: usize) -> Arc<Cluster> {
        let n = n.max(1);
        Arc::new(Cluster {
            shards: (0..n).map(|_| Shard::new()).collect(),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index that owns `key`.
    pub fn shard_for(&self, key: &str) -> usize {
        (hash_key(key) % self.shards.len() as u64) as usize
    }

    /// Direct access to a shard (used by tests and rebalancing tools).
    pub fn shard(&self, i: usize) -> &Shard {
        &self.shards[i]
    }

    /// Total keys across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// True when the cluster holds no keys.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(Shard::is_empty)
    }

    /// Total stored value bytes across all shards.
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(Shard::memory_bytes).sum()
    }

    /// Serializes the whole cluster — shard count and every shard's
    /// contents — to `w`. The placement is part of the snapshot: entries
    /// are recorded per shard, so a [`Cluster::load`] restores byte-for-
    /// byte identical shard populations without rehashing.
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(SNAPSHOT_MAGIC)?;
        w.write_all(&(self.shards.len() as u32).to_le_bytes())?;
        for shard in &self.shards {
            let keys = shard.keys("*");
            w.write_all(&(keys.len() as u64).to_le_bytes())?;
            for key in keys {
                let value = shard.get(&key).unwrap_or_default();
                w.write_all(&(key.len() as u32).to_le_bytes())?;
                w.write_all(key.as_bytes())?;
                w.write_all(&(value.len() as u32).to_le_bytes())?;
                w.write_all(&value)?;
            }
        }
        Ok(())
    }

    /// Restores a cluster from a [`Cluster::save`] stream. The shard
    /// count round-trips exactly; a snapshot is *not* a resharding tool.
    pub fn load<R: std::io::Read>(r: &mut R) -> std::io::Result<Arc<Cluster>> {
        use std::io::{Error, ErrorKind};
        let mut magic = [0u8; SNAPSHOT_MAGIC.len()];
        r.read_exact(&mut magic)?;
        if magic != *SNAPSHOT_MAGIC {
            return Err(Error::new(ErrorKind::InvalidData, "not a kvstore snapshot"));
        }
        let mut u32_buf = [0u8; 4];
        let mut u64_buf = [0u8; 8];
        r.read_exact(&mut u32_buf)?;
        let n = u32::from_le_bytes(u32_buf) as usize;
        if n == 0 {
            return Err(Error::new(ErrorKind::InvalidData, "snapshot has 0 shards"));
        }
        let cluster = Cluster::new(n);
        for shard in &cluster.shards {
            r.read_exact(&mut u64_buf)?;
            let count = u64::from_le_bytes(u64_buf);
            for _ in 0..count {
                r.read_exact(&mut u32_buf)?;
                let mut key = vec![0u8; u32::from_le_bytes(u32_buf) as usize];
                r.read_exact(&mut key)?;
                let key = String::from_utf8(key)
                    .map_err(|_| Error::new(ErrorKind::InvalidData, "non-UTF-8 key"))?;
                r.read_exact(&mut u32_buf)?;
                let mut value = vec![0u8; u32::from_le_bytes(u32_buf) as usize];
                r.read_exact(&mut value)?;
                shard.set(&key, value);
            }
        }
        Ok(cluster)
    }
}

/// Magic prefix of the [`Cluster::save`] stream (versioned).
const SNAPSHOT_MAGIC: &[u8] = b"kvsnap1\n";

/// Extracts the hashable portion of a key: the contents of the first
/// non-empty `{...}` tag, or the whole key when no tag exists.
fn hash_slot_of(key: &str) -> &str {
    if let Some(open) = key.find('{') {
        if let Some(close_rel) = key[open + 1..].find('}') {
            let tag = &key[open + 1..open + 1 + close_rel];
            if !tag.is_empty() {
                return tag;
            }
        }
    }
    key
}

/// FNV-1a over the hash slot; stable across runs and platforms.
fn hash_key(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in hash_slot_of(key).as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Models the cost of talking to the cluster over a network.
///
/// Costs accumulate into a virtual-time counter on the [`Client`]; nothing
/// sleeps. This lets benchmarks report interconnect-realistic latencies while
/// measuring data-structure costs for real.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Cost of one request/response round trip to one shard, in nanoseconds.
    pub rtt_ns: u64,
    /// Cost per payload byte transferred, in nanoseconds.
    pub per_byte_ns: u64,
    /// Cost per key touched (serialization, lookup dispatch), in nanoseconds.
    pub per_key_ns: u64,
}

impl LatencyModel {
    /// No simulated network cost.
    pub const ZERO: LatencyModel = LatencyModel {
        rtt_ns: 0,
        per_byte_ns: 0,
        per_key_ns: 0,
    };

    /// A model shaped like Summit's EDR InfiniBand as seen from *Python*
    /// redis clients: ~100 µs effective round trip through the software
    /// stack, ~20 ns/byte (~50 MB/s effective for small serial transfers
    /// through the client library), ~80 µs per key of serialization and
    /// server-side work. Calibrated against the paper's Figure 7 rates
    /// (~10 K key scans+deletions/s, ~2 K value reads/s).
    pub const SUMMIT_IB: LatencyModel = LatencyModel {
        rtt_ns: 100_000,
        per_byte_ns: 20,
        per_key_ns: 80_000,
    };
}

/// A handle to a [`Cluster`] with pipelined batch operations and virtual
/// network-time accounting. Clones share the cluster but each clone keeps
/// its own virtual clock.
#[derive(Debug, Clone)]
pub struct Client {
    cluster: Arc<Cluster>,
    latency: LatencyModel,
    virtual_ns: Arc<AtomicU64>, // lint: allow(L6: monotone accounting counter; order of adds cannot change the sum)
}

impl Client {
    /// Creates a client with no latency model.
    pub fn new(cluster: Arc<Cluster>) -> Client {
        Client::with_latency(cluster, LatencyModel::ZERO)
    }

    /// Creates a client that accounts simulated network time.
    pub fn with_latency(cluster: Arc<Cluster>, latency: LatencyModel) -> Client {
        Client {
            cluster,
            latency,
            virtual_ns: Arc::new(AtomicU64::new(0)), // lint: allow(L6: see the field's reason)
        }
    }

    /// The cluster behind this client.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Simulated network time accumulated so far, in nanoseconds.
    pub fn virtual_ns(&self) -> u64 {
        self.virtual_ns.load(Ordering::SeqCst)
    }

    /// Resets the virtual clock (e.g. between benchmark sections).
    pub fn reset_virtual(&self) {
        self.virtual_ns.store(0, Ordering::SeqCst);
    }

    fn charge(&self, round_trips: u64, keys: u64, bytes: u64) {
        let cost = round_trips * self.latency.rtt_ns
            + keys * self.latency.per_key_ns
            + bytes * self.latency.per_byte_ns;
        if cost > 0 {
            self.virtual_ns.fetch_add(cost, Ordering::SeqCst);
        }
    }

    /// Stores one value. One round trip.
    pub fn set(&self, key: &str, value: impl Into<Bytes>) {
        let value = value.into();
        self.charge(1, 1, value.len() as u64);
        self.cluster.shards[self.cluster.shard_for(key)].set(key, value);
    }

    /// Fetches one value. One round trip.
    pub fn get(&self, key: &str) -> Option<Bytes> {
        let v = self.cluster.shards[self.cluster.shard_for(key)].get(key);
        self.charge(1, 1, v.as_ref().map_or(0, |b| b.len() as u64));
        v
    }

    /// Deletes one key. One round trip.
    pub fn del(&self, key: &str) -> bool {
        self.charge(1, 1, 0);
        self.cluster.shards[self.cluster.shard_for(key)].del(key)
    }

    /// Whether `key` exists. One round trip.
    pub fn exists(&self, key: &str) -> bool {
        self.charge(1, 1, 0);
        self.cluster.shards[self.cluster.shard_for(key)].exists(key)
    }

    /// Renames `from` to `to`. Both must hash to the same shard (use hash
    /// tags); otherwise [`KvError::CrossShardRename`] is returned.
    pub fn rename(&self, from: &str, to: &str) -> Result<()> {
        let (sf, st) = (self.cluster.shard_for(from), self.cluster.shard_for(to));
        if sf != st {
            return Err(KvError::CrossShardRename {
                from: from.to_string(),
                to: to.to_string(),
            });
        }
        self.charge(1, 2, 0);
        self.cluster.shards[sf].rename(from, to)
    }

    /// Scans every shard for keys matching `pattern` (Redis `KEYS`). One
    /// round trip per shard, pipelined.
    pub fn keys(&self, pattern: &str) -> Vec<String> {
        let mut out = Vec::new();
        for shard in &self.cluster.shards {
            out.extend(shard.keys(pattern));
        }
        let key_bytes: u64 = out.iter().map(|k| k.len() as u64).sum();
        self.charge(
            self.cluster.shards.len() as u64,
            out.len() as u64,
            key_bytes,
        );
        out
    }

    /// Incremental cluster scan (Redis `SCAN` over every shard): the cursor
    /// packs (shard index, shard cursor). Returns up to `count` keys per
    /// call; `None` next-cursor means the scan finished. Each call charges
    /// one round trip.
    pub fn scan(&self, pattern: &str, cursor: u64, count: usize) -> (Vec<String>, Option<u64>) {
        let shards = self.cluster.shards.len() as u64;
        let mut shard_idx = (cursor >> 32) as usize;
        let mut shard_cursor = cursor & 0xffff_ffff;
        let mut out = Vec::new();
        while shard_idx < shards as usize && out.len() < count {
            let (batch, next) =
                self.cluster.shards[shard_idx].scan(pattern, shard_cursor, count - out.len());
            let batch_bytes: u64 = batch.iter().map(|k| k.len() as u64).sum();
            self.charge(0, batch.len() as u64, batch_bytes);
            out.extend(batch);
            match next {
                Some(c) => shard_cursor = c,
                None => {
                    shard_idx += 1;
                    shard_cursor = 0;
                }
            }
        }
        self.charge(1, 0, 0);
        let next = if shard_idx < shards as usize {
            Some(((shard_idx as u64) << 32) | shard_cursor)
        } else {
            None
        };
        (out, next)
    }

    /// Pipelined multi-get: values are fetched shard-by-shard with one round
    /// trip per shard touched. Missing keys yield `None`.
    pub fn mget(&self, keys: &[String]) -> Vec<Option<Bytes>> {
        let mut shards_touched = vec![false; self.cluster.shards.len()];
        let mut bytes = 0u64;
        let out: Vec<Option<Bytes>> = keys
            .iter()
            .map(|k| {
                let s = self.cluster.shard_for(k);
                shards_touched[s] = true;
                let v = self.cluster.shards[s].get(k);
                bytes += v.as_ref().map_or(0, |b| b.len() as u64);
                v
            })
            .collect();
        let trips = shards_touched.iter().filter(|&&t| t).count() as u64;
        self.charge(trips, keys.len() as u64, bytes);
        out
    }

    /// Pipelined multi-set.
    pub fn mset(&self, pairs: &[(String, Bytes)]) {
        let mut shards_touched = vec![false; self.cluster.shards.len()];
        let mut bytes = 0u64;
        for (k, v) in pairs {
            let s = self.cluster.shard_for(k);
            shards_touched[s] = true;
            bytes += v.len() as u64;
            self.cluster.shards[s].set(k, v.clone());
        }
        let trips = shards_touched.iter().filter(|&&t| t).count() as u64;
        self.charge(trips, pairs.len() as u64, bytes);
    }

    /// Pipelined multi-delete; returns how many keys existed.
    pub fn del_many(&self, keys: &[String]) -> usize {
        let mut shards_touched = vec![false; self.cluster.shards.len()];
        let mut deleted = 0;
        for k in keys {
            let s = self.cluster.shard_for(k);
            shards_touched[s] = true;
            if self.cluster.shards[s].del(k) {
                deleted += 1;
            }
        }
        let trips = shards_touched.iter().filter(|&&t| t).count() as u64;
        self.charge(trips, keys.len() as u64, 0);
        deleted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_distribute_across_shards() {
        let c = Cluster::new(8);
        let client = Client::new(Arc::clone(&c));
        for i in 0..1000 {
            client.set(&format!("key-{i}"), &b"v"[..]);
        }
        assert_eq!(c.len(), 1000);
        let occupied = (0..8).filter(|&i| !c.shard(i).is_empty()).count();
        assert!(
            occupied >= 6,
            "expected most shards occupied, got {occupied}"
        );
    }

    #[test]
    fn hash_tags_colocate_related_keys() {
        let c = Cluster::new(16);
        let a = c.shard_for("rdf:new:{sim42}:f1");
        let b = c.shard_for("rdf:done:{sim42}:f1");
        let other = c.shard_for("rdf:new:{sim43}:f1");
        assert_eq!(a, b);
        // Different tags need not differ, but over many tags they spread.
        let distinct: std::collections::HashSet<usize> = (0..100)
            .map(|i| c.shard_for(&format!("{{sim{i}}}")))
            .collect();
        assert!(distinct.len() > 8);
        let _ = other;
    }

    #[test]
    fn tagged_rename_succeeds_cross_namespace() {
        let c = Cluster::new(16);
        let client = Client::new(c);
        client.set("rdf:new:{s1}:f1", &b"data"[..]);
        client
            .rename("rdf:new:{s1}:f1", "rdf:done:{s1}:f1")
            .unwrap();
        assert!(client.get("rdf:new:{s1}:f1").is_none());
        assert_eq!(client.get("rdf:done:{s1}:f1").unwrap().as_ref(), b"data");
    }

    #[test]
    fn untagged_cross_shard_rename_is_rejected() {
        let c = Cluster::new(64);
        let client = Client::new(Arc::clone(&c));
        // Find two untagged keys on different shards.
        let from = "alpha".to_string();
        let to = (0..10_000)
            .map(|i| format!("beta-{i}"))
            .find(|k| c.shard_for(k) != c.shard_for(&from))
            .expect("some key must land elsewhere");
        client.set(&from, &b"v"[..]);
        assert!(matches!(
            client.rename(&from, &to),
            Err(KvError::CrossShardRename { .. })
        ));
    }

    #[test]
    fn mget_mset_roundtrip_with_missing() {
        let client = Client::new(Cluster::new(4));
        let pairs: Vec<(String, Bytes)> = (0..50)
            .map(|i| (format!("k{i}"), Bytes::from(vec![i as u8; 10])))
            .collect();
        client.mset(&pairs);
        let mut keys: Vec<String> = pairs.iter().map(|(k, _)| k.clone()).collect();
        keys.push("missing".into());
        let vals = client.mget(&keys);
        assert_eq!(vals.len(), 51);
        assert!(vals[..50].iter().all(Option::is_some));
        assert!(vals[50].is_none());
        assert_eq!(client.del_many(&keys), 50);
        assert!(client.cluster().is_empty());
    }

    #[test]
    fn pattern_scan_spans_cluster() {
        let client = Client::new(Cluster::new(20));
        for i in 0..200 {
            client.set(&format!("rdf:new:{{s{i}}}:f0"), &b"x"[..]);
        }
        for i in 0..100 {
            client.set(&format!("other:{i}"), &b"x"[..]);
        }
        assert_eq!(client.keys("rdf:new:*").len(), 200);
        assert_eq!(client.keys("*").len(), 300);
    }

    #[test]
    fn cluster_scan_covers_all_shards_incrementally() {
        let client = Client::new(Cluster::new(20));
        for i in 0..500 {
            client.set(&format!("rdf:new:{{s{i}}}:f0"), &b"x"[..]);
        }
        let mut cursor = 0u64;
        let mut found = Vec::new();
        let mut calls = 0;
        loop {
            calls += 1;
            let (batch, next) = client.scan("rdf:new:*", cursor, 50);
            found.extend(batch);
            match next {
                Some(c) => cursor = c,
                None => break,
            }
            assert!(calls < 200);
        }
        found.sort();
        found.dedup();
        assert_eq!(found.len(), 500);
        assert!(calls >= 10, "incremental: {calls} calls");
        // The scan agrees with the blocking KEYS.
        assert_eq!(client.keys("rdf:new:*").len(), 500);
    }

    #[test]
    fn latency_model_accounts_virtual_time() {
        let lat = LatencyModel {
            rtt_ns: 1000,
            per_byte_ns: 2,
            per_key_ns: 10,
        };
        let client = Client::with_latency(Cluster::new(4), lat);
        assert_eq!(client.virtual_ns(), 0);
        client.set("k", vec![0u8; 100]); // 1 trip + 1 key + 100 bytes
        assert_eq!(client.virtual_ns(), 1000 + 10 + 200);
        client.reset_virtual();
        let _ = client.get("k"); // returns 100 bytes
        assert_eq!(client.virtual_ns(), 1000 + 10 + 200);
    }

    #[test]
    fn pipelining_amortizes_round_trips() {
        let lat = LatencyModel {
            rtt_ns: 1_000_000,
            per_byte_ns: 0,
            per_key_ns: 0,
        };
        let cluster = Cluster::new(4);
        let pipelined = Client::with_latency(Arc::clone(&cluster), lat);
        let pairs: Vec<(String, Bytes)> = (0..1000)
            .map(|i| (format!("k{i}"), Bytes::from_static(b"v")))
            .collect();
        pipelined.mset(&pairs);
        // At most one round trip per shard, not per key.
        assert!(pipelined.virtual_ns() <= 4 * 1_000_000);

        let naive = Client::with_latency(cluster, lat);
        for (k, v) in &pairs {
            naive.set(k, v.clone());
        }
        assert_eq!(naive.virtual_ns(), 1000 * 1_000_000);
    }
}

#[cfg(test)]
mod concurrency_tests {
    use super::*;
    use std::thread;

    /// Many writer threads sharing one cluster: every write must land, no
    /// key may be lost, and per-thread namespaces stay disjoint — the
    /// situation during a feedback iteration with thousands of CG analyses
    /// writing while the WM scans.
    #[test]
    fn concurrent_writers_and_scanner() {
        let cluster = Cluster::new(20);
        let mut handles = Vec::new();
        for t in 0..8 {
            let client = Client::new(Arc::clone(&cluster));
            handles.push(thread::spawn(move || {
                for i in 0..300 {
                    client.set(&format!("rdf:new:{{t{t}}}:f{i}"), &b"payload"[..]);
                }
            }));
        }
        // A scanner runs concurrently; every observation must be a valid
        // prefix of the final state (no phantom keys, monotone growth).
        let scanner = Client::new(Arc::clone(&cluster));
        let mut last = 0;
        while last < 8 * 300 {
            let found = scanner.keys("rdf:new:*").len();
            assert!(found >= last, "scan went backwards: {last} -> {found}");
            last = found;
            if handles.iter().all(|h| h.is_finished()) {
                break;
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(scanner.keys("rdf:new:*").len(), 2400);
        for t in 0..8 {
            assert_eq!(scanner.keys(&format!("rdf:new:{{t{t}}}*")).len(), 300);
        }
    }

    /// Concurrent feedback tagging: competing renames of disjoint key sets
    /// never lose or duplicate a frame.
    #[test]
    fn concurrent_tagging_conserves_frames() {
        let cluster = Cluster::new(8);
        let setup = Client::new(Arc::clone(&cluster));
        for i in 0..1000 {
            setup.set(&format!("rdf:new:{{s{i}}}:f0"), &b"x"[..]);
        }
        let mut handles = Vec::new();
        for t in 0..4 {
            let client = Client::new(Arc::clone(&cluster));
            handles.push(thread::spawn(move || {
                for i in (t..1000).step_by(4) {
                    client
                        .rename(
                            &format!("rdf:new:{{s{i}}}:f0"),
                            &format!("rdf:done:{{s{i}}}:f0"),
                        )
                        .expect("disjoint renames cannot conflict");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let check = Client::new(cluster);
        assert_eq!(check.keys("rdf:new:*").len(), 0);
        assert_eq!(check.keys("rdf:done:*").len(), 1000);
    }
}
