//! The multi-queue patch selector.
//!
//! "To support the application need, we incorporate five in-memory queues
//! in the Patch Selector for sampling different protein configurations"
//! (§4.4 Task 2). Each queue is an independent farthest-point sampler; a
//! router maps each incoming point to its queue (e.g. by RAS/RAF
//! configuration class), and selection round-robins across non-empty
//! queues so every configuration class keeps being explored.

use crate::ann::KdTreeNn;
use crate::fps::{FarthestPointSampler, FpsConfig};
use crate::point::HdPoint;
use crate::Sampler;

/// Routes a point to a queue index.
pub type Router = Box<dyn Fn(&HdPoint) -> usize + Send>;

/// Multiple farthest-point queues with routed ingestion and round-robin
/// selection.
pub struct MultiQueueSampler {
    queues: Vec<FarthestPointSampler<KdTreeNn>>,
    router: Router,
    next_queue: usize,
}

impl std::fmt::Debug for MultiQueueSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiQueueSampler")
            .field("queues", &self.queues.len())
            .field("candidates", &self.candidates())
            .finish()
    }
}

impl MultiQueueSampler {
    /// Creates `n` queues, each capped at `cap` candidates (the paper uses
    /// five queues of 35,000).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize, cap: usize, router: Router) -> MultiQueueSampler {
        assert!(n > 0, "need at least one queue");
        MultiQueueSampler {
            queues: (0..n)
                .map(|_| FarthestPointSampler::new(FpsConfig { cap }, KdTreeNn::new()))
                .collect(),
            router,
            next_queue: 0,
        }
    }

    /// Number of queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Candidates in one queue.
    pub fn queue_candidates(&self, q: usize) -> usize {
        self.queues[q].candidates()
    }

    /// Total evictions across queues.
    pub fn evicted(&self) -> u64 {
        self.queues.iter().map(|q| q.evicted()).sum()
    }
}

impl Sampler for MultiQueueSampler {
    fn add(&mut self, point: HdPoint) {
        let q = (self.router)(&point) % self.queues.len();
        self.queues[q].add(point);
    }

    fn select(&mut self, k: usize) -> Vec<HdPoint> {
        let mut out = Vec::with_capacity(k);
        let n = self.queues.len();
        let mut empty_streak = 0;
        while out.len() < k && empty_streak < n {
            let q = self.next_queue % n;
            self.next_queue = self.next_queue.wrapping_add(1);
            let picked = self.queues[q].select(1);
            if picked.is_empty() {
                empty_streak += 1;
            } else {
                empty_streak = 0;
                out.extend(picked);
            }
        }
        out
    }

    fn discard(&mut self, id: &str) -> bool {
        self.queues.iter_mut().any(|q| q.discard(id))
    }

    fn candidates(&self) -> usize {
        self.queues.iter().map(|q| q.candidates()).sum()
    }

    fn take(&mut self, id: &str) -> Option<HdPoint> {
        self.queues.iter_mut().find_map(|q| q.take(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selector() -> MultiQueueSampler {
        // Route by the integer part of the first coordinate.
        MultiQueueSampler::new(5, 100, Box::new(|p: &HdPoint| p.coords[0] as usize))
    }

    fn p(id: &str, q: usize, x: f64) -> HdPoint {
        HdPoint::new(id, vec![q as f64, x])
    }

    #[test]
    fn routing_distributes_by_class() {
        let mut s = selector();
        for q in 0..5 {
            for i in 0..10 {
                s.add(p(&format!("q{q}-p{i}"), q, i as f64));
            }
        }
        assert_eq!(s.candidates(), 50);
        for q in 0..5 {
            assert_eq!(s.queue_candidates(q), 10);
        }
    }

    #[test]
    fn selection_round_robins_across_queues() {
        let mut s = selector();
        for q in 0..5 {
            for i in 0..10 {
                s.add(p(&format!("q{q}-p{i}"), q, i as f64));
            }
        }
        let sel = s.select(5);
        let classes: std::collections::HashSet<usize> =
            sel.iter().map(|x| x.coords[0] as usize).collect();
        assert_eq!(classes.len(), 5, "one pick per configuration class");
    }

    #[test]
    fn skips_empty_queues() {
        let mut s = selector();
        for i in 0..10 {
            s.add(p(&format!("p{i}"), 2, i as f64));
        }
        let sel = s.select(4);
        assert_eq!(sel.len(), 4);
        assert!(sel.iter().all(|x| x.coords[0] as usize == 2));
    }

    #[test]
    fn select_stops_when_all_queues_drain() {
        let mut s = selector();
        s.add(p("only", 0, 1.0));
        let sel = s.select(10);
        assert_eq!(sel.len(), 1);
        assert!(s.select(1).is_empty());
    }

    #[test]
    fn discard_and_take_search_all_queues() {
        let mut s = selector();
        s.add(p("a", 1, 0.0));
        s.add(p("b", 3, 0.0));
        assert!(s.discard("b"));
        assert!(!s.discard("b"));
        assert_eq!(s.take("a").unwrap().id, "a");
        assert_eq!(s.candidates(), 0);
    }
}
