//! Dynamic-importance sampling — the DynIm + FAISS stand-in.
//!
//! MuMMI couples scales by continuously *selecting* the most novel coarse
//! configurations for promotion to the finer scale (§4.4 Task 2). Both
//! selectors "operate on DynIm's high-dimensional point objects and, hence,
//! are agnostic to the specific encoding of patches and frames". This crate
//! provides that machinery:
//!
//! - [`HdPoint`] — an id plus a coordinate vector;
//! - [`Sampler`] — the abstract add/select/discard interface;
//! - [`FarthestPointSampler`] — novelty = distance to the nearest already-
//!   selected point, with lazy rank updates ("a caching scheme to postpone
//!   expensive computations until the time of a selection"), a configurable
//!   candidate cap (the paper's 35,000-patch queues), and a pluggable
//!   nearest-neighbor backend ([`ExactNn`] or [`KdTreeNn`], the FAISS
//!   stand-in);
//! - [`BinnedSampler`] — the new histogram sampler for the 3-D CG-frame
//!   encoding "where the L2 distance is not meaningful", with the
//!   importance-vs-randomness balance knob; it sustains millions of
//!   candidates (the paper's 9 M, a 165× capacity increase);
//! - [`MultiQueueSampler`] — the patch selector's five in-memory queues for
//!   different protein configurations;
//! - [`History`] — an event log that can be replayed exactly, mirroring
//!   the paper's "elaborate history files that may be replayed exactly".

//! ```
//! use dynim::{ExactNn, FarthestPointSampler, FpsConfig, HdPoint, Sampler};
//!
//! let mut sampler = FarthestPointSampler::new(FpsConfig::default(), ExactNn::new());
//! sampler.add(HdPoint::new("patch-a", vec![0.0, 0.0]));
//! sampler.add(HdPoint::new("patch-b", vec![0.1, 0.0]));
//! sampler.add(HdPoint::new("patch-c", vec![5.0, 5.0]));
//! let picks = sampler.select(2);
//! // The second pick is the most novel relative to the first.
//! assert_eq!(picks[1].id, "patch-c");
//! ```

mod ann;
mod binned;
mod fps;
mod history;
mod multiqueue;
mod point;

pub use ann::{ExactNn, KdTreeNn, NnIndex};
pub use binned::{BinnedConfig, BinnedSampler};
pub use fps::{FarthestPointSampler, FpsConfig};
pub use history::{History, HistoryEvent};
pub use multiqueue::MultiQueueSampler;
pub use point::HdPoint;

/// The abstract selection interface both selectors implement.
pub trait Sampler {
    /// Ingests a new candidate. Cheap: ranking is deferred to selection.
    fn add(&mut self, point: HdPoint);

    /// Selects up to `k` candidates, most novel first, removing them from
    /// the candidate set and (for distance-based samplers) marking them as
    /// selected for future novelty computations.
    fn select(&mut self, k: usize) -> Vec<HdPoint>;

    /// Removes a candidate without selecting it (e.g. data expired).
    /// Returns true when the candidate existed.
    fn discard(&mut self, id: &str) -> bool;

    /// Force-selects a specific queued candidate by id — the history
    /// replay hook ("history files that may be replayed exactly").
    fn take(&mut self, id: &str) -> Option<HdPoint>;

    /// Number of candidates currently queued.
    fn candidates(&self) -> usize;
}
