//! Nearest-neighbor backends for novelty computation.
//!
//! The paper updates candidate ranks "using approximate nearest neighbor
//! queries (with L2 distances) powered by the FAISS framework". [`KdTreeNn`]
//! is our FAISS stand-in: an incrementally-built k-d tree with pruned
//! nearest-neighbor search. [`ExactNn`] is the linear-scan reference used to
//! validate it and for tiny selected sets.

/// Distance-to-nearest queries over a growing point set.
pub trait NnIndex: Send + Sync {
    /// Inserts a point.
    fn add(&mut self, coords: &[f64]);

    /// Number of stored points.
    fn len(&self) -> usize;

    /// True when no points are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Squared L2 distance from `query` to the nearest stored point, or
    /// `f64::INFINITY` when the index is empty.
    fn nearest_dist_sq(&self, query: &[f64]) -> f64;
}

/// Exact linear-scan index.
#[derive(Debug, Clone, Default)]
pub struct ExactNn {
    points: Vec<Vec<f64>>,
}

impl ExactNn {
    /// An empty index.
    pub fn new() -> ExactNn {
        ExactNn::default()
    }
}

impl NnIndex for ExactNn {
    fn add(&mut self, coords: &[f64]) {
        self.points.push(coords.to_vec());
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn nearest_dist_sq(&self, query: &[f64]) -> f64 {
        self.points
            .iter()
            .map(|p| dist_sq(p, query))
            .fold(f64::INFINITY, f64::min)
    }
}

#[derive(Debug, Clone)]
struct KdNode {
    coords: Vec<f64>,
    axis: usize,
    left: Option<Box<KdNode>>,
    right: Option<Box<KdNode>>,
}

/// Incrementally-built k-d tree (no rebalancing; insertion order acts as
/// shuffling for the near-random encodings this is used on).
#[derive(Debug, Clone, Default)]
pub struct KdTreeNn {
    root: Option<Box<KdNode>>,
    len: usize,
}

impl KdTreeNn {
    /// An empty tree.
    pub fn new() -> KdTreeNn {
        KdTreeNn::default()
    }
}

impl NnIndex for KdTreeNn {
    fn add(&mut self, coords: &[f64]) {
        let dim = coords.len().max(1);
        let mut slot = &mut self.root;
        let mut depth = 0;
        while let Some(node) = slot {
            let axis = node.axis;
            slot = if coords[axis] < node.coords[axis] {
                &mut node.left
            } else {
                &mut node.right
            };
            depth += 1;
        }
        *slot = Some(Box::new(KdNode {
            coords: coords.to_vec(),
            axis: depth % dim,
            left: None,
            right: None,
        }));
        self.len += 1;
    }

    fn len(&self) -> usize {
        self.len
    }

    fn nearest_dist_sq(&self, query: &[f64]) -> f64 {
        let mut best = f64::INFINITY;
        if let Some(root) = &self.root {
            search(root, query, &mut best);
        }
        best
    }
}

fn search(node: &KdNode, query: &[f64], best: &mut f64) {
    let d = dist_sq(&node.coords, query);
    if d < *best {
        *best = d;
    }
    let axis = node.axis;
    let delta = query[axis] - node.coords[axis];
    let (near, far) = if delta < 0.0 {
        (&node.left, &node.right)
    } else {
        (&node.right, &node.left)
    };
    if let Some(n) = near {
        search(n, query, best);
    }
    // Prune the far side unless the splitting plane is closer than best.
    if delta * delta < *best {
        if let Some(f) = far {
            search(f, query, best);
        }
    }
}

fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_index_returns_infinity() {
        assert_eq!(ExactNn::new().nearest_dist_sq(&[0.0]), f64::INFINITY);
        assert_eq!(KdTreeNn::new().nearest_dist_sq(&[0.0]), f64::INFINITY);
    }

    #[test]
    fn kdtree_matches_exact_on_random_points() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut exact = ExactNn::new();
        let mut tree = KdTreeNn::new();
        for _ in 0..500 {
            let p: Vec<f64> = (0..9).map(|_| rng.gen_range(-1.0..1.0)).collect();
            exact.add(&p);
            tree.add(&p);
        }
        assert_eq!(exact.len(), tree.len());
        for _ in 0..200 {
            let q: Vec<f64> = (0..9).map(|_| rng.gen_range(-1.5..1.5)).collect();
            let de = exact.nearest_dist_sq(&q);
            let dt = tree.nearest_dist_sq(&q);
            assert!(
                (de - dt).abs() < 1e-12,
                "exact {de} vs kdtree {dt} for query {q:?}"
            );
        }
    }

    #[test]
    fn nearest_of_member_is_zero() {
        let mut tree = KdTreeNn::new();
        tree.add(&[1.0, 2.0, 3.0]);
        tree.add(&[4.0, 5.0, 6.0]);
        assert_eq!(tree.nearest_dist_sq(&[4.0, 5.0, 6.0]), 0.0);
    }

    #[test]
    fn duplicate_points_are_fine() {
        let mut tree = KdTreeNn::new();
        for _ in 0..10 {
            tree.add(&[1.0, 1.0]);
        }
        assert_eq!(tree.len(), 10);
        assert_eq!(tree.nearest_dist_sq(&[1.0, 1.0]), 0.0);
        assert!((tree.nearest_dist_sq(&[2.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_dimensional_points() {
        let mut tree = KdTreeNn::new();
        for i in 0..100 {
            tree.add(&[i as f64]);
        }
        assert!((tree.nearest_dist_sq(&[42.4]) - 0.16).abs() < 1e-9);
    }
}
