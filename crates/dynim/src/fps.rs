//! Farthest-point sampling with lazy rank caching.

use rayon::prelude::*;
use std::collections::HashMap;

use crate::ann::NnIndex;
use crate::point::HdPoint;
use crate::Sampler;

/// Farthest-point sampler configuration.
#[derive(Debug, Clone, Copy)]
pub struct FpsConfig {
    /// Maximum queued candidates; the oldest is evicted beyond this. The
    /// paper caps each patch queue at 35,000 "for computational viability".
    /// Zero disables the cap.
    pub cap: usize,
}

impl Default for FpsConfig {
    fn default() -> Self {
        FpsConfig { cap: 35_000 }
    }
}

/// Rank cache entry: `None` = not yet computed against the selected set.
type Rank = Option<f64>;

/// Selects candidates farthest (L2) from everything already selected.
///
/// Adding candidates is O(1) — ranks are computed lazily at selection time
/// against the nearest-neighbor index of selected points, in parallel, then
/// maintained incrementally as each pick lands. This mirrors the paper's
/// "caching scheme to postpone expensive computations until the time of a
/// selection, which makes the cost of adding new candidates negligible".
#[derive(Debug)]
pub struct FarthestPointSampler<I: NnIndex> {
    cfg: FpsConfig,
    queue: Vec<(HdPoint, Rank)>,
    pos: HashMap<String, usize>,
    selected: I,
    evicted: u64,
    selected_ids: Vec<String>,
    /// Entries whose rank is `None`. Lets a warm [`Self::update_ranks`]
    /// return in O(1) instead of scanning the whole queue for stale
    /// entries on every pick of a multi-point selection.
    stale: usize,
}

impl<I: NnIndex> FarthestPointSampler<I> {
    /// Creates a sampler over the given NN backend.
    pub fn new(cfg: FpsConfig, index: I) -> FarthestPointSampler<I> {
        FarthestPointSampler {
            cfg,
            queue: Vec::new(),
            pos: HashMap::new(),
            selected: index,
            evicted: 0,
            selected_ids: Vec::new(),
            stale: 0,
        }
    }

    /// Candidates evicted by the cap so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Number of points selected over the sampler's lifetime.
    pub fn selected_count(&self) -> usize {
        self.selected.len()
    }

    /// IDs selected so far, in selection order.
    pub fn selected_ids(&self) -> &[String] {
        &self.selected_ids
    }

    /// Whether a candidate id is queued.
    pub fn contains(&self, id: &str) -> bool {
        self.pos.contains_key(id)
    }

    /// Diagnostic view of the rank cache: `(id, cached min-distance²)` per
    /// queued candidate in internal queue order; `None` marks a stale
    /// entry. The equivalence property test compares this against a naive
    /// recomputation.
    pub fn cached_ranks(&self) -> Vec<(&str, Option<f64>)> {
        self.queue
            .iter()
            .map(|(p, r)| (p.id.as_str(), *r))
            .collect()
    }

    /// Refreshes every stale rank against the full selected set, in
    /// parallel — the expensive step the cache defers ("it takes 3–4
    /// minutes to update the ranks of all candidates within all queues").
    pub fn update_ranks(&mut self) {
        // Warm cache: nothing stale, nothing to scan. This is what makes
        // the per-pick cost of `select` O(N) in the queue rather than
        // O(N·S) against the selected set.
        if self.selected.is_empty() || self.stale == 0 {
            return;
        }
        let index = &self.selected;
        self.queue
            .par_iter_mut() // lint: allow(L8: disjoint per-element writes; result independent of schedule)
            .for_each(|(p, rank)| {
                if rank.is_none() {
                    *rank = Some(index.nearest_dist_sq(&p.coords));
                }
            });
        self.stale = 0;
    }

    fn mark_selected(&mut self, point: &HdPoint) {
        self.selected.add(&point.coords);
        self.selected_ids.push(point.id.clone());
        // Incremental rank maintenance: a new selected point can only
        // lower ranks; fold it into every *computed* cache entry.
        let coords = &point.coords;
        self.queue
            .par_iter_mut() // lint: allow(L8: per-element min update, disjoint writes)
            .for_each(|(p, rank)| {
                if let Some(r) = rank {
                    let d = p.dist_sq(coords);
                    if d < *r {
                        *rank = Some(d);
                    }
                }
            });
    }

    /// swap_remove with position-map repair.
    fn remove_at(&mut self, idx: usize) -> (HdPoint, Rank) {
        let entry = self.queue.swap_remove(idx);
        if entry.1.is_none() {
            self.stale -= 1;
        }
        self.pos.remove(&entry.0.id);
        if idx < self.queue.len() {
            let moved_id = self.queue[idx].0.id.clone();
            self.pos.insert(moved_id, idx);
        }
        entry
    }
}

impl<I: NnIndex> Sampler for FarthestPointSampler<I> {
    fn add(&mut self, point: HdPoint) {
        if let Some(&idx) = self.pos.get(&point.id) {
            // Same id re-added: replace coordinates, invalidate rank.
            if self.queue[idx].1.is_some() {
                self.stale += 1;
            }
            self.queue[idx] = (point, None);
            return;
        }
        if self.cfg.cap > 0 && self.queue.len() >= self.cfg.cap {
            // Evict the oldest candidate (index 0 drifts under swap_remove;
            // "oldest" here is best-effort, which matches a bounded queue).
            self.remove_at(0);
            self.evicted += 1;
        }
        self.pos.insert(point.id.clone(), self.queue.len());
        self.queue.push((point, None));
        self.stale += 1;
    }

    fn select(&mut self, k: usize) -> Vec<HdPoint> {
        let mut out = Vec::with_capacity(k.min(self.queue.len()));
        for _ in 0..k {
            if self.queue.is_empty() {
                break;
            }
            // Compute any stale ranks (no-op once the cache is warm; after
            // the very first pick this is the full batch computation).
            self.update_ranks();
            // Argmax of cached rank; uncomputed ranks (empty selected set)
            // count as infinitely novel, ties broken by queue order.
            let best = self
                .queue
                .iter()
                .enumerate()
                .max_by(|(ia, (_, ra)), (ib, (_, rb))| {
                    let ra = ra.unwrap_or(f64::INFINITY);
                    let rb = rb.unwrap_or(f64::INFINITY);
                    ra.partial_cmp(&rb)
                        .expect("ranks are never NaN")
                        .then(ib.cmp(ia)) // prefer earlier entries on ties
                })
                .map(|(i, _)| i)
                .expect("non-empty queue");
            let (point, _) = self.remove_at(best);
            self.mark_selected(&point);
            out.push(point);
        }
        out
    }

    fn discard(&mut self, id: &str) -> bool {
        match self.pos.get(id) {
            Some(&idx) => {
                self.remove_at(idx);
                true
            }
            None => false,
        }
    }

    fn candidates(&self) -> usize {
        self.queue.len()
    }

    fn take(&mut self, id: &str) -> Option<HdPoint> {
        let idx = *self.pos.get(id)?;
        let (point, _) = self.remove_at(idx);
        self.mark_selected(&point);
        Some(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ann::{ExactNn, KdTreeNn};

    fn p(id: &str, coords: &[f64]) -> HdPoint {
        HdPoint::new(id, coords.to_vec())
    }

    fn sampler() -> FarthestPointSampler<ExactNn> {
        FarthestPointSampler::new(FpsConfig { cap: 0 }, ExactNn::new())
    }

    #[test]
    fn first_selection_is_fifo_then_farthest() {
        let mut s = sampler();
        s.add(p("origin", &[0.0, 0.0]));
        s.add(p("near", &[0.1, 0.0]));
        s.add(p("far", &[10.0, 0.0]));
        let sel = s.select(2);
        // First pick: all ranks infinite, earliest added wins.
        assert_eq!(sel[0].id, "origin");
        // Second pick: farthest from origin.
        assert_eq!(sel[1].id, "far");
        assert_eq!(s.candidates(), 1);
        assert_eq!(s.selected_count(), 2);
    }

    #[test]
    fn coverage_spreads_over_clusters() {
        // Three tight clusters; selecting 3 points must hit all clusters.
        let mut s = sampler();
        let centers = [[0.0, 0.0], [100.0, 0.0], [0.0, 100.0]];
        let mut id = 0;
        for c in &centers {
            for dx in 0..5 {
                s.add(p(&format!("p{id}"), &[c[0] + dx as f64 * 0.01, c[1]]));
                id += 1;
            }
        }
        let sel = s.select(3);
        let mut hit = [false; 3];
        for q in &sel {
            for (ci, c) in centers.iter().enumerate() {
                if q.dist(c) < 1.0 {
                    hit[ci] = true;
                }
            }
        }
        assert_eq!(hit, [true, true, true], "selected {sel:?}");
    }

    #[test]
    fn duplicate_id_updates_coords() {
        let mut s = sampler();
        s.add(p("x", &[0.0]));
        s.add(p("x", &[5.0]));
        assert_eq!(s.candidates(), 1);
        let sel = s.select(1);
        assert_eq!(sel[0].coords, vec![5.0]);
    }

    #[test]
    fn cap_evicts_and_counts() {
        let mut s = FarthestPointSampler::new(FpsConfig { cap: 10 }, ExactNn::new());
        for i in 0..25 {
            s.add(p(&format!("p{i}"), &[i as f64]));
        }
        assert_eq!(s.candidates(), 10);
        assert_eq!(s.evicted(), 15);
    }

    #[test]
    fn discard_removes_candidate() {
        let mut s = sampler();
        s.add(p("a", &[0.0]));
        s.add(p("b", &[1.0]));
        assert!(s.discard("a"));
        assert!(!s.discard("a"));
        assert!(!s.contains("a"));
        assert_eq!(s.candidates(), 1);
        let sel = s.select(5);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].id, "b");
    }

    #[test]
    fn take_force_selects_for_replay() {
        let mut s = sampler();
        s.add(p("a", &[0.0]));
        s.add(p("b", &[100.0]));
        let t = s.take("a").unwrap();
        assert_eq!(t.id, "a");
        assert!(s.take("ghost").is_none());
        // "a" now influences novelty: a point at the origin ranks low.
        s.add(p("near-a", &[0.1]));
        let sel = s.select(1);
        assert_eq!(sel[0].id, "b");
    }

    #[test]
    fn kdtree_backend_selects_same_ids_as_exact() {
        let mk_points = || -> Vec<HdPoint> {
            (0..200)
                .map(|i| {
                    let x = (i as f64 * 0.61803) % 7.0;
                    let y = (i as f64 * 0.31415) % 3.0;
                    p(&format!("p{i}"), &[x, y])
                })
                .collect()
        };
        let mut a = FarthestPointSampler::new(FpsConfig { cap: 0 }, ExactNn::new());
        let mut b = FarthestPointSampler::new(FpsConfig { cap: 0 }, KdTreeNn::new());
        for q in mk_points() {
            a.add(q.clone());
            b.add(q);
        }
        let ia: Vec<String> = a.select(20).into_iter().map(|q| q.id).collect();
        let ib: Vec<String> = b.select(20).into_iter().map(|q| q.id).collect();
        assert_eq!(ia, ib);
    }

    #[test]
    fn select_more_than_available_drains_queue() {
        let mut s = sampler();
        for i in 0..3 {
            s.add(p(&format!("p{i}"), &[i as f64]));
        }
        assert_eq!(s.select(10).len(), 3);
        assert_eq!(s.candidates(), 0);
        assert!(s.select(1).is_empty());
    }
}
