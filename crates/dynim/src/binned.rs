//! The binned (histogram) sampler for the 3-D CG-frame encoding.
//!
//! "Unlike the encoding used for patches, the Frame Selector relies on a
//! 3-D encoding of CG frames that represents three disparate quantities;
//! therefore, the L2 distance is not meaningful. To support a functionally
//! useful sampling, a binned sampler was developed … The binned sampling
//! approach also facilitates control over the balance between importance
//! and randomness" (§4.4 Task 2). Rank updates are O(1) per candidate —
//! this is what lets the paper track 9 M candidates with 3–4 minute
//! updates, "almost 165× more data".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use crate::point::HdPoint;
use crate::Sampler;

/// Per-dimension binning plus the importance/randomness balance.
#[derive(Debug, Clone)]
pub struct BinnedConfig {
    /// `(lo, hi, bins)` for each encoding dimension; values clamp to range.
    pub dims: Vec<(f64, f64, usize)>,
    /// Probability of an importance-driven pick (least-sampled bin) versus
    /// a uniform random pick. 1.0 = pure importance, 0.0 = pure random.
    pub importance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BinnedConfig {
    /// The three-scale campaign's frame encoding: three disparate
    /// quantities, each binned into 10 bins over [0, 1].
    pub fn cg_frames() -> BinnedConfig {
        BinnedConfig {
            dims: vec![(0.0, 1.0, 10); 3],
            importance: 0.8,
            seed: 7,
        }
    }

    fn bin_of(&self, coords: &[f64]) -> usize {
        let mut idx = 0usize;
        for (d, &(lo, hi, bins)) in self.dims.iter().enumerate() {
            let v = coords.get(d).copied().unwrap_or(lo).clamp(lo, hi);
            let frac = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
            let b = ((frac * bins as f64) as usize).min(bins - 1);
            idx = idx * bins + b;
        }
        idx
    }

    fn total_bins(&self) -> usize {
        self.dims
            .iter()
            .map(|&(_, _, b)| b)
            .product::<usize>()
            .max(1)
    }
}

/// Histogram-based sampler: novelty = how rarely a bin has been sampled.
#[derive(Debug)]
pub struct BinnedSampler {
    cfg: BinnedConfig,
    /// Candidate ids per bin (points kept in a side table for O(1) discard).
    bins: Vec<Vec<String>>,
    points: HashMap<String, (HdPoint, usize)>,
    /// How many selections each bin has produced (the importance signal).
    sampled: Vec<u64>,
    rng: StdRng,
    total: usize,
}

impl BinnedSampler {
    /// Creates a sampler.
    ///
    /// # Panics
    /// Panics when a dimension has zero bins or `importance` is outside
    /// [0, 1].
    pub fn new(cfg: BinnedConfig) -> BinnedSampler {
        assert!(
            cfg.dims.iter().all(|&(_, _, b)| b > 0),
            "every dimension needs at least one bin"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.importance),
            "importance must be in [0, 1]"
        );
        let n = cfg.total_bins();
        BinnedSampler {
            rng: StdRng::seed_from_u64(cfg.seed),
            bins: vec![Vec::new(); n],
            points: HashMap::new(),
            sampled: vec![0; n],
            cfg,
            total: 0,
        }
    }

    /// Number of bins in the histogram.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// How many selections bin `b` has produced.
    pub fn sampled_in_bin(&self, b: usize) -> u64 {
        self.sampled[b]
    }

    /// Occupancy (queued candidates) of bin `b`.
    pub fn occupancy(&self, b: usize) -> usize {
        self.bins[b].len()
    }

    /// Picks one candidate according to the importance/randomness policy.
    fn pick_one(&mut self) -> Option<HdPoint> {
        if self.total == 0 {
            return None;
        }
        let use_importance = self.rng.gen_bool(self.cfg.importance);
        let bin = if use_importance {
            // Least-sampled non-empty bin; ties broken by lowest index for
            // determinism.
            (0..self.bins.len())
                .filter(|&b| !self.bins[b].is_empty())
                .min_by_key(|&b| self.sampled[b])
                .expect("total > 0 implies a non-empty bin")
        } else {
            // Uniform over candidates: pick the k-th queued candidate.
            let mut k = self.rng.gen_range(0..self.total);
            let mut chosen = 0;
            for (b, slot) in self.bins.iter().enumerate() {
                if k < slot.len() {
                    chosen = b;
                    break;
                }
                k -= slot.len();
            }
            chosen
        };
        let slot = &mut self.bins[bin];
        let idx = self.rng.gen_range(0..slot.len());
        let id = slot.swap_remove(idx);
        let (point, _) = self.points.remove(&id).expect("points consistent");
        self.sampled[bin] += 1;
        self.total -= 1;
        Some(point)
    }
}

impl Sampler for BinnedSampler {
    fn add(&mut self, point: HdPoint) {
        let bin = self.cfg.bin_of(&point.coords);
        if let Some((_, old_bin)) = self.points.get(&point.id) {
            // Re-added id: drop the stale copy first.
            let old_bin = *old_bin;
            let slot = &mut self.bins[old_bin];
            if let Some(idx) = slot.iter().position(|x| x == &point.id) {
                slot.swap_remove(idx);
                self.total -= 1;
            }
        }
        self.bins[bin].push(point.id.clone());
        self.points.insert(point.id.clone(), (point, bin));
        self.total += 1;
    }

    fn select(&mut self, k: usize) -> Vec<HdPoint> {
        (0..k).map_while(|_| self.pick_one()).collect()
    }

    fn discard(&mut self, id: &str) -> bool {
        match self.points.remove(id) {
            Some((_, bin)) => {
                let slot = &mut self.bins[bin];
                if let Some(idx) = slot.iter().position(|x| x == id) {
                    slot.swap_remove(idx);
                }
                self.total -= 1;
                true
            }
            None => false,
        }
    }

    fn candidates(&self) -> usize {
        self.total
    }

    fn take(&mut self, id: &str) -> Option<HdPoint> {
        let (point, bin) = self.points.remove(id)?;
        let slot = &mut self.bins[bin];
        let idx = slot.iter().position(|x| x == id).expect("bin consistent");
        slot.swap_remove(idx);
        self.sampled[bin] += 1;
        self.total -= 1;
        Some(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(id: &str, coords: &[f64]) -> HdPoint {
        HdPoint::new(id, coords.to_vec())
    }

    fn config(importance: f64) -> BinnedConfig {
        BinnedConfig {
            dims: vec![(0.0, 1.0, 4); 3],
            importance,
            seed: 5,
        }
    }

    #[test]
    fn bin_assignment_clamps() {
        let cfg = config(1.0);
        assert_eq!(cfg.total_bins(), 64);
        assert_eq!(cfg.bin_of(&[-5.0, 0.0, 0.0]), cfg.bin_of(&[0.0, 0.0, 0.0]));
        assert_eq!(cfg.bin_of(&[9.0, 1.0, 1.0]), cfg.bin_of(&[1.0, 1.0, 1.0]));
        assert_ne!(cfg.bin_of(&[0.1, 0.1, 0.1]), cfg.bin_of(&[0.9, 0.9, 0.9]));
    }

    #[test]
    fn importance_mode_balances_bins() {
        // Bin A has 1000 candidates, bin B has 10. Pure importance sampling
        // must alternate between them rather than drown in A.
        let mut s = BinnedSampler::new(config(1.0));
        for i in 0..1000 {
            s.add(p(&format!("a{i}"), &[0.1, 0.1, 0.1]));
        }
        for i in 0..10 {
            s.add(p(&format!("b{i}"), &[0.9, 0.9, 0.9]));
        }
        let sel = s.select(20);
        let from_b = sel.iter().filter(|q| q.id.starts_with('b')).count();
        assert_eq!(from_b, 10, "importance mode must drain the rare bin");
    }

    #[test]
    fn random_mode_follows_occupancy() {
        let mut s = BinnedSampler::new(config(0.0));
        for i in 0..900 {
            s.add(p(&format!("a{i}"), &[0.1, 0.1, 0.1]));
        }
        for i in 0..100 {
            s.add(p(&format!("b{i}"), &[0.9, 0.9, 0.9]));
        }
        let sel = s.select(200);
        let from_a = sel.iter().filter(|q| q.id.starts_with('a')).count();
        // ~90% expected from the big bin.
        assert!(
            from_a > 150,
            "random mode should follow occupancy: {from_a}"
        );
    }

    #[test]
    fn scales_to_millions_of_candidates() {
        // The 165× headline: adds must stay O(1). One million candidates
        // (scaled from the paper's 9 M) must ingest and select promptly.
        let mut s = BinnedSampler::new(BinnedConfig {
            dims: vec![(0.0, 1.0, 10); 3],
            importance: 0.8,
            seed: 1,
        });
        for i in 0..1_000_000u64 {
            let x = (i % 97) as f64 / 97.0;
            let y = (i % 89) as f64 / 89.0;
            let z = (i % 83) as f64 / 83.0;
            s.add(HdPoint::new(format!("f{i}"), vec![x, y, z]));
        }
        assert_eq!(s.candidates(), 1_000_000);
        let sel = s.select(100);
        assert_eq!(sel.len(), 100);
        assert_eq!(s.candidates(), 999_900);
    }

    #[test]
    fn discard_and_take() {
        let mut s = BinnedSampler::new(config(1.0));
        s.add(p("x", &[0.5, 0.5, 0.5]));
        s.add(p("y", &[0.5, 0.5, 0.5]));
        assert!(s.discard("x"));
        assert!(!s.discard("x"));
        let t = s.take("y").unwrap();
        assert_eq!(t.id, "y");
        assert_eq!(s.candidates(), 0);
        // take() counts as a selection for importance purposes.
        let bin = config(1.0).bin_of(&[0.5, 0.5, 0.5]);
        assert_eq!(s.sampled_in_bin(bin), 1);
    }

    #[test]
    fn readd_same_id_moves_bins() {
        let mut s = BinnedSampler::new(config(1.0));
        s.add(p("x", &[0.1, 0.1, 0.1]));
        s.add(p("x", &[0.9, 0.9, 0.9]));
        assert_eq!(s.candidates(), 1);
        let sel = s.select(1);
        assert_eq!(sel[0].coords, vec![0.9, 0.9, 0.9]);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut s = BinnedSampler::new(config(0.5));
            for i in 0..100 {
                let v = i as f64 / 100.0;
                s.add(p(&format!("p{i}"), &[v, 1.0 - v, 0.5]));
            }
            s.select(30).into_iter().map(|q| q.id).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "importance must be")]
    fn bad_importance_panics() {
        let mut cfg = config(0.5);
        cfg.importance = 1.5;
        let _ = BinnedSampler::new(cfg);
    }
}
