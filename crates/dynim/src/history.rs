//! Selection history logging and exact replay.
//!
//! "Key components (ML and job scheduling) also maintain elaborate history
//! files that may be replayed exactly, if necessary" (§4.4). [`History`]
//! records every sampler mutation as a line-oriented log; replaying the log
//! into a fresh sampler reproduces its selected set and queue contents.

use crate::point::HdPoint;
use crate::Sampler;

/// One sampler mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum HistoryEvent {
    /// A candidate was added.
    Added(HdPoint),
    /// A candidate was selected (promoted to the finer scale).
    Selected(String),
    /// A candidate was discarded without selection.
    Discarded(String),
}

/// An append-only mutation log with text serialization.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    events: Vec<HistoryEvent>,
}

impl History {
    /// An empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Records an addition.
    pub fn record_add(&mut self, point: &HdPoint) {
        self.events.push(HistoryEvent::Added(point.clone()));
    }

    /// Records a selection.
    pub fn record_select(&mut self, id: &str) {
        self.events.push(HistoryEvent::Selected(id.to_string()));
    }

    /// Records a discard.
    pub fn record_discard(&mut self, id: &str) {
        self.events.push(HistoryEvent::Discarded(id.to_string()));
    }

    /// All events in order.
    pub fn events(&self) -> &[HistoryEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes to the line format:
    /// `A <id> <c1,c2,…>` / `S <id>` / `D <id>`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            match ev {
                HistoryEvent::Added(p) => {
                    let coords: Vec<String> = p.coords.iter().map(|c| format!("{c:e}")).collect();
                    out.push_str(&format!("A {} {}\n", p.id, coords.join(",")));
                }
                HistoryEvent::Selected(id) => out.push_str(&format!("S {id}\n")),
                HistoryEvent::Discarded(id) => out.push_str(&format!("D {id}\n")),
            }
        }
        out
    }

    /// Parses the line format back; returns `None` on any malformed line.
    pub fn from_text(text: &str) -> Option<History> {
        let mut h = History::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, ' ');
            let tag = parts.next()?;
            let id = parts.next()?;
            match tag {
                "A" => {
                    let coords: Option<Vec<f64>> = parts
                        .next()?
                        .split(',')
                        .map(|c| c.parse::<f64>().ok())
                        .collect();
                    h.events
                        .push(HistoryEvent::Added(HdPoint::new(id, coords?)));
                }
                "S" => h.events.push(HistoryEvent::Selected(id.to_string())),
                "D" => h.events.push(HistoryEvent::Discarded(id.to_string())),
                _ => return None,
            }
        }
        Some(h)
    }

    /// Folds the log to its net effect: one `Added` per still-live
    /// candidate (latest coordinates, original relative order) and an
    /// `Added` + `Selected` pair per selection, in selection order.
    /// Replaying the compact history reproduces the same sampler state as
    /// replaying the full log, at O(live + selected) cost instead of
    /// O(every event ever) — this is what checkpoints store.
    pub fn compact(&self) -> History {
        use std::collections::HashMap;
        // id -> (coords, insertion sequence) for still-queued candidates.
        let mut live: HashMap<String, (Vec<f64>, usize)> = HashMap::new();
        let mut selected: Vec<(String, Vec<f64>)> = Vec::new();
        let mut seq = 0usize;
        for ev in &self.events {
            match ev {
                HistoryEvent::Added(p) => {
                    seq += 1;
                    live.insert(p.id.clone(), (p.coords.clone(), seq));
                }
                HistoryEvent::Selected(id) => {
                    if let Some((coords, _)) = live.remove(id) {
                        selected.push((id.clone(), coords));
                    }
                }
                HistoryEvent::Discarded(id) => {
                    live.remove(id);
                }
            }
        }
        let mut out = History::new();
        for (id, coords) in selected {
            out.events
                .push(HistoryEvent::Added(HdPoint::new(&*id, coords)));
            out.events.push(HistoryEvent::Selected(id));
        }
        let mut live: Vec<(String, (Vec<f64>, usize))> = live.into_iter().collect();
        live.sort_by_key(|(_, (_, s))| *s);
        for (id, (coords, _)) in live {
            out.events
                .push(HistoryEvent::Added(HdPoint::new(id, coords)));
        }
        out
    }

    /// Replays every event into `sampler` through its force-select hook.
    /// Returns the ids selected during replay, in order.
    pub fn replay(&self, sampler: &mut dyn Sampler) -> Vec<String> {
        let mut selected = Vec::new();
        for ev in &self.events {
            match ev {
                HistoryEvent::Added(p) => sampler.add(p.clone()),
                HistoryEvent::Selected(id) => {
                    if sampler.take(id).is_some() {
                        selected.push(id.clone());
                    }
                }
                HistoryEvent::Discarded(id) => {
                    sampler.discard(id);
                }
            }
        }
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ann::ExactNn;
    use crate::fps::{FarthestPointSampler, FpsConfig};

    fn p(id: &str, x: f64) -> HdPoint {
        HdPoint::new(id, vec![x, -x])
    }

    #[test]
    fn text_roundtrip() {
        let mut h = History::new();
        h.record_add(&p("a", 1.5));
        h.record_add(&p("b", -2.25));
        h.record_select("a");
        h.record_discard("b");
        let text = h.to_text();
        let back = History::from_text(&text).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn malformed_text_is_rejected() {
        assert!(History::from_text("X nope").is_none());
        assert!(History::from_text("A id not-a-number").is_none());
        assert!(History::from_text("A idonly").is_none());
        // Empty input is a valid empty history.
        assert_eq!(History::from_text("").unwrap().len(), 0);
    }

    #[test]
    fn replay_reproduces_sampler_state() {
        // Drive a live sampler while recording, then replay into a fresh
        // one and compare selected sets and queue sizes.
        let mut live = FarthestPointSampler::new(FpsConfig { cap: 0 }, ExactNn::new());
        let mut h = History::new();
        for i in 0..20 {
            let q = p(&format!("p{i}"), i as f64 * 0.37 % 5.0);
            h.record_add(&q);
            live.add(q);
        }
        let picked = live.select(5);
        for q in &picked {
            h.record_select(&q.id);
        }
        h.record_discard("p3");
        live.discard("p3");

        let mut replayed = FarthestPointSampler::new(FpsConfig { cap: 0 }, ExactNn::new());
        let selected = h.replay(&mut replayed);
        assert_eq!(
            selected,
            picked.iter().map(|q| q.id.clone()).collect::<Vec<_>>()
        );
        assert_eq!(replayed.candidates(), live.candidates());
        assert_eq!(replayed.selected_ids(), live.selected_ids());
        // Both continue identically after replay.
        assert_eq!(
            live.select(3).into_iter().map(|q| q.id).collect::<Vec<_>>(),
            replayed
                .select(3)
                .into_iter()
                .map(|q| q.id)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn compact_replay_matches_full_replay() {
        let mut h = History::new();
        let mut live = FarthestPointSampler::new(FpsConfig { cap: 0 }, ExactNn::new());
        for i in 0..30 {
            let q = p(&format!("p{i}"), (i as f64 * 0.61) % 4.0);
            h.record_add(&q);
            live.add(q);
        }
        for q in live.select(7) {
            h.record_select(&q.id);
        }
        h.record_discard("p2");
        live.discard("p2");
        // Re-add a previously selected id with new coords.
        let fresh = p("p0", 9.0);
        h.record_add(&fresh);
        live.add(fresh);

        let compact = h.compact();
        assert!(compact.len() < h.len(), "compaction shrinks the log");

        let mut a = FarthestPointSampler::new(FpsConfig { cap: 0 }, ExactNn::new());
        let mut b = FarthestPointSampler::new(FpsConfig { cap: 0 }, ExactNn::new());
        h.replay(&mut a);
        compact.replay(&mut b);
        assert_eq!(a.candidates(), b.candidates());
        assert_eq!(a.selected_ids(), b.selected_ids());
        // Future behaviour is identical too.
        assert_eq!(
            a.select(5).into_iter().map(|q| q.id).collect::<Vec<_>>(),
            b.select(5).into_iter().map(|q| q.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn compact_of_compact_is_idempotent() {
        let mut h = History::new();
        for i in 0..10 {
            h.record_add(&p(&format!("x{i}"), i as f64));
        }
        h.record_select("x3");
        h.record_discard("x4");
        let c1 = h.compact();
        let c2 = c1.compact();
        assert_eq!(c1, c2);
    }

    #[test]
    fn replay_skips_unknown_selections() {
        let mut h = History::new();
        h.record_select("ghost");
        let mut s = FarthestPointSampler::new(FpsConfig { cap: 0 }, ExactNn::new());
        let selected = h.replay(&mut s);
        assert!(selected.is_empty());
    }
}
