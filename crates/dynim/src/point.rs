//! High-dimensional points.

/// An identified point in the encoding space.
#[derive(Debug, Clone, PartialEq)]
pub struct HdPoint {
    /// Application-level identifier (patch id, frame id, …).
    pub id: String,
    /// Coordinates in the encoding space (9-D for patches, 3-D for frames).
    pub coords: Vec<f64>,
}

impl HdPoint {
    /// Builds a point.
    pub fn new(id: impl Into<String>, coords: Vec<f64>) -> HdPoint {
        HdPoint {
            id: id.into(),
            coords,
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Squared L2 distance to another point.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch (debug builds).
    pub fn dist_sq(&self, other: &[f64]) -> f64 {
        debug_assert_eq!(self.coords.len(), other.len());
        self.coords
            .iter()
            .zip(other)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum()
    }

    /// L2 distance to another point.
    pub fn dist(&self, other: &[f64]) -> f64 {
        self.dist_sq(other).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let p = HdPoint::new("a", vec![0.0, 3.0]);
        assert_eq!(p.dist_sq(&[4.0, 0.0]), 25.0);
        assert_eq!(p.dist(&[4.0, 0.0]), 5.0);
        assert_eq!(p.dist(&[0.0, 3.0]), 0.0);
        assert_eq!(p.dim(), 2);
    }
}
