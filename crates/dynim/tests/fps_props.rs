//! The incremental FPS rank cache is *exactly* the naive recomputation.
//!
//! `FarthestPointSampler` never recomputes a candidate's min-distance to
//! the selected set from scratch once it is cached: new picks are folded
//! in incrementally (`min(old, d_new)`), stale entries are filled lazily,
//! and a stale-counter short-circuits warm scans. This file pins the claim
//! that none of that machinery is observable: against a deliberately naive
//! reference that recomputes every rank against every selected point on
//! every pick, the sampler must produce the same selections in the same
//! order with the same cached ranks — across adds, duplicate-id replaces,
//! `discard`, `take`, cap eviction, and interleavings thereof.

use proptest::prelude::*;

use dynim::{ExactNn, FarthestPointSampler, FpsConfig, HdPoint, Sampler};

/// Reference implementation: same queue mechanics (swap_remove order, cap
/// eviction), but every rank is recomputed in full at every use.
struct NaiveFps {
    cap: usize,
    queue: Vec<HdPoint>,
    selected: Vec<HdPoint>,
    evicted: u64,
}

impl NaiveFps {
    fn new(cap: usize) -> NaiveFps {
        NaiveFps {
            cap,
            queue: Vec::new(),
            selected: Vec::new(),
            evicted: 0,
        }
    }

    fn rank(&self, p: &HdPoint) -> Option<f64> {
        if self.selected.is_empty() {
            return None;
        }
        Some(
            self.selected
                .iter()
                .map(|s| p.dist_sq(&s.coords))
                .fold(f64::INFINITY, f64::min),
        )
    }

    fn add(&mut self, point: HdPoint) {
        if let Some(i) = self.queue.iter().position(|q| q.id == point.id) {
            self.queue[i] = point;
            return;
        }
        if self.cap > 0 && self.queue.len() >= self.cap {
            self.queue.swap_remove(0);
            self.evicted += 1;
        }
        self.queue.push(point);
    }

    fn select(&mut self, k: usize) -> Vec<HdPoint> {
        let mut out = Vec::new();
        for _ in 0..k {
            if self.queue.is_empty() {
                break;
            }
            // Argmax, earliest entry wins ties — O(N·S) on purpose.
            let (mut best, mut best_r) = (0usize, f64::NEG_INFINITY);
            for (i, q) in self.queue.iter().enumerate() {
                let r = self.rank(q).unwrap_or(f64::INFINITY);
                if r > best_r {
                    best_r = r;
                    best = i;
                }
            }
            let p = self.queue.swap_remove(best);
            self.selected.push(p.clone());
            out.push(p);
        }
        out
    }

    fn discard(&mut self, id: &str) -> bool {
        match self.queue.iter().position(|q| q.id == id) {
            Some(i) => {
                self.queue.swap_remove(i);
                true
            }
            None => false,
        }
    }

    fn take(&mut self, id: &str) -> Option<HdPoint> {
        let i = self.queue.iter().position(|q| q.id == id)?;
        let p = self.queue.swap_remove(i);
        self.selected.push(p.clone());
        Some(p)
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Add (or re-add, replacing coords) the id `slot` from a small pool.
    Add {
        slot: u8,
        x: i16,
        y: i16,
    },
    Select {
        k: u8,
    },
    Discard {
        slot: u8,
    },
    Take {
        slot: u8,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..40, -50i16..50, -50i16..50).prop_map(|(slot, x, y)| Op::Add { slot, x, y }),
        (0u8..6).prop_map(|k| Op::Select { k }),
        (0u8..40).prop_map(|slot| Op::Discard { slot }),
        (0u8..40).prop_map(|slot| Op::Take { slot }),
    ]
}

fn point(slot: u8, x: i16, y: i16) -> HdPoint {
    HdPoint::new(format!("p{slot}"), vec![x as f64, y as f64])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Same op stream in, same observable behaviour out — selections (ids,
    /// order, coords), queue sizes, eviction counts, and, once the lazy
    /// entries are flushed, the cached ranks themselves.
    #[test]
    fn incremental_cache_equals_naive_recomputation(
        ops in prop::collection::vec(arb_op(), 1..100),
        cap in prop_oneof![Just(0usize), Just(8usize)],
    ) {
        let mut fast = FarthestPointSampler::new(FpsConfig { cap }, ExactNn::new());
        let mut naive = NaiveFps::new(cap);

        for op in &ops {
            match *op {
                Op::Add { slot, x, y } => {
                    fast.add(point(slot, x, y));
                    naive.add(point(slot, x, y));
                }
                Op::Select { k } => {
                    let a = fast.select(k as usize);
                    let b = naive.select(k as usize);
                    let ids_a: Vec<&str> = a.iter().map(|p| p.id.as_str()).collect();
                    let ids_b: Vec<&str> = b.iter().map(|p| p.id.as_str()).collect();
                    prop_assert_eq!(ids_a, ids_b, "selection diverged");
                    for (pa, pb) in a.iter().zip(&b) {
                        prop_assert_eq!(&pa.coords, &pb.coords);
                    }
                }
                Op::Discard { slot } => {
                    let id = format!("p{slot}");
                    prop_assert_eq!(fast.discard(&id), naive.discard(&id));
                }
                Op::Take { slot } => {
                    let id = format!("p{slot}");
                    let a = fast.take(&id);
                    let b = naive.take(&id);
                    prop_assert_eq!(a.map(|p| p.id), b.map(|p| p.id));
                }
            }
            prop_assert_eq!(fast.candidates(), naive.queue.len());
            prop_assert_eq!(fast.evicted(), naive.evicted);
            prop_assert_eq!(fast.selected_count(), naive.selected.len());
        }

        // Selection histories match in full.
        let sel_fast: Vec<&str> = fast.selected_ids().iter().map(String::as_str).collect();
        let sel_naive: Vec<&str> = naive.selected.iter().map(|p| p.id.as_str()).collect();
        prop_assert_eq!(sel_fast, sel_naive);

        // Flush lazy entries, then every cached rank must equal the naive
        // full recomputation — exactly, not approximately: the incremental
        // fold is min() over the identical set of distances. Queue order
        // itself must agree too (both sides applied the same swap_remove
        // sequence).
        fast.update_ranks();
        let ranks = fast.cached_ranks();
        prop_assert_eq!(ranks.len(), naive.queue.len());
        for ((id, rank), q) in ranks.iter().zip(&naive.queue) {
            prop_assert_eq!(*id, q.id.as_str(), "queue order diverged");
            prop_assert_eq!(*rank, naive.rank(q), "rank diverged for {}", id);
        }
    }
}
