//! Backmapping: CG system → all-atom system.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aa::AaSystem;
use cg::engine::{ForceField, MdSystem, PairTable};
use cg::system::CgSystem;

/// Backmapping parameters.
#[derive(Debug, Clone, Copy)]
pub struct BackmapConfig {
    /// Atoms reconstructed per CG bead (the "backward" template size).
    pub atoms_per_bead: usize,
    /// Template radius around each bead position (nm).
    pub template_radius: f64,
    /// Minimization steps per restraint cycle.
    pub steps_per_cycle: usize,
    /// Restraint multipliers per cycle, strongest first (the paper's
    /// "cycles of energy minimization and position-restrained MD").
    pub restraint_cycles: [f64; 4],
    /// RNG seed for template orientation jitter.
    pub seed: u64,
}

impl Default for BackmapConfig {
    fn default() -> Self {
        BackmapConfig {
            atoms_per_bead: 4,
            template_radius: 0.12,
            steps_per_cycle: 40,
            restraint_cycles: [10.0, 5.0, 2.0, 1.0],
            seed: 36, // CHARMM36
        }
    }
}

/// What the backmapping run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct BackmapReport {
    /// Atom count of the AA system.
    pub n_atoms: usize,
    /// Protein residues (one per CG protein bead).
    pub n_protein_residues: usize,
    /// Energy after each restraint cycle, in cycle order.
    pub cycle_energies: Vec<f64>,
}

/// Expands a CG configuration into an AA system and refines it through
/// restrained-minimization cycles.
pub fn backmap(cgs: &CgSystem, cfg: &BackmapConfig) -> (AaSystem, BackmapReport) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let apb = cfg.atoms_per_bead.max(1);
    let n_beads = cgs.sys.len();

    let mut pos: Vec<[f64; 3]> = Vec::with_capacity(n_beads * apb);
    let mut typ: Vec<u16> = Vec::with_capacity(n_beads * apb);
    let mut bonds: Vec<(u32, u32, f64, f64)> = Vec::new();
    let mut residues: Vec<Vec<usize>> = Vec::with_capacity(n_beads);

    // Tetrahedral template directions (unit vectors).
    let tetra: [[f64; 3]; 4] = [
        [1.0, 1.0, 1.0],
        [1.0, -1.0, -1.0],
        [-1.0, 1.0, -1.0],
        [-1.0, -1.0, 1.0],
    ];
    let inv_sqrt3 = 1.0 / 3f64.sqrt();

    for b in 0..n_beads {
        let center = cgs.sys.pos[b];
        let base = pos.len();
        let mut atoms = Vec::with_capacity(apb);
        for a in 0..apb {
            let dir = tetra[a % 4];
            let mut jitter = || rng.gen_range(-0.15..0.15) * cfg.template_radius;
            let mut p = [0.0; 3];
            let mut jit = [jitter(), jitter(), jitter()];
            if a == 0 {
                // The first atom is the residue's backbone anchor: keep it
                // at the bead center so the CG geometry is preserved.
                jit = [0.0; 3];
            }
            for k in 0..3 {
                p[k] = center[k]
                    + if a == 0 {
                        0.0
                    } else {
                        dir[k] * inv_sqrt3 * cfg.template_radius
                    }
                    + jit[k];
            }
            let idx = pos.len();
            pos.push(p);
            typ.push(cgs.sys.typ[b]);
            atoms.push(idx);
            if a > 0 {
                // Intra-residue bond to the anchor.
                bonds.push((base as u32, idx as u32, 100.0, cfg.template_radius));
            }
        }
        residues.push(atoms);
    }

    // Chain bonds between consecutive protein residues' anchors.
    let mut backbone = Vec::with_capacity(cgs.protein.len());
    for (pi, &bead) in cgs.protein.iter().enumerate() {
        let anchor = residues[bead][0];
        backbone.push(anchor);
        if pi > 0 {
            let prev_anchor = residues[cgs.protein[pi - 1]][0];
            bonds.push((prev_anchor as u32, anchor as u32, 80.0, 0.4));
        }
    }

    // Finer force field: smaller sigma, shallower wells, shorter cutoff.
    let n_types = cgs.ff.pairs.n_types();
    let pairs = PairTable::uniform(n_types, 0.15, 0.02);
    let ff = ForceField {
        pairs,
        cutoff: 0.6,
        bonds,
    };
    let sys = MdSystem::new(pos, typ, cgs.sys.box_l);
    let mut aas = AaSystem::from_parts(sys, ff, residues, backbone, cfg.seed ^ 0xaa);

    let mut cycle_energies = Vec::with_capacity(cfg.restraint_cycles.len());
    for &restraint in &cfg.restraint_cycles {
        let (_, e) = aas.minimize_restrained(cfg.steps_per_cycle, restraint);
        cycle_energies.push(e);
    }
    let report = BackmapReport {
        n_atoms: aas.n_atoms(),
        n_protein_residues: backbone_len(&aas),
        cycle_energies,
    };
    (aas, report)
}

fn backbone_len(aas: &AaSystem) -> usize {
    aas.backbone.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg::system::{build_membrane, MembraneConfig};

    fn source() -> CgSystem {
        let mut m = build_membrane(&MembraneConfig::small());
        m.relax(30);
        m.run(50);
        m
    }

    #[test]
    fn atom_counts_scale_with_beads() {
        let cgs = source();
        let cfg = BackmapConfig::default();
        let (aas, report) = backmap(&cgs, &cfg);
        assert_eq!(report.n_atoms, cgs.sys.len() * 4);
        assert_eq!(aas.n_residues(), cgs.sys.len());
        assert_eq!(report.n_protein_residues, cgs.protein.len());
    }

    #[test]
    fn backbone_geometry_follows_cg_protein() {
        let cgs = source();
        let (aas, _) = backmap(&cgs, &BackmapConfig::default());
        let bb = aas.backbone_positions();
        for (i, &bead) in cgs.protein.iter().enumerate() {
            let cg_pos = cgs.sys.pos[bead];
            let d: f64 = (0..3)
                .map(|k| (bb[i][k] - cg_pos[k]).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(d < 0.5, "residue {i} drifted {d} nm from its bead");
        }
    }

    #[test]
    fn minimization_cycles_do_not_increase_energy() {
        let cgs = source();
        let (_, report) = backmap(&cgs, &BackmapConfig::default());
        for pair in report.cycle_energies.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-6,
                "cycle energies rose: {:?}",
                report.cycle_energies
            );
        }
    }

    #[test]
    fn atoms_per_bead_is_configurable() {
        let cgs = source();
        let cfg = BackmapConfig {
            atoms_per_bead: 3,
            ..BackmapConfig::default()
        };
        let (aas, _) = backmap(&cgs, &cfg);
        assert_eq!(aas.n_atoms(), cgs.sys.len() * 3);
    }

    #[test]
    fn backmap_is_deterministic() {
        let cgs = source();
        let (a, _) = backmap(&cgs, &BackmapConfig::default());
        let (b, _) = backmap(&cgs, &BackmapConfig::default());
        assert_eq!(a.sys.pos, b.sys.pos);
    }

    #[test]
    fn aa_dynamics_run_after_backmap() {
        let cgs = source();
        let (mut aas, _) = backmap(&cgs, &BackmapConfig::default());
        aas.run(20);
        assert!(aas.time() > 0.0);
        // Secondary-structure analysis consumes the result.
        let ss = aa::assign_ss(&aas.backbone_positions());
        assert_eq!(ss.len(), cgs.protein.len());
    }
}
