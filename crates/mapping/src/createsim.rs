//! createsim: continuum patch → equilibrated CG membrane system.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cg::engine::{ForceField, Integrator, MdSystem, PairTable};
use cg::system::CgSystem;
use continuum::Patch;

/// createsim parameters.
#[derive(Debug, Clone, Copy)]
pub struct CreatesimConfig {
    /// CG box side (nm); matches the patch's physical size.
    pub side: f64,
    /// Bilayer thickness (nm).
    pub thickness: f64,
    /// Lipids per leaflet per unit of mean patch density (the insane-like
    /// area-per-lipid knob).
    pub lipids_per_density: f64,
    /// Protein beads for a RAS particle; a RAS-RAF complex gets ~1.7×.
    pub ras_beads: usize,
    /// Relaxation (equilibration) minimization steps.
    pub relax_steps: usize,
    /// RNG seed for placement sampling.
    pub seed: u64,
}

impl Default for CreatesimConfig {
    fn default() -> Self {
        CreatesimConfig {
            side: 30.0,
            thickness: 4.0,
            lipids_per_density: 40.0,
            ras_beads: 6,
            relax_steps: 60,
            seed: 2021,
        }
    }
}

/// What createsim produced (the job's log record).
#[derive(Debug, Clone, PartialEq)]
pub struct CreatesimReport {
    /// Lipids placed per species (both leaflets).
    pub lipids_per_species: Vec<usize>,
    /// Protein bead count.
    pub protein_beads: usize,
    /// Energy before relaxation.
    pub energy_before: f64,
    /// Energy after relaxation.
    pub energy_after: f64,
}

/// Builds and relaxes a CG system from a continuum patch.
///
/// The number of lipids of each species is proportional to the species'
/// mean density over the patch window, and bead positions are drawn from
/// the density field itself (importance sampling over cells), so the CG
/// system inherits the patch's lipid fingerprint.
pub fn createsim(patch: &Patch, cfg: &CreatesimConfig) -> (CgSystem, CreatesimReport) {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ hash_id(&patch.id));
    let n_species = patch.windows.len();
    let box_l = [cfg.side, cfg.side, cfg.thickness * 3.0];
    let z_mid = box_l[2] / 2.0;

    let mut pos: Vec<[f64; 3]> = Vec::new();
    let mut typ: Vec<u16> = Vec::new();
    let mut bonds: Vec<(u32, u32, f64, f64)> = Vec::new();
    let mut lipids_per_species = vec![0usize; n_species];

    for (s, window) in patch.windows.iter().enumerate() {
        let res = window.shape()[0];
        let mean = window.data().iter().sum::<f64>() / window.len() as f64;
        let n_lipids = (mean * cfg.lipids_per_density).round().max(0.0) as usize;
        lipids_per_species[s] = n_lipids * 2;
        let total: f64 = window.data().iter().sum();
        for leaflet in 0..2 {
            let (z_head, z_tail) = if leaflet == 0 {
                (z_mid + cfg.thickness / 2.0, z_mid + cfg.thickness / 6.0)
            } else {
                (z_mid - cfg.thickness / 2.0, z_mid - cfg.thickness / 6.0)
            };
            for _ in 0..n_lipids {
                // Importance-sample a window cell by density, then jitter
                // within the cell.
                let mut target = rng.gen_range(0.0..total.max(1e-12));
                let mut cell = 0;
                for (i, &v) in window.data().iter().enumerate() {
                    target -= v;
                    if target <= 0.0 {
                        cell = i;
                        break;
                    }
                }
                let cy = cell / res;
                let cx = cell % res;
                let cell_w = cfg.side / res as f64;
                let x = (cx as f64 + rng.gen_range(0.0..1.0)) * cell_w;
                let y = (cy as f64 + rng.gen_range(0.0..1.0)) * cell_w;
                let head = pos.len() as u32;
                pos.push([x, y, z_head]);
                typ.push(s as u16);
                pos.push([x, y, z_tail]);
                typ.push(n_species as u16);
                bonds.push((head, head + 1, 20.0, cfg.thickness / 3.0));
            }
        }
    }

    // Protein chain at the patch center (box center), spanning the bilayer.
    let n_beads = if patch.kind == 1 {
        cfg.ras_beads + cfg.ras_beads * 7 / 10 // RAS-RAF carries the CRD/RBD extra
    } else {
        cfg.ras_beads
    };
    let mut protein = Vec::with_capacity(n_beads);
    let z0 = z_mid - 0.4 * (n_beads as f64 - 1.0) / 2.0;
    for b in 0..n_beads {
        let idx = pos.len();
        pos.push([cfg.side / 2.0, cfg.side / 2.0, z0 + 0.4 * b as f64]);
        typ.push((n_species + 1) as u16);
        protein.push(idx);
        if b > 0 {
            bonds.push((idx as u32 - 1, idx as u32, 50.0, 0.4));
        }
    }

    // Martini-like force field (same shape as cg::system::build_membrane).
    let n_types = n_species + 2;
    let mut pairs = PairTable::uniform(n_types, 0.47, 0.05);
    let tail = n_species;
    let prot = n_species + 1;
    pairs.set(tail, tail, 0.47, 0.5);
    for s in 0..n_species {
        pairs.set(s, tail, 0.47, 0.1);
        pairs.set(s, prot, 0.47, if s == 0 { 0.4 } else { 0.05 });
    }
    pairs.set(prot, prot, 0.47, 0.2);

    let ff = ForceField {
        pairs,
        cutoff: 1.2,
        bonds,
    };
    let sys = MdSystem::new(pos, typ, box_l);
    let mut cgs = CgSystem::from_parts(
        sys,
        ff,
        n_species,
        protein,
        Integrator {
            dt: 0.01,
            gamma: 1.0,
            kt: 0.3,
        },
        cfg.seed ^ hash_id(&patch.id) ^ 0x5eed,
    );
    let (e0, e1) = cgs.relax(cfg.relax_steps);
    let report = CreatesimReport {
        lipids_per_species,
        protein_beads: n_beads,
        energy_before: e0,
        energy_after: e1,
    };
    (cgs, report)
}

/// FNV-1a of a patch id, for per-patch RNG streams.
fn hash_id(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in id.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum::{extract_patches, ContinuumConfig, ContinuumSim, PatchConfig};

    fn a_patch() -> Patch {
        let mut sim = ContinuumSim::new(ContinuumConfig {
            nx: 64,
            ny: 64,
            h: 1.0,
            inner_species: 2,
            outer_species: 1,
            n_proteins: 2,
            ..ContinuumConfig::laptop()
        });
        sim.run(20);
        let snap = sim.snapshot();
        extract_patches(&snap, &PatchConfig::default()).remove(0)
    }

    fn small_cfg() -> CreatesimConfig {
        CreatesimConfig {
            side: 12.0,
            lipids_per_density: 30.0,
            relax_steps: 40,
            ..CreatesimConfig::default()
        }
    }

    #[test]
    fn builds_system_with_density_proportional_composition() {
        let patch = a_patch();
        let (cgs, report) = createsim(&patch, &small_cfg());
        assert_eq!(report.lipids_per_species.len(), 3);
        assert!(report.lipids_per_species.iter().all(|&n| n > 0));
        // Bead math: 2 beads per lipid + protein beads.
        let lipid_beads: usize = report.lipids_per_species.iter().sum::<usize>() * 2;
        assert_eq!(cgs.sys.len(), lipid_beads + report.protein_beads);
        // Denser species get more lipids (background levels are 0.5, 0.55,
        // 0.6 for species 0..3 in the continuum initializer).
        assert!(report.lipids_per_species[2] >= report.lipids_per_species[0]);
    }

    #[test]
    fn relaxation_reduces_energy() {
        let (_, report) = createsim(&a_patch(), &small_cfg());
        assert!(report.energy_after <= report.energy_before);
    }

    #[test]
    fn ras_raf_patches_get_larger_proteins() {
        let mut patch = a_patch();
        patch.kind = 0;
        let (_, ras) = createsim(&patch, &small_cfg());
        patch.kind = 1;
        let (_, rasraf) = createsim(&patch, &small_cfg());
        assert!(rasraf.protein_beads > ras.protein_beads);
    }

    #[test]
    fn protein_sits_at_box_center() {
        let cfg = small_cfg();
        let (cgs, _) = createsim(&a_patch(), &cfg);
        let mid = cfg.side / 2.0;
        for &i in &cgs.protein {
            let p = cgs.sys.pos[i];
            assert!((p[0] - mid).abs() < 2.0 && (p[1] - mid).abs() < 2.0);
        }
    }

    #[test]
    fn deterministic_per_patch_id() {
        let patch = a_patch();
        let (a, _) = createsim(&patch, &small_cfg());
        let (b, _) = createsim(&patch, &small_cfg());
        assert_eq!(a.sys.pos, b.sys.pos);

        let mut other = patch.clone();
        other.id.push_str("-2");
        let (c, _) = createsim(&other, &small_cfg());
        assert_ne!(a.sys.pos, c.sys.pos, "different ids draw different layouts");
    }

    #[test]
    fn runs_dynamics_after_construction() {
        let (mut cgs, _) = createsim(&a_patch(), &small_cfg());
        cgs.run(50);
        assert!(cgs.time() > 0.0);
    }
}
