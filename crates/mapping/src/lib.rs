//! Scale-coupling converters: continuum → CG (createsim) and CG → AA
//! (backmapping).
//!
//! - [`createsim`] mirrors §4.1(2): "The createsim module transforms a
//!   patch from continuum representation into a particle-based one. The
//!   insane tool is used to create a CG representation of the membrane and
//!   proteins. Once constructed, GROMACS is used to relax the membrane and
//!   proteins into a more natural, equilibrated, state." Here, lipid beads
//!   are sampled from the patch's per-species density windows, the protein
//!   chain is planted at the patch center, and a steepest-descent
//!   relaxation stands in for the GROMACS equilibration.
//!
//! - [`backmap`] mirrors §4.1(4): "a backmapping scheme that translates a
//!   CG representation … into AA … performs cycles of energy minimization
//!   and position-restrained MD … and finally converts the data format."
//!   Each CG bead expands into a residue of atoms on a tetrahedral
//!   template, followed by restrained minimization cycles with decreasing
//!   restraint strength.

mod backmapping;
mod createsim;

pub use backmapping::{backmap, BackmapConfig, BackmapReport};
pub use createsim::{createsim, CreatesimConfig, CreatesimReport};
