//! The networked-store acceptance contract: a campaign run through the
//! datastore tier's loopback transport (every store op encoded as a wire
//! frame, decoded, and handled by a `storeserver` engine) must trace
//! **byte-identical** to the in-process kvstore path. The storage
//! backend is the paper's "single configuration switch" — flipping it
//! must never change a scientific result, only where the bytes live.

use campaign::{Campaign, CampaignConfig, DriveMode, StoreBackend};
use trace::Tracer;

fn jsonl(backend: StoreBackend, serial: bool, seed: u64) -> String {
    let cfg = CampaignConfig {
        seed,
        serial_loop: serial,
        store_backend: backend,
        ..CampaignConfig::default()
    };
    let mut c = Campaign::new(cfg);
    c.set_tracer(Tracer::enabled());
    c.execute_run(100, 4);
    c.execute_run(100, 2); // restart leg included in the contract
    c.tracer().to_jsonl()
}

#[test]
fn loopback_backend_traces_byte_identical_to_in_process() {
    let in_process = jsonl(StoreBackend::InProcess, false, 424242);
    assert!(!in_process.is_empty(), "campaign produced no trace");
    let loopback = jsonl(StoreBackend::Loopback, false, 424242);
    assert_eq!(
        in_process, loopback,
        "the store backend switch changed the trace"
    );
}

#[test]
fn loopback_backend_is_deterministic_across_loop_flavors() {
    // The full matrix cell the parallel-loop tests leave open: networked
    // backend × forked event loop still equals the serial body.
    let parallel = jsonl(StoreBackend::Loopback, false, 99);
    let serial = jsonl(StoreBackend::Loopback, true, 99);
    assert_eq!(parallel, serial, "loop flavor leaked through the wire");
}

#[test]
fn ticked_mode_also_agrees_across_backends() {
    let run = |backend| {
        let cfg = CampaignConfig {
            seed: 7,
            mode: DriveMode::Ticked,
            store_backend: backend,
            ..CampaignConfig::default()
        };
        let mut c = Campaign::new(cfg);
        c.set_tracer(Tracer::enabled());
        c.execute_run(60, 3);
        c.tracer().to_jsonl()
    };
    assert_eq!(run(StoreBackend::InProcess), run(StoreBackend::Loopback));
}
