//! Determinism regression: the whole coordination stack is a pure
//! function of (config, seed). Two campaigns driven with the same seed
//! must produce bit-identical event traces — any divergence means an
//! unordered container, an unseeded RNG, or a wall-clock read sneaked
//! back onto a decision path (exactly what `mummi-lint` guards against
//! statically; this test is the dynamic witness).

use campaign::{Campaign, CampaignConfig, RunReport};

/// A compact, fully ordered fingerprint of everything a run observed.
fn trace(c: &mut Campaign, nodes: u32, hours: u64) -> (Vec<String>, RunReport) {
    let r = c.execute_run(nodes, hours);
    let mut lines = Vec::new();
    for p in r.cg_timeline.points() {
        lines.push(format!(
            "cg {} {} {}",
            p.at.as_secs_f64().to_bits(),
            p.running,
            p.pending
        ));
    }
    for p in r.aa_timeline.points() {
        lines.push(format!(
            "aa {} {} {}",
            p.at.as_secs_f64().to_bits(),
            p.running,
            p.pending
        ));
    }
    for v in c.cg_lengths() {
        lines.push(format!("cg-len {}", v.to_bits()));
    }
    for v in c.aa_lengths() {
        lines.push(format!("aa-len {}", v.to_bits()));
    }
    let (a, b, d) = c.data_counts();
    lines.push(format!("data {a} {b} {d}"));
    (lines, r)
}

#[test]
fn same_seed_campaigns_produce_identical_event_traces() {
    let cfg = CampaignConfig {
        seed: 424242,
        ..CampaignConfig::default()
    };
    let run = |cfg: CampaignConfig| {
        let mut c = Campaign::new(cfg);
        trace(&mut c, 100, 4)
    };
    let (trace_a, report_a) = run(cfg.clone());
    let (trace_b, report_b) = run(cfg);

    assert_eq!(trace_a.len(), trace_b.len(), "trace lengths diverge");
    for (i, (a, b)) in trace_a.iter().zip(&trace_b).enumerate() {
        assert_eq!(a, b, "trace diverges at entry {i}");
    }
    assert_eq!(report_a.placed, report_b.placed);
    assert_eq!(report_a.sims_completed, report_b.sims_completed);
    assert_eq!(
        report_a.gpu_mean_occupancy.to_bits(),
        report_b.gpu_mean_occupancy.to_bits(),
        "occupancy must match to the last bit"
    );
    assert_eq!(report_a.load_time, report_b.load_time);
    assert_eq!(report_a.peak_gpu_jobs, report_b.peak_gpu_jobs);
    assert_eq!(report_a.nodes_failed, report_b.nodes_failed);
    assert_eq!(report_a.jobs_crashed, report_b.jobs_crashed);
}

#[test]
fn different_seeds_actually_diverge() {
    // Guard against the test above passing vacuously (e.g. a campaign
    // that ignores its seed entirely).
    let run = |seed: u64| {
        let cfg = CampaignConfig {
            seed,
            ..CampaignConfig::default()
        };
        let mut c = Campaign::new(cfg);
        trace(&mut c, 100, 4).0
    };
    assert_ne!(run(1), run(2), "distinct seeds must change the trace");
}

mod traced {
    //! The same determinism contract, witnessed through `mummi-trace`:
    //! a same-seed campaign re-run must serialize to a byte-identical
    //! JSONL trace, and the figure series derived from that trace must
    //! equal the live collectors integer for integer.

    use campaign::{Campaign, CampaignConfig};
    use trace::{derive, Tracer};

    fn traced_campaign(seed: u64) -> Campaign {
        let cfg = CampaignConfig {
            seed,
            ..CampaignConfig::default()
        };
        let mut c = Campaign::new(cfg);
        c.set_tracer(Tracer::enabled());
        c
    }

    #[test]
    fn same_seed_traces_are_byte_identical() {
        let run = |seed: u64| {
            let mut c = traced_campaign(seed);
            c.execute_run(100, 4);
            c.execute_run(100, 2); // restart leg included in the contract
            c.tracer().to_jsonl()
        };
        let a = run(424242);
        assert!(!a.is_empty(), "traced campaign produced no output");
        assert_eq!(
            a,
            run(424242),
            "same-seed campaigns must serialize byte-identical traces"
        );
        assert_ne!(a, run(7), "distinct seeds must change the trace");
    }

    #[test]
    fn figure5_occupancy_rebuilds_exactly_from_trace() {
        let mut c = traced_campaign(11);
        c.execute_run(100, 4);
        let events = c.tracer().events();
        let derived = derive::occupancy_profiler(&events);
        assert!(!derived.samples().is_empty());
        assert_eq!(
            derived.samples(),
            c.profiler().samples(),
            "trace-derived occupancy must equal the live profiler"
        );
        assert_eq!(derived.gpu_series(), c.profiler().gpu_series());

        // The series must survive the JSONL round trip too: what a
        // `--trace` file holds is enough to regenerate Figure 5.
        let reparsed = derive::parse_jsonl(&c.tracer().to_jsonl());
        let from_file = derive::occupancy_profiler(&reparsed);
        assert_eq!(from_file.samples(), c.profiler().samples());
    }

    #[test]
    fn figure6_timelines_rebuild_exactly_from_trace() {
        let mut c = traced_campaign(23);
        let report = c.execute_run(100, 4);
        let events = derive::parse_jsonl(&c.tracer().to_jsonl());
        let cg = derive::timeline(&events, "cg");
        let aa = derive::timeline(&events, "aa");
        assert!(!cg.points().is_empty());
        assert_eq!(
            cg.points(),
            report.cg_timeline.points(),
            "trace-derived CG timeline must equal the run report"
        );
        assert_eq!(aa.points(), report.aa_timeline.points());
    }

    #[test]
    fn placement_series_matches_the_placed_counter() {
        let mut c = traced_campaign(31);
        c.execute_run(100, 4);
        let events = c.tracer().events();
        let series = derive::jobs_per_minute(&events);
        let placed_from_series: u64 = series.iter().map(|&(_, n)| n).sum();
        assert!(placed_from_series > 0);
        let snap = c.tracer().metrics_snapshot();
        let placed_counter = snap
            .counters
            .iter()
            .find(|(name, _)| name == "sched.placed")
            .map(|&(_, v)| v);
        assert_eq!(
            Some(placed_from_series),
            placed_counter,
            "every job.placed event must be mirrored by the counter"
        );
    }

    #[test]
    fn restart_chain_occupancy_aggregates_across_runs() {
        let mut c = traced_campaign(47);
        c.execute_run(100, 2);
        c.execute_run(100, 2);
        let derived = derive::occupancy_profiler(&c.tracer().events());
        assert_eq!(
            derived.samples(),
            c.profiler().samples(),
            "merged Figure 5 profile must match across a restart chain"
        );
    }
}

#[test]
fn restart_chains_are_deterministic_too() {
    // The paper's campaign survived across many allocations via
    // checkpoints; a restart chain must replay identically as well.
    let run = |seed: u64| {
        let cfg = CampaignConfig {
            seed,
            ..CampaignConfig::default()
        };
        let mut c = Campaign::new(cfg);
        let first = trace(&mut c, 100, 2).0;
        let second = trace(&mut c, 100, 2).0;
        (first, second)
    };
    let (a1, a2) = run(7);
    let (b1, b2) = run(7);
    assert_eq!(a1, b1, "first allocation diverged");
    assert_eq!(a2, b2, "second allocation diverged");
}
