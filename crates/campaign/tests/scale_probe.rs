//! Scale-ladder assertions and the manual restart probe. Reports
//! **virtual** time only — the determinism contract bans wall-clock reads
//! in sim-path crates, and a probe that prints host timings invites
//! comparing numbers that are meaningless across machines.
//!
//! The asserted tests are `#[ignore]`d by default: they run minutes-scale
//! campaigns and belong to CI's dedicated scale job (release mode), not
//! tier-1. Run them with:
//!
//! ```text
//! cargo test --release -p campaign --test scale_probe -- --ignored
//! ```

use campaign::{Campaign, CampaignConfig};

/// One eighth of Summit: 576 nodes × 6 GPUs.
const EIGHTH_SUMMIT_NODES: u32 = 576;

/// Mean of the occupancy samples after the fill phase. The ramp is
/// bounded by CPU headroom for setup jobs (~700 concurrent 24-core
/// setups at this rung once the sims and the continuum job take their
/// cores), which prepares the full GPU complement within ~8 virtual
/// hours; the final third of a 16-hour run is steady state.
fn steady_state_mean(series: &[f64]) -> f64 {
    let steady = &series[series.len() * 2 / 3..];
    assert!(!steady.is_empty(), "no steady-state occupancy samples");
    steady.iter().sum::<f64>() / steady.len() as f64
}

/// Table 1's headline at the 1/8-Summit rung: ≥98% of the GPUs busy in
/// steady state, with every job accounted for.
#[test]
#[ignore] // minutes-scale; CI runs it in the dedicated scale job
fn one_eighth_summit_sustains_98_percent_gpu_occupancy() {
    let mut c = Campaign::new(CampaignConfig::scale_rung(EIGHTH_SUMMIT_NODES));
    let r = c.execute_run(EIGHTH_SUMMIT_NODES, 16);

    assert!(
        r.load_time.is_some(),
        "the CG partition never reached 90% of its GPU target"
    );
    let series = c.profiler().gpu_series();
    let steady = steady_state_mean(&series);
    eprintln!(
        "1/8 Summit: load={:.2}h steady-state GPU occupancy {steady:.2}% \
         (samples={}), peak concurrent GPU jobs {}",
        r.load_time.map(|t| t.as_hours_f64()).unwrap_or(-1.0),
        series.len(),
        r.peak_gpu_jobs
    );
    assert!(
        steady >= 98.0,
        "steady-state GPU occupancy {steady:.2}% < 98% (Table 1 headline)"
    );

    // Ledger conservation: every submission must be accounted for as
    // completed, failed, canceled, or live at the end of the run.
    let violations = r.ledger.check();
    assert!(
        violations.is_empty(),
        "job accounting does not reconcile: {violations:?}"
    );
}

#[test]
#[ignore]
fn probe_restart() {
    let mut c = Campaign::new(CampaignConfig::default());
    for i in 0..3 {
        let r = c.execute_run(1000, 24);
        eprintln!(
            "run{} virtual_hours={} placed={} completed={} occ={:.1}% load={:?} peak={}",
            i,
            r.hours,
            r.placed,
            r.sims_completed,
            r.gpu_mean_occupancy,
            r.load_time.map(|t| t.as_hours_f64()),
            r.peak_gpu_jobs
        );
    }
    let f98 = c.profiler().fraction_gpu_at_least(98.0);
    eprintln!(
        "frac gpu>=98%: {:.3}; lens cg={} aa={}",
        f98,
        c.cg_lengths().len(),
        c.aa_lengths().len()
    );
}
