//! Manual probe for campaign restart behaviour. Reports **virtual** time
//! only — the determinism contract bans wall-clock reads in sim-path
//! crates, and a probe that prints host timings invites comparing
//! numbers that are meaningless across machines.

use campaign::{Campaign, CampaignConfig};

#[test]
#[ignore]
fn probe_restart() {
    let mut c = Campaign::new(CampaignConfig::default());
    for i in 0..3 {
        let r = c.execute_run(1000, 24);
        eprintln!(
            "run{} virtual_hours={} placed={} completed={} occ={:.1}% load={:?} peak={}",
            i,
            r.hours,
            r.placed,
            r.sims_completed,
            r.gpu_mean_occupancy,
            r.load_time.map(|t| t.as_hours_f64()),
            r.peak_gpu_jobs
        );
    }
    let f98 = c.profiler().fraction_gpu_at_least(98.0);
    eprintln!(
        "frac gpu>=98%: {:.3}; lens cg={} aa={}",
        f98,
        c.cg_lengths().len(),
        c.aa_lengths().len()
    );
}
