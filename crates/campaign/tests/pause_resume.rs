//! Cooperative pause → checkpoint → resume at campaign level: the
//! embeddable-run contract the farm service builds on.
//!
//! Three contracts:
//!
//! 1. **Byte-identity of the idle control path**: running with an enabled
//!    but untouched [`RunControl`] must serialize the exact same JSONL
//!    trace as the batch path — the control hooks may not perturb the
//!    replay.
//! 2. **Pause-point rule**: pauses land on whole virtual hours, the
//!    paused leg closes like an end-of-allocation boundary (partial
//!    credit, requeue, reconciled ledger), and executed-hours accounting
//!    is exact.
//! 3. **Resume equivalence**: pause-then-resume is the restart chain with
//!    a shorter first leg, so the stitched outcome must match the
//!    uninterrupted run within the same declared tolerances the
//!    crash–restore test uses (the restored WM replays the same seeds
//!    here, but cross-leg WM reseeding makes the series statistically,
//!    not bitwise, equivalent).

use campaign::{Campaign, CampaignConfig, RunControl};
use mummi_core::WmCheckpoint;
use resources::{MachineSpec, MatchPolicy};
use sched::Coupling;
use simcore::SimTime;
use trace::Tracer;

/// The chaos suite's small-but-busy configuration: short CG targets so
/// sims turn over inside a 12 h leg, attrition and job failures off so
/// the only divergence source is the pause itself.
fn cfg() -> CampaignConfig {
    CampaignConfig {
        patches_per_snapshot: 6,
        frames_per_sim_per_min: 0.05,
        cg_target_us: 0.2,
        aa_target_ns: (5.0, 8.0),
        queue_cap: 500,
        policy: MatchPolicy::FirstMatch,
        coupling: Coupling::Asynchronous,
        submit_rate_per_min: 600,
        job_timeout_grace: 1.5,
        node_failures_per_day: 0.0,
        job_failure_prob: 0.0,
        seed: 20201214,
        ..CampaignConfig::default()
    }
}

#[test]
fn idle_control_handle_is_byte_identical_to_batch() {
    let batch = {
        let mut c = Campaign::new(cfg());
        c.set_tracer(Tracer::enabled());
        c.execute_run(20, 6);
        c.tracer().to_jsonl()
    };
    let controlled = {
        let mut c = Campaign::new(cfg());
        c.set_tracer(Tracer::enabled());
        let control = RunControl::new();
        c.execute_run_controlled_on(MachineSpec::summit_allocation(20), 6, &control);
        c.tracer().to_jsonl()
    };
    assert!(!batch.is_empty());
    assert_eq!(
        batch, controlled,
        "an idle control handle must not change a byte of the trace"
    );
}

#[test]
fn scheduled_pause_stops_on_the_hour_with_exact_accounting() {
    let mut c = Campaign::new(cfg());
    let control = RunControl::new();
    // Scheduled mid-hour: the pause-point rule rounds up to hour 6.
    control.schedule_pause_at(SimTime::from_mins(5 * 60 + 30));
    let r = c.execute_run_controlled_on(MachineSpec::summit_allocation(20), 12, &control);
    assert_eq!(r.paused_at, Some(SimTime::from_hours(6)));
    assert_eq!(r.hours, 6, "executed hours reflect the pause, not the ask");
    assert_eq!(r.node_hours, 120);
    assert!(r.placed > 0, "the leg ran before pausing");
    let violations = r.ledger.check();
    assert!(violations.is_empty(), "paused-leg books: {violations:?}");
    assert!(
        c.checkpoint_text().is_some(),
        "a paused leg leaves a checkpoint behind"
    );
}

#[test]
fn pause_then_resume_matches_uninterrupted_run_within_tolerances() {
    let uninterrupted = {
        let mut c = Campaign::new(cfg());
        let r = c.execute_run(20, 12);
        let cg_sum: f64 = c.cg_lengths().iter().sum();
        (r, cg_sum)
    };
    let stitched = {
        let mut c = Campaign::new(cfg());
        let control = RunControl::new();
        control.schedule_pause_at(SimTime::from_hours(6));
        let r1 = c.execute_run_controlled_on(MachineSpec::summit_allocation(20), 12, &control);
        assert_eq!(r1.paused_at, Some(SimTime::from_hours(6)));
        control.clear_pause();
        let r2 = c.execute_run_controlled_on(MachineSpec::summit_allocation(20), 6, &control);
        assert_eq!(r2.paused_at, None);
        assert_eq!(r1.hours + r2.hours, 12, "the two legs cover the ask");
        for (leg, r) in [(1, &r1), (2, &r2)] {
            let v = r.ledger.check();
            assert!(v.is_empty(), "leg {leg} books do not balance: {v:?}");
        }
        let cg_sum: f64 = c.cg_lengths().iter().sum();
        (r1, r2, cg_sum)
    };

    // The declared crash–restore tolerances (see campaign/tests/chaos.rs):
    // the resumed leg reseeds its WM like any restart-chain leg, so the
    // series are statistically equivalent, not bitwise.
    let (base, base_cg) = uninterrupted;
    let (r1, r2, stitched_cg) = stitched;
    let rel = |a: f64, b: f64| (a - b).abs() / a.max(1e-9);
    let stitched_completed = r1.sims_completed + r2.sims_completed;
    assert!(
        rel(base.sims_completed as f64, stitched_completed as f64) < 0.25,
        "sims completed diverged: {} vs {}",
        base.sims_completed,
        stitched_completed
    );
    // Executed-hours-weighted mean occupancy across the two legs.
    let stitched_occ =
        (r1.gpu_mean_occupancy * r1.hours as f64 + r2.gpu_mean_occupancy * r2.hours as f64) / 12.0;
    assert!(
        (base.gpu_mean_occupancy - stitched_occ).abs() < 10.0,
        "mean GPU occupancy diverged: {:.1} vs {:.1}",
        base.gpu_mean_occupancy,
        stitched_occ
    );
    assert!(
        rel(base_cg, stitched_cg) < 0.25,
        "accumulated CG trajectory diverged: {base_cg:.2} vs {stitched_cg:.2}"
    );
}

#[test]
fn resume_at_a_different_scale_rung_continues_the_campaign() {
    // The paper's "seamless restart across scales", as an online pause →
    // rescale → resume: pause a 20-node leg at hour 4, resume the
    // remainder on 32 nodes.
    let mut c = Campaign::new(cfg());
    let control = RunControl::new();
    control.schedule_pause_at(SimTime::from_hours(4));
    let r1 = c.execute_run_controlled_on(MachineSpec::summit_allocation(20), 12, &control);
    assert_eq!(r1.paused_at, Some(SimTime::from_hours(4)));
    let done_before: f64 = c.cg_lengths().iter().sum();
    control.clear_pause();
    let r2 = c.execute_run_controlled_on(MachineSpec::summit_allocation(32), 8, &control);
    assert_eq!(r2.paused_at, None);
    assert_eq!(r2.nodes, 32);
    assert!(
        r2.peak_gpu_jobs > r1.peak_gpu_jobs,
        "the larger rung runs wider: {} vs {}",
        r2.peak_gpu_jobs,
        r1.peak_gpu_jobs
    );
    let done_after: f64 = c.cg_lengths().iter().sum();
    assert!(
        done_after > done_before,
        "trajectory keeps accumulating across the rescale: {done_before} -> {done_after}"
    );
    for r in [&r1, &r2] {
        let v = r.ledger.check();
        assert!(v.is_empty(), "books do not balance: {v:?}");
    }
}

#[test]
fn immediate_pause_request_executes_zero_hours() {
    let mut c = Campaign::new(cfg());
    let control = RunControl::new();
    control.request_pause(); // lands before the first driver pass
    let r = c.execute_run_controlled_on(MachineSpec::summit_allocation(10), 6, &control);
    assert_eq!(r.paused_at, Some(SimTime::ZERO));
    assert_eq!(r.hours, 0);
    assert_eq!(r.node_hours, 0);
    let v = r.ledger.check();
    assert!(v.is_empty(), "even a zero-hour leg reconciles: {v:?}");
    // And the campaign is still resumable.
    control.clear_pause();
    let r2 = c.execute_run_controlled_on(MachineSpec::summit_allocation(10), 6, &control);
    assert_eq!(r2.paused_at, None);
    assert!(r2.placed > 0);
}

#[test]
fn checkpoint_text_survives_a_cold_restart() {
    // The durable-checkpoint path a service takes after losing its
    // process: serialize at the pause point, rebuild the campaign from
    // config, restore from text, run the remainder.
    let mut warm = Campaign::new(cfg());
    let control = RunControl::new();
    control.schedule_pause_at(SimTime::from_hours(6));
    let r1 = warm.execute_run_controlled_on(MachineSpec::summit_allocation(20), 12, &control);
    assert_eq!(r1.paused_at, Some(SimTime::from_hours(6)));
    let text = warm.checkpoint_text().expect("paused leg checkpoints");

    let ckpt = WmCheckpoint::from_text(&text).expect("checkpoint text round-trips");
    let mut cold = Campaign::new(cfg());
    cold.restore_checkpoint(ckpt);
    let r2 = cold.execute_run(20, 6);
    assert_eq!(r2.paused_at, None);
    assert!(r2.placed > 0, "the restored campaign keeps scheduling");
    let v = r2.ledger.check();
    assert!(v.is_empty(), "cold-restart leg books: {v:?}");
}
