//! Record → replay round trip: a campaign run with `record_jobs` set
//! produces a job log whose CSV trace form, replayed into a fresh
//! scheduler engine, reproduces the run's scheduler accounting exactly.
//!
//! This is the §4.4 history-file discipline applied to the scheduler: the
//! recorded stream *is* the workload, and any policy/matcher combination
//! can be re-driven from it offline. A fault-free run keeps one WM
//! incarnation alive for the whole allocation, so the final engine's log
//! covers every submission and the ledger totals are the differential
//! oracle for the replay.

use campaign::{Campaign, CampaignConfig};
use resources::{MachineSpec, ResourceGraph};
use sched::{Costs, SchedEngine, SchedPolicy};
use simcore::SimTime;
use workload::{TraceFile, WorkloadSource, WorkloadSpec};

/// Fault-free recording config: no attrition, no job faults, no watchdog
/// — every submission the engine ever saw is in the final log.
fn recording_cfg() -> CampaignConfig {
    CampaignConfig {
        record_jobs: true,
        node_failures_per_day: 0.0,
        job_failure_prob: 0.0,
        job_timeout_grace: 0.0,
        seed: 555,
        ..CampaignConfig::default()
    }
}

fn replay_stats(cfg: &CampaignConfig, nodes: u32, hours: u64, csv: &str) -> sched::SchedStats {
    let trace = TraceFile::parse(csv).expect("recorded log reparses");
    let mut engine = SchedEngine::new(
        ResourceGraph::new(MachineSpec::summit_allocation(nodes)),
        cfg.policy,
        cfg.coupling,
        Costs::summit_campaign(),
    );
    engine.set_sched_policy(cfg.sched_policy);
    let mut replayer = trace.into_replayer();
    let end = SimTime::from_hours(hours);
    // Event-driven replay: jump to each arrival, drain it, then let the
    // engine advance past it — the same interleaving the campaign's
    // next-event driver produced.
    while let Some(at) = replayer.next_at() {
        let _ = engine.advance(at);
        while let Some(job) = replayer.pop_due(at) {
            engine.submit(job.spec, job.at);
        }
    }
    let _ = engine.advance(end);
    engine.stats()
}

#[test]
fn recorded_stream_replays_to_identical_scheduler_accounting() {
    let cfg = recording_cfg();
    let mut c = Campaign::new(cfg.clone());
    let report = c.execute_run(20, 8);
    let csv = report
        .job_log
        .as_deref()
        .expect("record_jobs produced a log");
    assert!(
        csv.lines().count() > 2,
        "log should hold the continuum job plus the sim stream"
    );

    let stats = replay_stats(&cfg, 20, 8, csv);
    let l = &report.ledger;
    assert_eq!(stats.submitted, l.submitted, "replay submissions diverge");
    assert_eq!(stats.placed, l.placed, "replay placements diverge");
    assert_eq!(stats.completed, l.completed, "replay completions diverge");
    assert_eq!(stats.failed, l.failed, "replay failures diverge");
    assert_eq!(stats.canceled, l.canceled, "replay cancellations diverge");

    // Replay is itself deterministic: a second pass over the same CSV
    // reproduces the same books.
    assert_eq!(stats, replay_stats(&cfg, 20, 8, csv));
}

#[test]
fn recorded_log_includes_background_workload_jobs() {
    let cfg = CampaignConfig {
        workload: Some(WorkloadSpec::Bursty),
        ..recording_cfg()
    };
    let mut c = Campaign::new(cfg.clone());
    let report = c.execute_run(20, 6);
    assert!(
        report.ledger.background_submitted > 0,
        "bursty workload submitted nothing"
    );
    let csv = report.job_log.as_deref().expect("log recorded");
    // The log is the union of the WM stream, the continuum job, and the
    // background arrivals — exactly what the engine booked.
    assert_eq!(
        csv.lines().count() as u64 - 1, // minus header
        report.ledger.submitted,
        "every engine submission must be in the log"
    );
    let stats = replay_stats(&cfg, 20, 6, csv);
    assert_eq!(stats.submitted, report.ledger.submitted);
    assert_eq!(stats.placed, report.ledger.placed);
}

#[test]
fn background_workload_campaigns_are_seed_deterministic() {
    // The workload layer rides the same determinism contract as the rest
    // of the stack: same seed, same policy, same adversarial mix →
    // byte-identical ledgers and wait aggregates.
    let run = || {
        let cfg = CampaignConfig {
            workload: Some(WorkloadSpec::WideStarvesNarrow),
            sched_policy: SchedPolicy::FairShare,
            node_failures_per_day: 0.0,
            seed: 777,
            ..CampaignConfig::default()
        };
        let mut c = Campaign::new(cfg);
        let r = c.execute_run(20, 6);
        (r.ledger, r.class_waits.clone(), r.placed)
    };
    let (la, wa, pa) = run();
    let (lb, wb, pb) = run();
    assert_eq!(la, lb, "same-seed ledgers diverge under a workload");
    assert_eq!(pa, pb);
    assert_eq!(wa.len(), wb.len());
    for ((ca, sa), (cb, sb)) in wa.iter().zip(&wb) {
        assert_eq!(ca, cb);
        assert_eq!(
            (sa.count, sa.sum_us, sa.max_us),
            (sb.count, sb.sum_us, sb.max_us)
        );
    }
    assert!(la.background_submitted > 0);
    assert!(
        la.check().is_empty(),
        "ledger must reconcile: {:?}",
        la.check()
    );
}

#[test]
fn policy_matcher_combinations_accept_a_background_workload() {
    // Smoke the full policy zoo against an adversarial mix inside the
    // real campaign loop: every policy must keep the books balanced.
    for policy in SchedPolicy::ALL {
        let cfg = CampaignConfig {
            workload: Some(WorkloadSpec::Hetero),
            sched_policy: policy,
            node_failures_per_day: 0.0,
            seed: 888,
            ..CampaignConfig::default()
        };
        let mut c = Campaign::new(cfg);
        let r = c.execute_run(10, 4);
        assert!(
            r.ledger.check().is_empty(),
            "{}: ledger violations {:?}",
            policy.name(),
            r.ledger.check()
        );
        // `r.placed` counts WM sim starts, which an adversarial mix can
        // legitimately starve at this scale; the scheduler itself must
        // still make progress under every policy.
        assert!(r.ledger.placed > 0, "{}: nothing placed", policy.name());
    }
}
