//! Serial/parallel equivalence of the campaign event loop.
//!
//! The parallel driver is a conservative-PDES partitioning of the exact
//! same per-barrier work: data generation and the scheduler poll fork
//! onto threads between safe horizons, trace emission goes through
//! staged sinks absorbed in the serial statement order, and candidate
//! ingestion is deferred past the join. None of that is allowed to move
//! a single byte: `--serial` (`CampaignConfig::serial_loop`) is a
//! wall-clock toggle, never a semantic one. These tests are the
//! differential oracle — smoke, chaos (including the WM-crash serial
//! fallback), and report-level equality.
//!
//! The thread count is whatever `RAYON_NUM_THREADS`/the host provides;
//! CI runs this file once unpinned and once at 4 threads.

use campaign::{Campaign, CampaignConfig, RunReport};
use chaos::{FaultPlan, RunLedger};
use resources::MatchPolicy;
use sched::Coupling;
use simcore::SimDuration;
use trace::Tracer;

fn busy_cfg() -> CampaignConfig {
    CampaignConfig {
        patches_per_snapshot: 6,
        frames_per_sim_per_min: 0.05,
        cg_target_us: 0.5,
        aa_target_ns: (5.0, 8.0),
        queue_cap: 500,
        policy: MatchPolicy::FirstMatch,
        coupling: Coupling::Asynchronous,
        submit_rate_per_min: 600,
        ..CampaignConfig::default()
    }
}

/// Runs one allocation under the given loop flavor and returns the full
/// JSONL trace plus the report and campaign data counts.
fn run_flavor(mut cfg: CampaignConfig, serial: bool) -> (String, RunReport, (u64, u64, u64)) {
    cfg.serial_loop = serial;
    let mut c = Campaign::new(cfg);
    c.set_tracer(Tracer::enabled());
    let r = c.execute_run(20, 12);
    (c.tracer().to_jsonl(), r, c.data_counts())
}

/// The report fields the two loops must agree on exactly (everything
/// except the figure timelines, which the trace comparison covers).
fn report_key(r: &RunReport) -> (Vec<u64>, RunLedger, Option<simcore::SimTime>) {
    (
        vec![
            r.placed,
            r.sims_completed,
            r.peak_gpu_jobs,
            r.nodes_failed,
            r.jobs_crashed,
            r.wm_crashes,
            r.jobs_hung,
            r.store_faults_injected,
            r.store_ops_delayed,
            r.jobs_timed_out,
            r.jobs_abandoned,
            r.driver_iterations,
            r.forced_advances,
        ],
        r.ledger,
        r.load_time,
    )
}

#[test]
fn parallel_loop_trace_is_byte_identical_to_serial() {
    let (serial, rs, cs) = run_flavor(busy_cfg(), true);
    let (parallel, rp, cp) = run_flavor(busy_cfg(), false);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "serial and parallel traces diverged");
    assert_eq!(report_key(&rs), report_key(&rp));
    assert_eq!(cs, cp, "(snapshots, patches, frames) diverged");
    assert_eq!(rs.forced_advances, 0, "healthy run forced the clock");
}

#[test]
fn parallel_loop_with_attrition_matches_serial() {
    // Node failures land in the barrier's fault phase; the failure
    // history and every crash/resubmission it triggers must replay
    // identically through the staged-tracer merge.
    let cfg = CampaignConfig {
        node_failures_per_day: 8.0,
        ..busy_cfg()
    };
    let (serial, rs, _) = run_flavor(cfg.clone(), true);
    let (parallel, rp, _) = run_flavor(cfg, false);
    assert!(rs.nodes_failed > 0, "attrition must fire to test the merge");
    assert_eq!(serial, parallel, "attrition traces diverged");
    assert_eq!(report_key(&rs), report_key(&rp));
}

#[test]
fn parallel_loop_under_chaos_plan_matches_serial() {
    // The full chaos smoke plan: a node kill, a store-fault window, a
    // job hang, and a WM crash point. The crash barrier must take the
    // serial fallback (candidates ingested before a crash die with the
    // incarnation) and still merge back into the identical byte stream.
    let plan = FaultPlan::smoke(9, SimDuration::from_hours(12), 20);
    let cfg = CampaignConfig {
        job_timeout_grace: 1.5,
        fault_plan: Some(plan),
        ..busy_cfg()
    };
    let (serial, rs, cs) = run_flavor(cfg.clone(), true);
    let (parallel, rp, cp) = run_flavor(cfg, false);
    assert_eq!(rs.wm_crashes, 1, "the crash point must fire");
    assert_eq!(serial, parallel, "chaos traces diverged");
    assert_eq!(report_key(&rs), report_key(&rp));
    assert_eq!(cs, cp);
    let violations = rp.ledger.check();
    assert!(
        violations.is_empty(),
        "books do not balance: {violations:?}"
    );
}

#[test]
fn parallel_loop_checkpoint_chain_matches_serial() {
    // Byte-identity must hold across allocations too: the checkpoint a
    // parallel run hands to the next leg is the same one serial hands
    // over, so a two-leg campaign replays identically end to end.
    let run_two = |serial: bool| {
        let mut cfg = busy_cfg();
        cfg.serial_loop = serial;
        let mut c = Campaign::new(cfg);
        c.set_tracer(Tracer::enabled());
        c.execute_run(10, 8);
        c.execute_run(20, 8);
        (c.tracer().to_jsonl(), c.data_counts())
    };
    let (serial, cs) = run_two(true);
    let (parallel, cp) = run_two(false);
    assert_eq!(serial, parallel, "two-leg traces diverged");
    assert_eq!(cs, cp);
}
