//! Equivalence of the two time-advance strategies.
//!
//! The event-driven clock does not promise byte-identical traces to the
//! ticked clock — wakeup instants differ, so driver-RNG consumption and
//! job placement times shift within a poll interval. What it must promise:
//!
//! - processes that were decoupled from the clock stay *exactly* equal:
//!   snapshot/patch volume, and the node-failure history (the dedicated
//!   seed stream this PR introduced);
//! - campaign-level outcomes agree within declared tolerances;
//! - the event-driven engine is itself perfectly deterministic: same seed,
//!   same bytes.

use campaign::{Campaign, CampaignConfig, DriveMode};
use resources::MatchPolicy;
use sched::Coupling;
use trace::Tracer;

fn base_cfg(mode: DriveMode) -> CampaignConfig {
    CampaignConfig {
        patches_per_snapshot: 6,
        frames_per_sim_per_min: 0.05,
        cg_target_us: 0.5,
        aa_target_ns: (5.0, 8.0),
        queue_cap: 500,
        policy: MatchPolicy::FirstMatch,
        coupling: Coupling::Asynchronous,
        submit_rate_per_min: 600,
        mode,
        ..CampaignConfig::default()
    }
}

/// |a - b| within `frac` of the larger (for count-like report fields).
fn close(a: f64, b: f64, frac: f64) -> bool {
    (a - b).abs() <= frac * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn ticked_vs_event_driven() {
    let mut ticked = Campaign::new(base_cfg(DriveMode::Ticked));
    let rt = ticked.execute_run(20, 24);
    let mut event = Campaign::new(base_cfg(DriveMode::EventDriven));
    let re = event.execute_run(20, 24);

    // Exact: the snapshot cadence is absolute time, and the failure
    // history lives on its own stream — neither may depend on the clock.
    assert_eq!(ticked.data_counts().0, event.data_counts().0, "snapshots");
    assert_eq!(ticked.data_counts().1, event.data_counts().1, "patches");
    assert_eq!(rt.nodes_failed, re.nodes_failed, "failure history");
    assert_eq!(rt.node_hours, re.node_hours);
    // Exact: neither clock may ever hit the stale-wakeup clamp. The old
    // 10–25% tolerances below predate the safe-horizon advance and were
    // loose enough to hide a wakeup source silently skipping work; each
    // is now tightened to ~2× its audited value and justified inline.
    assert_eq!(rt.forced_advances, 0, "ticked clock forced an advance");
    assert_eq!(re.forced_advances, 0, "event clock forced an advance");

    // Job flow within 4% relative (audited delta ~1.8%): wakeup instants
    // shift placement inside a poll interval, so a handful of jobs near
    // the end-of-run boundary land on the other side of it.
    assert!(
        close(rt.placed as f64, re.placed as f64, 0.04),
        "placed: ticked={} event={}",
        rt.placed,
        re.placed
    );
    // Completions within 5% relative (audited ~1.5%): same boundary
    // effect, amplified because a completion needs its whole runtime to
    // fit before `end`.
    assert!(
        close(rt.sims_completed as f64, re.sims_completed as f64, 0.05),
        "completed: ticked={} event={}",
        rt.sims_completed,
        re.sims_completed
    );
    // Mean occupancy within 4 points (audited ~2.2): the profile samples
    // on the WM cadence in both modes, but placements shifting within a
    // poll interval move GPU-hours between adjacent samples.
    assert!(
        (rt.gpu_mean_occupancy - re.gpu_mean_occupancy).abs() < 4.0,
        "occupancy: ticked={:.1}% event={:.1}%",
        rt.gpu_mean_occupancy,
        re.gpu_mean_occupancy
    );
    // Frame volume within 8% relative (audited ~4.7%): emission is
    // `running × rate × dt` quantized per driver pass, and the two
    // clocks chop virtual time into different `dt` sequences.
    assert!(
        close(
            ticked.data_counts().2 as f64,
            event.data_counts().2 as f64,
            0.08
        ),
        "frames: ticked={} event={}",
        ticked.data_counts().2,
        event.data_counts().2
    );
    // Load time within 20% relative (audited ~14%): "90% of CG target"
    // is a threshold crossing, so the whole placement jitter above
    // compounds into when the last needed sim starts.
    let (lt, le) = (rt.load_time, re.load_time);
    assert!(lt.is_some() && le.is_some(), "both modes fully load");
    let (lt, le) = (lt.unwrap().as_secs_f64(), le.unwrap().as_secs_f64());
    assert!(
        close(lt, le, 0.20),
        "load time: ticked={lt:.0}s event={le:.0}s"
    );
}

#[test]
fn failure_history_invariant_to_poll_interval_and_mode() {
    // The regression test for the per-tick Bernoulli coupling: before this
    // PR, halving the poll interval reshuffled every failure draw. Now the
    // (time, node) history is fixed by the seed, so the realised failure
    // count is identical across cadences and drive modes.
    let run = |mode: DriveMode, poll_mins: u64| {
        let mut c = Campaign::new(CampaignConfig {
            node_failures_per_day: 8.0,
            poll_interval: simcore::SimDuration::from_mins(poll_mins),
            mode,
            ..base_cfg(mode)
        });
        c.execute_run(20, 24).nodes_failed
    };
    let reference = run(DriveMode::Ticked, 2);
    assert!(reference > 0, "attrition at 8/day over 24h must fire");
    assert_eq!(reference, run(DriveMode::Ticked, 1), "finer ticks");
    assert_eq!(reference, run(DriveMode::Ticked, 10), "coarser ticks");
    assert_eq!(reference, run(DriveMode::EventDriven, 2), "event-driven");
}

#[test]
fn event_driven_same_seed_trace_is_byte_identical() {
    let trace_of = || {
        let mut c = Campaign::new(base_cfg(DriveMode::EventDriven));
        c.set_tracer(Tracer::enabled());
        c.execute_run(10, 8);
        c.tracer().to_jsonl()
    };
    let a = trace_of();
    let b = trace_of();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed event-driven traces must be byte-identical");
}
