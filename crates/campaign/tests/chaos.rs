//! The chaos harness at campaign level: seeded fault plans driven through
//! whole allocations, with three contracts checked after every run —
//!
//! 1. **Reconciled accounting**: no job is lost or double-counted; the
//!    trackers' books and the scheduler's books balance to the unit
//!    ([`chaos::RunLedger::check`]).
//! 2. **Determinism under faults**: the same plan on the same seed replays
//!    to a byte-identical JSONL trace.
//! 3. **Crash–restore equivalence**: a run that survives a WM crash point
//!    stays within exact-or-declared tolerance of the unfaulted run.
//!
//! Regression tests here pin the *minimal* fault plan that reproduced a
//! recovery bug, so a reintroduction names its own recipe.

use campaign::{Campaign, CampaignConfig, RunReport};
use chaos::{FaultEvent, FaultKind, FaultPlan};
use resources::MatchPolicy;
use sched::{Coupling, JobClass};
use simcore::{SimDuration, SimTime};
use trace::Tracer;

/// The small-but-busy configuration every chaos test drives: short CG
/// targets so sims turn over, and the timeout watchdog armed.
fn chaos_cfg(plan: FaultPlan) -> CampaignConfig {
    CampaignConfig {
        patches_per_snapshot: 6,
        frames_per_sim_per_min: 0.05,
        cg_target_us: 0.2,
        aa_target_ns: (5.0, 8.0),
        queue_cap: 500,
        policy: MatchPolicy::FirstMatch,
        coupling: Coupling::Asynchronous,
        submit_rate_per_min: 600,
        job_timeout_grace: 1.5,
        fault_plan: Some(plan),
        seed: 20201214,
        ..CampaignConfig::default()
    }
}

#[test]
fn smoke_plan_reconciles_and_reruns_byte_identical() {
    // One fault of each of the four types inside a 12 h allocation.
    let plan = FaultPlan::smoke(9, SimDuration::from_hours(12), 20);
    let run = || {
        let mut c = Campaign::new(chaos_cfg(plan.clone()));
        c.set_tracer(Tracer::enabled());
        let r = c.execute_run(20, 12);
        (c.tracer().to_jsonl(), r)
    };
    let (trace_a, ra) = run();

    let violations = ra.ledger.check();
    assert!(
        violations.is_empty(),
        "books do not balance: {violations:?}"
    );
    assert_eq!(ra.wm_crashes, 1, "the crash point must fire");
    assert!(ra.nodes_failed >= 1, "the node failure must fire");
    assert_eq!(ra.jobs_hung, 1, "the hang must catch a running CG sim");
    assert!(
        ra.store_faults_injected > 0,
        "the read-fault window must see feedback traffic"
    );
    assert!(
        ra.ledger.lost_in_crash > 0,
        "a mid-run crash strands the live jobs"
    );
    assert!(
        ra.sims_completed > 0,
        "the campaign keeps completing work through all four faults"
    );

    let (trace_b, rb) = run();
    assert_eq!(trace_a, trace_b, "same-plan rerun must be byte-identical");
    assert_eq!(ra.ledger, rb.ledger);
}

#[test]
fn serialized_plan_reproduces_the_same_run() {
    // The text form is the reproduction recipe: a plan that survived a
    // to_text/from_text round trip must drive the identical run.
    let plan = FaultPlan::smoke(3, SimDuration::from_hours(8), 10);
    let reparsed = FaultPlan::from_text(&plan.to_text()).expect("round trip");
    let run = |p: FaultPlan| {
        let mut c = Campaign::new(chaos_cfg(p));
        c.set_tracer(Tracer::enabled());
        c.execute_run(10, 8);
        c.tracer().to_jsonl()
    };
    assert_eq!(run(plan), run(reparsed));
}

#[test]
fn hung_job_is_canceled_resubmitted_and_books_reconcile() {
    // Minimal reproducing plan for the watchdog path: one CG hang, no
    // other faults, attrition off.
    let plan = FaultPlan {
        seed: 0,
        events: vec![FaultEvent {
            at: SimTime::from_hours(2),
            kind: FaultKind::JobHang {
                class: JobClass::CgSim,
            },
        }],
    };
    let mut cfg = chaos_cfg(plan);
    cfg.node_failures_per_day = 0.0;
    let mut c = Campaign::new(cfg);
    let r = c.execute_run(10, 12);
    assert_eq!(r.jobs_hung, 1);
    assert!(
        r.jobs_timed_out >= 1,
        "the watchdog must cancel the hung job: {r:?}"
    );
    assert_eq!(
        r.ledger.canceled, r.ledger.t_timed_out,
        "every cancel is a tracker timeout and vice versa"
    );
    let violations = r.ledger.check();
    assert!(
        violations.is_empty(),
        "books do not balance: {violations:?}"
    );
}

#[test]
fn duplicate_node_failure_in_plan_is_counted_once() {
    // Minimal reproducing plan for the double-fail bug: the same node
    // killed twice at the same instant. The second report must be a
    // no-op — one drain, one trace event, one counter increment.
    let plan = FaultPlan {
        seed: 0,
        events: vec![
            FaultEvent {
                at: SimTime::from_hours(1),
                kind: FaultKind::NodeFail { node: 3 },
            },
            FaultEvent {
                at: SimTime::from_hours(1),
                kind: FaultKind::NodeFail { node: 3 },
            },
        ],
    };
    let mut cfg = chaos_cfg(plan);
    cfg.node_failures_per_day = 0.0;
    let mut c = Campaign::new(cfg);
    c.set_tracer(Tracer::enabled());
    let r = c.execute_run(10, 6);
    assert_eq!(r.nodes_failed, 1, "a drained node cannot fail again");
    let violations = r.ledger.check();
    assert!(
        violations.is_empty(),
        "books do not balance: {violations:?}"
    );
    let snap = c.tracer().metrics_snapshot();
    let failures = snap
        .counters
        .iter()
        .find(|(name, _)| name == "sched.node_failures")
        .map(|&(_, v)| v);
    assert_eq!(failures, Some(1), "the failure counter must not double");
}

#[test]
fn crash_restore_stays_within_declared_tolerance_of_unfaulted_run() {
    // Minimal reproducing plan for checkpoint coverage bugs: a single
    // crash point mid-run, every other fault source disabled.
    let run_with = |plan: FaultPlan| -> (RunReport, (u64, u64, u64), f64) {
        let mut cfg = chaos_cfg(plan);
        cfg.node_failures_per_day = 0.0;
        cfg.job_failure_prob = 0.0;
        let mut c = Campaign::new(cfg);
        let r = c.execute_run(20, 12);
        let cg_sum: f64 = c.cg_lengths().iter().sum();
        (r, c.data_counts(), cg_sum)
    };
    let crash_plan = FaultPlan {
        seed: 0,
        events: vec![FaultEvent {
            at: SimTime::from_hours(6),
            kind: FaultKind::WmCrash,
        }],
    };
    let (base, base_counts, base_cg) = run_with(FaultPlan::empty());
    let (faulted, f_counts, f_cg) = run_with(crash_plan);

    assert_eq!(faulted.wm_crashes, 1);
    assert!(faulted.ledger.lost_in_crash > 0);
    let violations = faulted.ledger.check();
    assert!(
        violations.is_empty(),
        "books do not balance: {violations:?}"
    );

    // Exact: the time-driven driver series are independent of WM state.
    assert_eq!(base_counts.0, f_counts.0, "snapshot count must be exact");
    assert_eq!(base_counts.1, f_counts.1, "patch count must be exact");

    // Declared tolerances for the WM-coupled figure series: the restored
    // WM draws fresh random decisions, so the series differ, but the
    // campaign must end up in the same statistical place.
    let rel = |a: f64, b: f64| (a - b).abs() / a.max(1e-9);
    assert!(
        rel(base.sims_completed as f64, faulted.sims_completed as f64) < 0.25,
        "sims completed diverged: {} vs {}",
        base.sims_completed,
        faulted.sims_completed
    );
    assert!(
        (base.gpu_mean_occupancy - faulted.gpu_mean_occupancy).abs() < 10.0,
        "mean GPU occupancy diverged: {:.1} vs {:.1}",
        base.gpu_mean_occupancy,
        faulted.gpu_mean_occupancy
    );
    assert!(
        rel(base_cg, f_cg) < 0.25,
        "accumulated CG trajectory diverged: {base_cg:.2} vs {f_cg:.2}"
    );
}

#[test]
fn campaign_continues_across_a_faulted_allocation() {
    // A faulted leg must hand a usable checkpoint to the next leg; the
    // same plan fires again on the second allocation.
    let plan = FaultPlan::smoke(5, SimDuration::from_hours(8), 10);
    let mut c = Campaign::new(chaos_cfg(plan));
    let r1 = c.execute_run(10, 8);
    let v1 = r1.ledger.check();
    assert!(v1.is_empty(), "leg 1 books: {v1:?}");
    let sum1: f64 = c.cg_lengths().iter().sum();
    let r2 = c.execute_run(10, 8);
    let v2 = r2.ledger.check();
    assert!(v2.is_empty(), "leg 2 books: {v2:?}");
    let sum2: f64 = c.cg_lengths().iter().sum();
    assert!(
        sum2 > sum1,
        "trajectory accumulates across faulted legs: {sum1} -> {sum2}"
    );
}
