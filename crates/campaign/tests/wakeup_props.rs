//! Property tests for the wakeup-source contract behind the event loop.
//!
//! The safe-horizon advance ([`campaign::next_horizon`] +
//! [`campaign::advance_clock`]) is only correct if every wakeup source
//! honors two rules once its due work is drained at `now`:
//!
//! 1. **never stale** — the reported wakeup is strictly after `now`
//!    (or absent); at `SimTime`'s 1 µs resolution this is what makes the
//!    legacy `.max(now + 1µs)` clamp unreachable and lets the forced-
//!    advance counter stay at zero;
//! 2. **monotone** — with no intervening state change, advancing `now`
//!    never moves the reported wakeup backwards, so a horizon computed
//!    at a barrier stays a valid lower bound for the next one.
//!
//! One property per accessor: `SchedEngine::next_wakeup` (also the
//! `Launcher` view the WM consults), `JobTracker::earliest_timeout`,
//! `WorkflowManager::next_wakeup`, and `FailureProcess::next_at`.

use campaign::FailureProcess;
use datastore::KvDataStore;
use mummi_core::{app3, JobTracker, TrackerConfig, WmConfig, WmEvent};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use resources::{JobShape, MachineSpec, MatchPolicy, ResourceGraph};
use sched::{Costs, Coupling, JobClass, JobSpec, SchedEngine};
use simcore::{SimDuration, SimTime};

fn small_engine(nodes: u32) -> SchedEngine {
    SchedEngine::new(
        ResourceGraph::new(MachineSpec::summit_allocation(nodes)),
        MatchPolicy::FirstMatch,
        Coupling::Asynchronous,
        Costs::summit_campaign(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The attrition process: after draining everything due at `t`, the
    /// next arrival is strictly in the future, and the whole arrival
    /// history is nondecreasing in time.
    #[test]
    fn failure_process_next_at_is_strictly_future_and_monotone(
        seed in any::<u64>(),
        per_day in 0.5f64..50.0,
        nodes in 4u32..64,
        steps in prop::collection::vec(1u64..600, 1..40),
    ) {
        let mut failures = FailureProcess::new(seed, per_day, nodes);
        let mut t = SimTime::ZERO;
        let mut last_arrival = SimTime::ZERO;
        let mut last_next = SimTime::ZERO;
        for mins in steps {
            t += SimDuration::from_mins(mins);
            while let Some((at, node)) = failures.pop_due(t) {
                prop_assert!(at <= t, "future arrival {at} popped at {t}");
                prop_assert!(at >= last_arrival, "history ran backwards");
                prop_assert!(node < nodes);
                last_arrival = at;
            }
            let next = failures.next_at();
            prop_assert!(next > t, "stale wakeup {next} at t={t}");
            prop_assert!(next >= last_next, "wakeup moved backwards");
            last_next = next;
        }
    }

    /// The scheduler: after `advance(now)` has drained all work, the
    /// engine either is idle or reports a wakeup strictly after `now` —
    /// the `Launcher::next_wakeup` view the WM folds into its own.
    #[test]
    fn sched_engine_next_wakeup_is_strictly_future(
        runtimes in prop::collection::vec(1u64..300, 1..24),
        steps in prop::collection::vec(1u64..240, 1..24),
    ) {
        let mut engine = small_engine(2);
        let mut now = SimTime::ZERO;
        let mut pending: Vec<u64> = runtimes.clone();
        for mins in steps {
            // Keep a trickle of submissions so the queue stays busy.
            if let Some(mins) = pending.pop() {
                engine.submit(
                    JobSpec::new(
                        JobClass::CgSim,
                        JobShape::sim_standard(),
                        SimDuration::from_mins(mins),
                    ),
                    now,
                );
            }
            now += SimDuration::from_mins(mins);
            let _ = engine.advance(now);
            if let Some(wakeup) = engine.next_wakeup() {
                prop_assert!(wakeup > now, "stale engine wakeup {wakeup} at {now}");
            }
        }
    }

    /// The hang watchdog: after `expire_overdue(now)` every remaining
    /// deadline is at or after `now` (expiry uses a strict comparison, so
    /// a deadline exactly at `now` is legitimately not yet overdue), and
    /// the reported deadline never moves backwards while time advances
    /// over a fixed placement set.
    #[test]
    fn job_tracker_earliest_timeout_never_reports_expirable_deadlines(
        runtimes in prop::collection::vec(5u64..120, 1..16),
        grace in 1.1f64..3.0,
        steps in prop::collection::vec(1u64..90, 1..24),
    ) {
        let mut engine = small_engine(2);
        let mut tracker = JobTracker::new(TrackerConfig::new(
            JobClass::CgSim,
            JobShape::sim_standard(),
            SimDuration::from_mins(30),
        ));
        tracker.set_timeout_grace(grace);
        let mut rng = StdRng::seed_from_u64(7);
        let mut now = SimTime::ZERO;
        for &mins in &runtimes {
            tracker.submit_with(
                &mut engine,
                &format!("cg-{mins}"),
                now,
                SimDuration::from_mins(mins),
                &mut rng,
            );
        }
        for mins in steps {
            now += SimDuration::from_mins(mins);
            for ev in engine.advance(now) {
                let _ = tracker.on_event(&mut engine, &ev, &mut rng);
            }
            let _ = tracker.expire_overdue(&mut engine, now, &mut rng);
            if let Some(deadline) = tracker.earliest_timeout() {
                prop_assert!(
                    deadline >= now,
                    "deadline {deadline} still expirable at {now}"
                );
            }
        }
    }

    /// The workflow manager: after a full tick at `t`, the folded wakeup
    /// (launcher, cadences, watchdog deadlines) is strictly after `t`,
    /// and for a fixed post-tick state it is monotone in `now`.
    #[test]
    fn wm_next_wakeup_is_strictly_future_and_monotone_in_now(
        seed in any::<u64>(),
        steps in prop::collection::vec(1u64..90, 1..24),
        probes in prop::collection::vec(1u64..600, 4),
    ) {
        let cfg = WmConfig {
            cg_ready_buffer: 8,
            aa_ready_buffer: 4,
            job_timeout_grace: 1.5,
            record_history: false,
            seed,
            ..WmConfig::default()
        };
        let mut wm = app3::build_three_scale_wm(cfg, small_engine(4), 14);
        let mut store = KvDataStore::new(20);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events: Vec<WmEvent> = Vec::new();
        let mut t = SimTime::ZERO;
        for (i, mins) in steps.into_iter().enumerate() {
            // Feed candidates so setups, sims, and deadlines all exist.
            let mut points = (0..6)
                .map(|j| {
                    let encoded: Vec<f64> =
                        (0..app3::PATCH_LATENT_DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    app3::state_tagged_point(
                        &format!("cg-{i:04}-{j}"),
                        rng.gen_range(0..app3::PATCH_QUEUES),
                        encoded,
                    )
                })
                .collect();
            wm.add_patch_candidates_from(&mut points);
            wm.tick_into(t, &mut store, &mut events);
            let wakeup = wm.next_wakeup(t);
            prop_assert!(wakeup > t, "stale WM wakeup {wakeup} at {t}");
            // Fixed state, advancing probe clock: never moves backwards.
            let mut probe_t = t;
            let mut last = wakeup;
            for &p in &probes {
                probe_t += SimDuration::from_mins(p);
                let w = wm.next_wakeup(probe_t);
                prop_assert!(w > probe_t);
                prop_assert!(w >= last, "WM wakeup moved backwards: {last} -> {w}");
                last = w;
            }
            t += SimDuration::from_mins(mins);
        }
    }
}
