//! Parallel sweeps of independent seeded campaigns.
//!
//! The Table-1 schedule itself is one campaign whose runs chain through a
//! checkpoint — inherently sequential. What *is* embarrassingly parallel
//! is a sweep over independent campaigns: seed-sensitivity replicas,
//! coupling/matcher ablations, figure variants. Each sweep entry owns its
//! configuration, schedule, and (optionally) an in-memory tracer, so the
//! entries share no state and can fan out over `rayon`.
//!
//! Determinism contract: results are collected **in input order** through
//! an indexed `par_iter().map().collect()`, and every entry derives all of
//! its randomness from its own `CampaignConfig::seed`. Output bytes are
//! therefore identical to the serial twin ([`run_table_runs_serial`]) no
//! matter how many worker threads execute the closure — a property the
//! byte-compare test pins down. (The vendored offline `rayon` stand-in is
//! sequential; the call sites keep the data-parallel shape so the real
//! crate can swap in without touching this module.)

use rayon::prelude::*;

use trace::Tracer;

use crate::run::{Campaign, CampaignConfig, RunReport};

/// One independent campaign execution inside a sweep.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// Stable label carried into the result (and any rendered output).
    pub label: String,
    /// Full campaign configuration, seed included.
    pub cfg: CampaignConfig,
    /// `(nodes, hours, count)` rows, as taken by [`Campaign::run_table`].
    pub schedule: Vec<(u32, u64, u32)>,
    /// Record an in-memory trace of the campaign (the per-run `--trace`
    /// bytes the equivalence tests compare).
    pub trace: bool,
}

/// What one sweep entry produced.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The entry's label, copied through.
    pub label: String,
    /// Reports in execution order, one per allocation.
    pub reports: Vec<RunReport>,
    /// The campaign trace as JSONL, when requested.
    pub trace_jsonl: Option<String>,
}

fn execute(run: &SweepRun) -> SweepResult {
    let mut campaign = Campaign::new(run.cfg.clone());
    if run.trace {
        campaign.set_tracer(Tracer::enabled());
    }
    campaign.run_table(&run.schedule);
    SweepResult {
        label: run.label.clone(),
        reports: campaign.reports().to_vec(),
        trace_jsonl: run.trace.then(|| campaign.tracer().to_jsonl()),
    }
}

/// Executes every sweep entry, fanning out across the rayon pool; results
/// come back in input order regardless of completion order.
pub fn run_table_runs(runs: &[SweepRun]) -> Vec<SweepResult> {
    runs.par_iter().map(execute).collect()
}

/// The serial twin of [`run_table_runs`]: same inputs, same outputs, one
/// thread. Exists so tests (and skeptics) can byte-compare the two.
pub fn run_table_runs_serial(runs: &[SweepRun]) -> Vec<SweepResult> {
    runs.iter().map(execute).collect()
}

/// Renders a sweep to a stable text table (label, per-run placed /
/// completed / occupancy), the form the byte-compare test and the bench
/// binaries share.
pub fn render(results: &[SweepResult]) -> String {
    let mut out = String::new();
    for res in results {
        for (i, r) in res.reports.iter().enumerate() {
            out.push_str(&format!(
                "{}\trun{}\tnodes={}\thours={}\tplaced={}\tcompleted={}\tgpu={:.3}%\tfailed={}\n",
                res.label,
                i + 1,
                r.nodes,
                r.hours,
                r.placed,
                r.sims_completed,
                r.gpu_mean_occupancy,
                r.nodes_failed,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use resources::MatchPolicy;
    use sched::Coupling;

    fn entry(label: &str, seed: u64, trace: bool) -> SweepRun {
        SweepRun {
            label: label.to_string(),
            cfg: CampaignConfig {
                patches_per_snapshot: 4,
                policy: MatchPolicy::FirstMatch,
                coupling: Coupling::Asynchronous,
                submit_rate_per_min: 600,
                seed,
                ..CampaignConfig::default()
            },
            schedule: vec![(5, 3, 1)],
            trace,
        }
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        let runs = vec![
            entry("seed-1", 1, true),
            entry("seed-2", 2, true),
            entry("seed-3", 3, true),
        ];
        let par = run_table_runs(&runs);
        let ser = run_table_runs_serial(&runs);
        assert_eq!(render(&par), render(&ser));
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.label, s.label);
            // The per-run trace bytes — the strongest equality we have —
            // must match exactly, not just the summary table.
            assert_eq!(p.trace_jsonl, s.trace_jsonl);
            assert!(p.trace_jsonl.as_deref().is_some_and(|t| !t.is_empty()));
        }
    }

    #[test]
    fn sweep_results_preserve_input_order() {
        let runs = vec![entry("z-last", 9, false), entry("a-first", 8, false)];
        let out = run_table_runs(&runs);
        assert_eq!(out[0].label, "z-last");
        assert_eq!(out[1].label, "a-first");
    }
}
