//! The Summit campaign simulator.
//!
//! §5 of the paper evaluates MuMMI through a three-month campaign on
//! Summit: several runs at 100–4000 nodes (Table 1), tens of thousands of
//! CG/AA simulations (Figure 3), per-scale simulation performance
//! (Figure 4), resource occupancy (Figure 5), job-scheduling history
//! (Figure 6), and feedback timing (Figure 8). This crate reruns that
//! campaign in virtual time over the real coordination stack:
//!
//! - [`perf`] — the per-scale performance models, calibrated to the
//!   paper's numbers (continuum ∽0.96 ms/day at 3600 cores; CG ∽1.04
//!   µs/day/GPU at ∽140 K particles, including the ddcMD-MPI slowdown
//!   episode; AA ∽13.98 ns/day at ∽1.575 M atoms);
//! - [`Campaign`] — a multi-run campaign with checkpoint/restart across
//!   allocations of different sizes, driving a [`mummi_core::WorkflowManager`]
//!   over a [`sched::SchedEngine`] with the Summit resource graph;
//! - [`feedback_model`] — the AA→CG feedback timing model behind Figure 8
//!   (2 s/frame external calls over a worker pool, iterations every ~10
//!   minutes);
//! - [`PersistentCampaign`] — the paper's §6 "Next Leap", implemented: a
//!   campaign that hops across variable-sized allocations on different
//!   clusters through its checkpoints.

pub mod control;
pub mod driver;
pub mod failures;
pub mod feedback_model;
pub mod perf;
mod persistent;
mod run;
pub mod sweep;

pub use control::{ceil_hour, RunControl, RunProgress};
pub use driver::{advance_clock, next_horizon, Horizon, WakeSource};
pub use failures::FailureProcess;
pub use feedback_model::{FeedbackTimingModel, Iteration};
pub use perf::{AaPerf, CgPerf, ContinuumPerf};
pub use persistent::{AllocationOffer, ClusterUsage, PersistentCampaign};
pub use run::{Campaign, CampaignConfig, ConfigError, DriveMode, RunReport, StoreBackend};
pub use sweep::{run_table_runs, run_table_runs_serial, SweepResult, SweepRun};
