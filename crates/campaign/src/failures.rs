//! Node-attrition as a seeded point process.
//!
//! The driver used to decide hardware attrition with one Bernoulli draw per
//! poll tick, pulled from the shared driver RNG. That coupled the failure
//! history to the tick rate twice over: changing `poll_interval` changed
//! both *how many* draws were made and *which* downstream draws every other
//! consumer of the stream saw. An event-driven clock cannot tick per
//! interval at all, so the process is reformulated the standard way: node
//! failures are a Poisson process, realised by sampling exponential
//! inter-arrival times from a dedicated [`SeedStream`]-derived RNG. The
//! resulting `(time, node)` stream depends only on the seed and the daily
//! rate — never on how the driver advances time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use simcore::{SimDuration, SimTime};

/// A pre-seeded Poisson process of `(failure time, victim node)` events.
///
/// Draws are consumed only when an arrival is realised, so two drivers that
/// query the process on different cadences (or jump the clock event-driven)
/// observe the exact same failure history.
#[derive(Debug)]
pub struct FailureProcess {
    rng: StdRng,
    /// Mean failures per hour; 0 disables the process.
    rate_per_hour: f64,
    nodes: u32,
    next_at: SimTime,
}

impl FailureProcess {
    /// Builds the process for an allocation of `nodes` nodes suffering
    /// `failures_per_day` mean failures per day, and draws the first
    /// arrival. A zero rate (or zero nodes) yields a process that never
    /// fires.
    pub fn new(seed: u64, failures_per_day: f64, nodes: u32) -> FailureProcess {
        let mut p = FailureProcess {
            rng: StdRng::seed_from_u64(seed),
            rate_per_hour: if nodes == 0 {
                0.0
            } else {
                failures_per_day.max(0.0) / 24.0
            },
            nodes,
            next_at: SimTime::MAX,
        };
        if p.rate_per_hour > 0.0 {
            p.next_at = SimTime::ZERO + p.draw_gap();
        }
        p
    }

    /// Exponential inter-arrival gap at the configured rate.
    fn draw_gap(&mut self) -> SimDuration {
        // U ∈ [0, 1): ln(1 - U) is finite, so the gap is never zero-width
        // in expectation nor infinite.
        let u: f64 = self.rng.gen();
        let hours = -(1.0 - u).ln() / self.rate_per_hour;
        SimDuration::from_secs_f64(hours * 3600.0)
    }

    /// The instant of the next failure, or [`SimTime::MAX`] when the
    /// process is disabled. Event-driven drivers fold this into their
    /// next-event minimum.
    pub fn next_at(&self) -> SimTime {
        self.next_at
    }

    /// Pops the next failure if it is due at or before `now`, returning
    /// its `(arrival time, victim node)` and drawing the following
    /// arrival. Loop until `None` to drain everything due.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, u32)> {
        if self.next_at > now {
            return None;
        }
        let at = self.next_at;
        let node = self.rng.gen_range(0..self.nodes);
        self.next_at = at + self.draw_gap();
        Some((at, node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(p: &mut FailureProcess, until: SimTime) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        while let Some(ev) = p.pop_due(until) {
            out.push(ev);
        }
        out
    }

    #[test]
    fn same_seed_same_history() {
        let a = drain(
            &mut FailureProcess::new(7, 4.0, 32),
            SimTime::from_hours(100),
        );
        let b = drain(
            &mut FailureProcess::new(7, 4.0, 32),
            SimTime::from_hours(100),
        );
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn history_is_invariant_to_query_cadence() {
        // One big drain vs. hourly polling vs. per-minute polling: the
        // realised (time, node) stream must be identical. This is the
        // regression test for the old per-tick Bernoulli coupling.
        let bulk = drain(
            &mut FailureProcess::new(99, 6.0, 20),
            SimTime::from_hours(48),
        );
        for step_mins in [1u64, 60, 137] {
            let mut p = FailureProcess::new(99, 6.0, 20);
            let mut polled = Vec::new();
            let mut t = SimTime::ZERO;
            while t <= SimTime::from_hours(48) {
                while let Some(ev) = p.pop_due(t) {
                    polled.push(ev);
                }
                t += SimDuration::from_mins(step_mins);
            }
            // Polling quantizes *when* we learn of events, never the
            // events themselves; the final poll covers the full horizon.
            while let Some(ev) = p.pop_due(SimTime::from_hours(48)) {
                polled.push(ev);
            }
            assert_eq!(polled, bulk, "cadence {step_mins}min reshuffled draws");
        }
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut p = FailureProcess::new(1, 0.0, 16);
        assert_eq!(p.next_at(), SimTime::MAX);
        assert!(p.pop_due(SimTime::from_hours(1_000_000)).is_none());
    }

    #[test]
    fn mean_rate_roughly_matches() {
        // 2/day over 1000 days → ~2000 events; Poisson σ≈45.
        let evs = drain(
            &mut FailureProcess::new(3, 2.0, 64),
            SimTime::from_hours(24_000),
        );
        assert!(
            (1800..2200).contains(&evs.len()),
            "got {} events",
            evs.len()
        );
        for w in evs.windows(2) {
            assert!(w[0].0 <= w[1].0, "arrivals must be ordered");
        }
        assert!(evs.iter().all(|&(_, n)| n < 64));
    }
}
