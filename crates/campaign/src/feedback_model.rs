//! AA→CG feedback timing model (Figure 8).
//!
//! "Each AA frame is processed for ∽2 s through subprocess calls to an
//! external program … the feedback process was split into different phases
//! for performance optimization, and suitable process pools and localized
//! temporary files were used" (§5.2). The model: every iteration gathers
//! the frames produced since the last one (∝ running AA simulations),
//! processes them on a worker pool at ~2 s/frame plus per-frame subprocess
//! overhead, with multiplicative HPC performance variability.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use simcore::SimDuration;

/// One feedback iteration's record: the (x, y) point of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Iteration {
    /// Frames processed in this iteration.
    pub frames: u64,
    /// Wall time of the iteration.
    pub duration: SimDuration,
}

/// The timing model.
#[derive(Debug, Clone)]
pub struct FeedbackTimingModel {
    /// Seconds of pure processing per frame (paper: ~2 s).
    pub secs_per_frame: f64,
    /// Extra per-frame overhead from spawning the external process.
    pub overhead_per_frame: f64,
    /// Worker-pool width (frames processed concurrently).
    pub pool_size: u64,
    /// Fixed setup/teardown per iteration (gathering, reporting), seconds.
    pub fixed_secs: f64,
    /// Sigma of the lognormal performance-variability multiplier.
    pub variability: f64,
    rng: StdRng,
}

impl FeedbackTimingModel {
    /// The campaign's configuration: 2 s/frame + 0.8 s spawn overhead over
    /// an 8-wide pool, 60 s fixed cost, moderate variability — calibrated
    /// so the 10-minute target is crossed near 1600 frames, as observed.
    pub fn campaign(seed: u64) -> FeedbackTimingModel {
        FeedbackTimingModel {
            secs_per_frame: 2.0,
            overhead_per_frame: 0.8,
            pool_size: 8,
            fixed_secs: 60.0,
            variability: 0.18,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Simulates one iteration over `frames` frames.
    pub fn iterate(&mut self, frames: u64) -> Iteration {
        let work = frames as f64 * (self.secs_per_frame + self.overhead_per_frame);
        let ideal = self.fixed_secs + work / self.pool_size as f64;
        // Degenerate variability (negative/non-finite) degrades to no
        // jitter instead of aborting the campaign.
        let jitter = match LogNormal::new(0.0, self.variability) {
            Ok(dist) => dist.sample(&mut self.rng),
            Err(_) => 1.0,
        };
        Iteration {
            frames,
            duration: SimDuration::from_secs_f64(ideal * jitter),
        }
    }

    /// Simulates a whole campaign's worth of iterations: `n` iterations
    /// with frame counts sampled around `mean_frames` (plus a heavy-tailed
    /// burst now and then — the paper's early-termination backlog).
    pub fn series(&mut self, n: usize, mean_frames: f64) -> Vec<Iteration> {
        (0..n)
            .map(|_| {
                let burst = self.rng.gen_bool(0.01);
                let lambda = if burst {
                    mean_frames * 4.0
                } else {
                    mean_frames
                };
                // Poisson-ish sample via normal approximation, clamped.
                let frames =
                    (lambda + self.rng.gen_range(-1.0..1.0) * lambda.sqrt() * 2.0).max(0.0) as u64;
                self.iterate(frames)
            })
            .collect()
    }

    /// Fraction of iterations finishing within `limit`.
    pub fn fraction_within(iterations: &[Iteration], limit: SimDuration) -> f64 {
        if iterations.is_empty() {
            return 0.0;
        }
        iterations.iter().filter(|i| i.duration <= limit).count() as f64 / iterations.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processing_time_is_linear_in_frames() {
        let mut m = FeedbackTimingModel::campaign(1);
        m.variability = 1e-9; // disable jitter for the linearity check
        let t500 = m.iterate(500).duration.as_secs_f64();
        let t5000 = m.iterate(5000).duration.as_secs_f64();
        let slope = (t5000 - t500) / 4500.0;
        let expected = 2.8 / 8.0;
        assert!(
            (slope - expected).abs() < 1e-3,
            "slope {slope} vs {expected}"
        );
    }

    #[test]
    fn most_iterations_fit_in_ten_minutes() {
        // The paper: "more than 97% of the feedback iterations finished
        // within 10 minutes". At the typical load (2400 AA sims → ~600-800
        // frames eligible per iteration) the model must reproduce that.
        let mut m = FeedbackTimingModel::campaign(2);
        let iters = m.series(2000, 700.0);
        let frac = FeedbackTimingModel::fraction_within(&iters, SimDuration::from_mins(10));
        assert!(frac > 0.97, "fraction within 10 min: {frac}");
        // But not trivially 100%: the bursts blow the budget.
        assert!(frac < 1.0, "bursts should exist: {frac}");
    }

    #[test]
    fn large_iterations_exceed_the_target_linearly() {
        let mut m = FeedbackTimingModel::campaign(3);
        m.variability = 1e-9;
        // Beyond ~1600 frames the paper misses the 10-minute target.
        let t = m.iterate(1700).duration;
        assert!(t > SimDuration::from_mins(10), "1700 frames: {t}");
        let t = m.iterate(1000).duration;
        assert!(t < SimDuration::from_mins(10), "1000 frames: {t}");
    }

    #[test]
    fn series_is_deterministic_per_seed() {
        let a = FeedbackTimingModel::campaign(7).series(100, 500.0);
        let b = FeedbackTimingModel::campaign(7).series(100, 500.0);
        assert_eq!(a, b);
    }
}
