//! Per-scale simulation performance models (Figure 4).
//!
//! Calibration points from §4.1 and §5.1:
//!
//! - continuum: "Using a total of 3600 MPI ranks … GridSim2D can simulate
//!   ∽0.96 ms per day of walltime", with lower modes for the 100- and
//!   500-node allocations;
//! - CG: "ddcMD delivers ∽1.04 µs of MD trajectories per day per GPU" at
//!   ∽140 K particles, and "about one third into the simulation … ddcMD
//!   was compiled with an incompatible version of MPI, causing it to
//!   deliver almost 20% less than the benchmark";
//! - AA: "the simulations generate almost 13.98 ns per day per GPU" at
//!   ∽1.575 M atoms.

use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Normal};

/// Samples `Normal(mean, std)`, degrading to the mean itself when the
/// parameters are degenerate (negative or non-finite spread). The models
/// below derive `std` from configurable fields, so a hostile config must
/// soften to a deterministic sample rather than abort a campaign.
fn sample_normal(mean: f64, std: f64, rng: &mut StdRng) -> f64 {
    match Normal::new(mean, std) {
        Ok(dist) => dist.sample(rng),
        Err(_) => mean,
    }
}

/// Samples `LogNormal(mu, sigma)`, degrading to the median `e^mu` on
/// degenerate parameters.
fn sample_lognormal(mu: f64, sigma: f64, rng: &mut StdRng) -> f64 {
    match LogNormal::new(mu, sigma) {
        Ok(dist) => dist.sample(rng),
        Err(_) => mu.exp(),
    }
}

/// Continuum throughput (ms of simulated time per day of walltime).
#[derive(Debug, Clone, Copy)]
pub struct ContinuumPerf {
    /// Reference cores (3600 on the campaign).
    pub ref_cores: u64,
    /// Throughput at the reference core count (ms/day).
    pub ref_ms_per_day: f64,
    /// Relative per-sample noise.
    pub noise: f64,
}

impl Default for ContinuumPerf {
    fn default() -> Self {
        ContinuumPerf {
            ref_cores: 3600,
            ref_ms_per_day: 0.96,
            noise: 0.03,
        }
    }
}

impl ContinuumPerf {
    /// Mean throughput at `cores` cores: sub-linear strong scaling
    /// (exponent 0.85) off the reference point.
    pub fn mean_ms_per_day(&self, cores: u64) -> f64 {
        let ratio = cores as f64 / self.ref_cores as f64;
        self.ref_ms_per_day * ratio.powf(0.85)
    }

    /// Samples one frame-interval's observed throughput.
    pub fn sample(&self, cores: u64, rng: &mut StdRng) -> f64 {
        let mean = self.mean_ms_per_day(cores);
        sample_normal(mean, mean * self.noise, rng).max(mean * 0.5)
    }
}

/// CG throughput (µs of trajectory per day per GPU) vs system size.
#[derive(Debug, Clone, Copy)]
pub struct CgPerf {
    /// Reference particle count.
    pub ref_particles: f64,
    /// Throughput at the reference size (µs/day/GPU).
    pub ref_us_per_day: f64,
    /// Relative noise around the mean.
    pub noise: f64,
    /// Throughput multiplier during the bad-MPI episode (~0.8).
    pub mpi_bug_factor: f64,
    /// Fraction of the campaign affected by the episode (first third).
    pub mpi_bug_until: f64,
    /// Probability of a straggler (heavy slow-down tail).
    pub straggler_prob: f64,
}

impl Default for CgPerf {
    fn default() -> Self {
        CgPerf {
            ref_particles: 140_000.0,
            ref_us_per_day: 1.04,
            noise: 0.02,
            mpi_bug_factor: 0.8,
            mpi_bug_until: 1.0 / 3.0,
            straggler_prob: 0.01,
        }
    }
}

impl CgPerf {
    /// Samples a system size (particles), normally distributed around the
    /// reference (the paper's Figure 4 x-axis spans ~134–139 K).
    pub fn sample_size(&self, rng: &mut StdRng) -> f64 {
        sample_normal(self.ref_particles, 1200.0, rng).max(self.ref_particles * 0.9)
    }

    /// Samples a simulation's throughput given its size and the campaign
    /// progress fraction in [0, 1] (for the MPI-bug episode).
    pub fn sample(&self, particles: f64, progress: f64, rng: &mut StdRng) -> f64 {
        // Cost grows with size: throughput ∝ 1/particles.
        let mut mean = self.ref_us_per_day * self.ref_particles / particles.max(1.0);
        if progress < self.mpi_bug_until {
            mean *= self.mpi_bug_factor;
        }
        let base = sample_normal(mean, mean * self.noise, rng);
        if rng.gen_bool(self.straggler_prob) {
            // "the slowest runs showed significant slow down"
            let slow = sample_lognormal(0.0, 0.5, rng);
            (base / (1.0 + slow)).max(mean * 0.2)
        } else {
            base.max(mean * 0.5)
        }
    }
}

/// AA throughput (ns/day/GPU) vs atom count.
#[derive(Debug, Clone, Copy)]
pub struct AaPerf {
    /// Reference atom count.
    pub ref_atoms: f64,
    /// Throughput at the reference size (ns/day/GPU).
    pub ref_ns_per_day: f64,
    /// Relative noise.
    pub noise: f64,
    /// Straggler probability.
    pub straggler_prob: f64,
}

impl Default for AaPerf {
    fn default() -> Self {
        AaPerf {
            ref_atoms: 1_575_000.0,
            ref_ns_per_day: 13.98,
            noise: 0.015,
            straggler_prob: 0.01,
        }
    }
}

impl AaPerf {
    /// Samples an AA system size (atoms).
    pub fn sample_size(&self, rng: &mut StdRng) -> f64 {
        sample_normal(self.ref_atoms, 12_000.0, rng).max(self.ref_atoms * 0.9)
    }

    /// Samples a simulation's throughput given its size.
    pub fn sample(&self, atoms: f64, rng: &mut StdRng) -> f64 {
        let mean = self.ref_ns_per_day * self.ref_atoms / atoms.max(1.0);
        let base = sample_normal(mean, mean * self.noise, rng);
        if rng.gen_bool(self.straggler_prob) {
            (base * 0.85).max(mean * 0.5)
        } else {
            base.max(mean * 0.5)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn continuum_hits_reference_point() {
        let p = ContinuumPerf::default();
        assert!((p.mean_ms_per_day(3600) - 0.96).abs() < 1e-12);
        assert!(p.mean_ms_per_day(2400) < 0.96);
        assert!(p.mean_ms_per_day(2400) > 0.5);
    }

    #[test]
    fn continuum_samples_cluster_around_mean() {
        let p = ContinuumPerf::default();
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..2000).map(|_| p.sample(3600, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.96).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn cg_mpi_episode_slows_early_campaign() {
        let p = CgPerf::default();
        let mut rng = StdRng::seed_from_u64(2);
        let early: f64 = (0..500)
            .map(|_| p.sample(140_000.0, 0.1, &mut rng))
            .sum::<f64>()
            / 500.0;
        let late: f64 = (0..500)
            .map(|_| p.sample(140_000.0, 0.9, &mut rng))
            .sum::<f64>()
            / 500.0;
        assert!(
            early < late * 0.9,
            "early {early} should be ~20% below late {late}"
        );
        assert!((late - 1.04).abs() < 0.05);
    }

    #[test]
    fn cg_throughput_decreases_with_size() {
        let p = CgPerf::default();
        let mut rng = StdRng::seed_from_u64(3);
        let small: f64 = (0..200).map(|_| p.sample(134_000.0, 0.9, &mut rng)).sum();
        let large: f64 = (0..200).map(|_| p.sample(139_000.0, 0.9, &mut rng)).sum();
        assert!(small > large);
    }

    #[test]
    fn aa_matches_benchmark() {
        let p = AaPerf::default();
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..1000)
            .map(|_| {
                let atoms = p.sample_size(&mut rng);
                p.sample(atoms, &mut rng)
            })
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 13.98).abs() < 0.3, "mean {mean}");
        assert!(samples.iter().all(|&v| v > 5.0 && v < 20.0));
    }

    #[test]
    fn sizes_are_positive_and_near_reference() {
        let mut rng = StdRng::seed_from_u64(5);
        let cg = CgPerf::default();
        let aa = AaPerf::default();
        for _ in 0..100 {
            let s = cg.sample_size(&mut rng);
            assert!((126_000.0..155_000.0).contains(&s));
            let a = aa.sample_size(&mut rng);
            assert!((1_400_000.0..1_700_000.0).contains(&a));
        }
    }
}
