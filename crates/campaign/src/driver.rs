//! Conservative-PDES clock primitives for the campaign event loop.
//!
//! The event-driven driver advances virtual time to a **safe horizon**:
//! the minimum over every wakeup source of the earliest instant that
//! source can act. Between barriers the domain partitions (data
//! generation, scheduler/WM polling, fault injection) are causally
//! independent, which is what lets the parallel loop in
//! [`crate::Campaign`] fork them onto threads without changing a byte of
//! the trace. Two things about the horizon are load-bearing enough to
//! live in their own module with their own tests:
//!
//! 1. **Tie-breaking.** When several sources coincide at the same
//!    `SimTime`, the barrier drains them in a *documented* priority
//!    order — the order the serial loop's body always processed them in,
//!    now a contract instead of an accident of a `min` chain:
//!
//!    | priority | source   | serial-loop step                     |
//!    |---------:|----------|--------------------------------------|
//!    | 0        | Snapshot | continuum snapshot → patch candidates|
//!    | 1        | Workload | background workload-source arrivals  |
//!    | 2        | Failure  | node-attrition arrivals              |
//!    | 3        | Chaos    | fault-plan events                    |
//!    | 4        | Wm       | scheduler poll + WM maintenance      |
//!
//!    The ordered merge of cross-partition messages at a barrier is
//!    byte-stable because every partition is absorbed in this order.
//!
//! 2. **Forced advance.** The legacy advance expression
//!    `next.min(end).max(t + 1µs)` silently bumped the clock one
//!    microsecond whenever a source returned a wakeup `<= t`. At
//!    [`SimTime`]'s integer-microsecond resolution a wakeup *strictly
//!    between* `t` and `t + 1µs` is unrepresentable, so the only way the
//!    clamp can engage is a source returning an already-past (stale)
//!    wakeup — a contract violation that the old expression masked as
//!    1 µs of silent drift and that livelocks a conservative parallel
//!    barrier (the horizon stops advancing). [`advance_clock`] makes the
//!    case explicit: a normal advance jumps exactly to the horizon, and
//!    a stale source is *flagged* so the driver can count it
//!    ([`crate::RunReport::forced_advances`]) and debug-assert on it.

use simcore::SimTime;

/// A wakeup source of the campaign event loop, in barrier-drain priority
/// order (`Snapshot` drains first at a tied time, `Wm` last). The
/// numeric order matches the serial loop's statement order, so the
/// parallel loop's ordered merge reproduces serial traces byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WakeSource {
    /// Continuum snapshot → patch-candidate generation.
    Snapshot,
    /// Background workload-source arrivals ([`workload::WorkloadSource`]
    /// streams submitted alongside the WM's own jobs).
    Workload,
    /// Node-attrition (hardware failure) arrivals.
    Failure,
    /// Chaos fault-plan events (node kills, store windows, hangs, WM
    /// crash points).
    Chaos,
    /// Scheduler/WM activity: job completions, ready-buffer maintenance,
    /// feedback and profile cadences, hang-watchdog deadlines.
    Wm,
}

/// The next synchronization barrier: the earliest wakeup over all
/// sources, plus which source claims it under the documented tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Horizon {
    /// Barrier time (safe horizon).
    pub at: SimTime,
    /// Highest-priority source due at `at`.
    pub source: WakeSource,
}

/// Computes the safe horizon from the five wakeup sources.
///
/// Ties resolve to the lowest-priority-number source ([`WakeSource`]
/// order), matching the serial loop's drain order. `workload` is `None`
/// when no background workload source is configured (or it is
/// exhausted); `chaos` is `None` when the fault-plan queue is empty.
pub fn next_horizon(
    snapshot: SimTime,
    workload: Option<SimTime>,
    failure: SimTime,
    chaos: Option<SimTime>,
    wm: SimTime,
) -> Horizon {
    let mut h = Horizon {
        at: snapshot,
        source: WakeSource::Snapshot,
    };
    // Strict `<` keeps the earliest-listed source on ties: the listing
    // order *is* the priority order.
    for (at, source) in [
        (workload, WakeSource::Workload),
        (Some(failure), WakeSource::Failure),
        (chaos, WakeSource::Chaos),
        (Some(wm), WakeSource::Wm),
    ] {
        if let Some(at) = at {
            if at < h.at {
                h = Horizon { at, source };
            }
        }
    }
    h
}

/// Advances the driver clock from `t` toward `horizon`, clamped to
/// `end`. Returns the new clock and whether the advance was **forced**.
///
/// A normal advance (`horizon > t`) jumps exactly to
/// `horizon.min(end)` — same-microsecond wakeups are impossible to skip
/// because every well-behaved source returns a wakeup strictly after
/// `now` (`SimTime` has 1 µs resolution, and each source drains
/// everything `<= t` before reporting). A stale horizon (`horizon <=
/// t`) would mean a source re-reported an already-drained event; the
/// clock still moves `t + 1µs` so a release build cannot livelock, but
/// the step is flagged so the driver can count and assert on it instead
/// of silently drifting past potential same-microsecond work like the
/// legacy `next.min(end).max(t + 1µs)` expression did.
pub fn advance_clock(t: SimTime, horizon: SimTime, end: SimTime) -> (SimTime, bool) {
    if horizon > t {
        (horizon.min(end), false)
    } else {
        (t + simcore::SimDuration::from_micros(1), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    /// The pre-PR advance expression, kept verbatim as the differential
    /// oracle for the forced-advance bugfix.
    fn legacy_advance(t: SimTime, next: SimTime, end: SimTime) -> SimTime {
        next.min(end).max(t + SimDuration::from_micros(1))
    }

    #[test]
    fn normal_advance_matches_legacy_expression() {
        // On well-behaved inputs (horizon strictly after now) the fix
        // changes nothing: same-seed traces stay byte-identical.
        let end = us(1_000_000);
        for (t, next) in [(0u64, 1), (5, 90_000_000), (7, 8), (999, 1_000)] {
            let (t2, forced) = advance_clock(us(t), us(next), end);
            assert!(!forced);
            assert_eq!(t2, legacy_advance(us(t), us(next), end));
        }
    }

    #[test]
    fn advance_clamps_to_end() {
        let (t2, forced) = advance_clock(us(10), us(500), us(100));
        assert_eq!(t2, us(100));
        assert!(!forced);
    }

    #[test]
    fn stale_horizon_is_flagged_not_silently_skipped() {
        // Regression for the forced-advance bug: the legacy expression
        // turned a stale wakeup (horizon <= now) into a silent 1 µs bump
        // — indistinguishable from a real advance, and capable of
        // jumping past work a source scheduled for the current
        // microsecond. The fixed advance still moves (no livelock) but
        // reports the violation.
        let end = us(1_000_000);
        for (t, next) in [(5u64, 5u64), (5, 4), (5, 0)] {
            let legacy = legacy_advance(us(t), us(next), end);
            assert_eq!(legacy, us(t + 1), "legacy masked the stale source");
            let (t2, forced) = advance_clock(us(t), us(next), end);
            assert_eq!(t2, us(t + 1));
            assert!(forced, "stale horizon {next} at t={t} must be flagged");
        }
    }

    #[test]
    fn sub_resolution_wakeups_cannot_exist() {
        // SimTime is integer microseconds: there is no representable
        // instant strictly between t and t + 1µs, so a wakeup "in the
        // gap" the legacy clamp could jump over is impossible by
        // construction. The smallest strictly-later wakeup advances the
        // clock exactly onto itself.
        let t = us(41);
        let gap_free_next = t + SimDuration::from_micros(1);
        let (t2, forced) = advance_clock(t, gap_free_next, us(1_000));
        assert_eq!(t2, gap_free_next);
        assert!(!forced);
    }

    #[test]
    fn horizon_picks_earliest_source() {
        let h = next_horizon(us(50), None, us(20), Some(us(30)), us(40));
        assert_eq!(h.at, us(20));
        assert_eq!(h.source, WakeSource::Failure);
        let h = next_horizon(us(50), None, us(20), None, us(10));
        assert_eq!(h.source, WakeSource::Wm);
        let h = next_horizon(us(50), Some(us(5)), us(20), None, us(10));
        assert_eq!(h.at, us(5));
        assert_eq!(h.source, WakeSource::Workload);
    }

    #[test]
    fn tied_sources_resolve_in_documented_priority_order() {
        // Regression for the tie-break bugfix: before the Horizon helper
        // the processing order of coincident wakeups was an accident of
        // a `min` chain. The contract:
        // Snapshot < Workload < Failure < Chaos < Wm.
        let t = us(77);
        let all_tied = next_horizon(t, Some(t), t, Some(t), t);
        assert_eq!(all_tied.source, WakeSource::Snapshot);
        let no_snapshot = next_horizon(us(100), Some(t), t, Some(t), t);
        assert_eq!(no_snapshot.source, WakeSource::Workload);
        let no_workload = next_horizon(us(100), None, t, Some(t), t);
        assert_eq!(no_workload.source, WakeSource::Failure);
        let chaos_vs_wm = next_horizon(us(100), None, us(100), Some(t), t);
        assert_eq!(chaos_vs_wm.source, WakeSource::Chaos);
        assert!(WakeSource::Snapshot < WakeSource::Workload);
        assert!(WakeSource::Workload < WakeSource::Failure);
        assert!(WakeSource::Failure < WakeSource::Chaos);
        assert!(WakeSource::Chaos < WakeSource::Wm);
    }
}
