//! Cooperative run control: the embeddable-run handle the campaign farm
//! holds while a worker drives [`crate::Campaign::execute_run_controlled_on`].
//!
//! The contract is deliberately narrow so the parallel event loop stays
//! deterministic:
//!
//! - **Pause points are whole virtual hours.** A pause request (or a
//!   scheduled pause time) shortens the run's end to the next whole
//!   virtual hour at or after the request point; the run then closes
//!   exactly like an end-of-allocation boundary — partial trajectories
//!   credited, interrupted sims requeued into the checkpoint. Resuming is
//!   therefore *identical* to the multi-allocation restart chain the
//!   batch binary already exercises.
//! - **A disabled handle is free.** [`RunControl::disabled`] carries no
//!   allocation and every hook is a `None` check, so the batch path
//!   (`execute_run`) is value-identical to the pre-control code and
//!   same-seed traces stay byte-identical.
//! - **Progress is observation only.** The driver publishes (virtual
//!   time, placed, completed) each iteration; readers never feed anything
//!   back into the loop, so concurrent observation cannot perturb the
//!   replay path.

use std::sync::Arc;

use parking_lot::Mutex; // lint: allow(L6: control-plane handshake between a farm worker and the service threads; never read by the replay path except as a monotone end-of-run bound)

use simcore::SimTime;

const MICROS_PER_HOUR: u64 = 3_600_000_000;

/// Rounds a virtual time up to the next whole hour (identity on whole
/// hours). Pause points land on hour boundaries so executed-hours
/// accounting stays exact in `u64` hours.
pub fn ceil_hour(t: SimTime) -> SimTime {
    SimTime::from_micros(t.as_micros().div_ceil(MICROS_PER_HOUR) * MICROS_PER_HOUR)
}

/// A live snapshot of a controlled run, published once per driver
/// iteration (wakeup). `at` is the run-local virtual clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunProgress {
    /// Run-local virtual time of the last driver pass.
    pub at: SimTime,
    /// Jobs placed so far this run.
    pub placed: u64,
    /// Simulations completed so far this run.
    pub completed: u64,
}

#[derive(Debug, Default)]
struct ControlState {
    pause_requested: bool,
    pause_at: Option<SimTime>,
    progress: RunProgress,
}

/// Shared handle for pausing and observing one campaign's runs.
///
/// Clone it freely: all clones address the same state. The default
/// (`RunControl::default()` / [`RunControl::disabled`]) is a no-op handle
/// with zero overhead on the run loop.
#[derive(Clone, Default)]
pub struct RunControl {
    inner: Option<Arc<Mutex<ControlState>>>, // lint: allow(L6: see module docs — control-plane only, observation never feeds back into the replay path)
}

impl RunControl {
    /// A live handle.
    pub fn new() -> RunControl {
        RunControl {
            inner: Some(Arc::new(Mutex::new(ControlState::default()))), // lint: allow(L6: constructing the control-plane handle; see struct field allow)
        }
    }

    /// The no-op handle the batch path uses; every hook short-circuits.
    pub fn disabled() -> RunControl {
        RunControl { inner: None }
    }

    /// Whether this handle can actually pause/observe anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Asks the running campaign to pause at the next whole virtual hour.
    /// No-op on a disabled handle.
    pub fn request_pause(&self) {
        if let Some(inner) = &self.inner {
            inner.lock().pause_requested = true;
        }
    }

    /// Schedules a pause at virtual time `at` (rounded up to a whole
    /// hour), e.g. a drain window known at submission time. Deterministic:
    /// unlike [`RunControl::request_pause`] it does not race the driver.
    pub fn schedule_pause_at(&self, at: SimTime) {
        if let Some(inner) = &self.inner {
            inner.lock().pause_at = Some(ceil_hour(at));
        }
    }

    /// Clears any pending pause request/schedule (done before resuming).
    pub fn clear_pause(&self) {
        if let Some(inner) = &self.inner {
            let mut st = inner.lock();
            st.pause_requested = false;
            st.pause_at = None;
        }
    }

    /// Whether a pause is currently requested or scheduled.
    pub fn pause_pending(&self) -> bool {
        match &self.inner {
            Some(inner) => {
                let st = inner.lock();
                st.pause_requested || st.pause_at.is_some()
            }
            None => false,
        }
    }

    /// The virtual time the run should stop at, given the clock is at
    /// `t`: the next whole hour for an interactive request, the scheduled
    /// point (or the next whole hour if the clock already passed it) for
    /// a scheduled pause. `None` when no pause is pending (or disabled).
    pub(crate) fn pause_target(&self, t: SimTime) -> Option<SimTime> {
        let inner = self.inner.as_ref()?;
        let st = inner.lock();
        if st.pause_requested {
            Some(ceil_hour(t))
        } else {
            st.pause_at.map(|at| ceil_hour(if at < t { t } else { at }))
        }
    }

    /// Driver hook: publish the per-iteration progress snapshot.
    pub(crate) fn publish(&self, at: SimTime, placed: u64, completed: u64) {
        if let Some(inner) = &self.inner {
            inner.lock().progress = RunProgress {
                at,
                placed,
                completed,
            };
        }
    }

    /// The latest published progress (`None` on a disabled handle).
    pub fn progress(&self) -> Option<RunProgress> {
        self.inner.as_ref().map(|inner| inner.lock().progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_hour_rounds_up_and_is_identity_on_boundaries() {
        assert_eq!(ceil_hour(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(ceil_hour(SimTime::from_hours(3)), SimTime::from_hours(3));
        assert_eq!(
            ceil_hour(SimTime::from_micros(1)),
            SimTime::from_hours(1),
            "one microsecond past a boundary rounds a full hour up"
        );
        assert_eq!(
            ceil_hour(SimTime::from_micros(3 * MICROS_PER_HOUR - 1)),
            SimTime::from_hours(3)
        );
    }

    #[test]
    fn disabled_handle_short_circuits_every_hook() {
        let c = RunControl::disabled();
        assert!(!c.is_enabled());
        c.request_pause();
        c.schedule_pause_at(SimTime::from_hours(1));
        assert!(!c.pause_pending());
        assert_eq!(c.pause_target(SimTime::ZERO), None);
        c.publish(SimTime::from_hours(2), 10, 5);
        assert_eq!(c.progress(), None);
    }

    #[test]
    fn interactive_pause_targets_next_whole_hour() {
        let c = RunControl::new();
        assert_eq!(c.pause_target(SimTime::from_mins(90)), None);
        c.request_pause();
        assert!(c.pause_pending());
        assert_eq!(
            c.pause_target(SimTime::from_mins(90)),
            Some(SimTime::from_hours(2))
        );
        c.clear_pause();
        assert_eq!(c.pause_target(SimTime::from_mins(90)), None);
    }

    #[test]
    fn scheduled_pause_holds_until_cleared_and_never_targets_the_past() {
        let c = RunControl::new();
        c.schedule_pause_at(SimTime::from_hours(5));
        assert_eq!(
            c.pause_target(SimTime::from_hours(1)),
            Some(SimTime::from_hours(5))
        );
        // The clock has already passed the scheduled point (e.g. the pause
        // was scheduled for an earlier leg): stop at the next whole hour.
        assert_eq!(
            c.pause_target(SimTime::from_micros(6 * MICROS_PER_HOUR + 7)),
            Some(SimTime::from_hours(7))
        );
    }

    #[test]
    fn clones_share_state_and_progress_round_trips() {
        let a = RunControl::new();
        let b = a.clone();
        b.request_pause();
        assert!(a.pause_pending());
        a.publish(SimTime::from_hours(3), 42, 17);
        assert_eq!(
            b.progress(),
            Some(RunProgress {
                at: SimTime::from_hours(3),
                placed: 42,
                completed: 17
            })
        );
    }
}
