//! The multi-run campaign driver.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex; // lint: allow(L6: campaign shared-state import; each field carries its own reason)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cg::CgFrame;
use chaos::{FaultKind, FaultPlan, MonotonicWatch, RunLedger};
use datastore::{DataStore, FaultWindow, KvDataStore, RemoteDataStore, ScheduledFaultStore};
use mummi_core::app3;
use mummi_core::{RuntimeModel, WmCheckpoint, WmConfig, WmEvent, WorkflowManager};
use resources::{JobShape, MachineSpec, MatchPolicy, ResourceGraph};
use sched::{
    ClassWait, Costs, Coupling, JobClass, JobId, JobSpec, JobState, SchedEngine, SchedPolicy,
};
use simcore::{EventQueue, OccupancyProfiler, SeedStream, SimDuration, SimTime, Timeline};
use trace::Tracer;
use workload::{WorkloadSource, WorkloadSpec};

use crate::control::RunControl;
use crate::driver;
use crate::failures::FailureProcess;
use crate::perf::{AaPerf, CgPerf, ContinuumPerf};

/// How the driver advances virtual time through a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveMode {
    /// Next-event time advance: jump the clock to the minimum of the next
    /// scheduler/WM wakeup, snapshot, fault-plan event, and node-failure
    /// arrival. Work done is proportional to events, not to elapsed
    /// virtual time — `poll_interval` stops mattering for cost.
    EventDriven,
    /// The legacy fixed-interval sweep: one driver iteration every
    /// `poll_interval` whether or not anything happened. Kept as an
    /// escape hatch (`--ticked` on the bench binaries) and as the
    /// reference for the equivalence tests.
    Ticked,
}

/// Which backend the run loop drives its feedback-store traffic
/// through. A configuration switch, never a semantic one: both backends
/// speak the same `ns:{key}` mapping and trace vocabulary, and a
/// campaign traces byte-identical under either (pinned by
/// `tests/netstore.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreBackend {
    /// The in-process [`kvstore`] cluster (the historical default).
    InProcess,
    /// The networked datastore tier via its deterministic in-process
    /// loopback transport: every op is encoded as a wire frame, decoded
    /// and handled by a [`storeserver`] engine — the campaign-side
    /// rehearsal of the real TCP deployment, with no sockets or threads.
    Loopback,
}

impl StoreBackend {
    /// Stable name for configs and wire forms.
    pub fn name(self) -> &'static str {
        match self {
            StoreBackend::InProcess => "in-process",
            StoreBackend::Loopback => "loopback",
        }
    }

    /// Inverse of [`StoreBackend::name`].
    pub fn parse(s: &str) -> Option<StoreBackend> {
        match s {
            "in-process" => Some(StoreBackend::InProcess),
            "loopback" => Some(StoreBackend::Loopback),
            _ => None,
        }
    }
}

/// Campaign-level configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Fraction of GPUs for CG.
    pub cg_fraction: f64,
    /// Continuum snapshot interval (the campaign's 90 s I/O rate).
    pub snapshot_interval: SimDuration,
    /// Patch candidates generated per snapshot. The real campaign cut ~333
    /// (6.83 M patches / 20,507 snapshots); the DES default is scaled down
    /// — selection pressure, not candidate volume, drives the figures.
    pub patches_per_snapshot: usize,
    /// CG frames flagged as AA candidates, per running CG sim per minute
    /// (scaled down from the campaign's ~0.25 for DES memory).
    pub frames_per_sim_per_min: f64,
    /// Target CG trajectory length (µs; the campaign capped at 5).
    pub cg_target_us: f64,
    /// Target AA trajectory length range (ns; the campaign used 50–65).
    pub aa_target_ns: (f64, f64),
    /// WM poll interval.
    pub poll_interval: SimDuration,
    /// Submission throttle (jobs/min).
    pub submit_rate_per_min: u64,
    /// Q↔R coupling of the Flux model.
    pub coupling: Coupling,
    /// Matcher policy.
    pub policy: MatchPolicy,
    /// Queue-ordering / backfill policy layered over the matcher (the
    /// matcher stays the placement sub-policy). FCFS — the historical
    /// behavior — is byte-identical to the pre-policy-zoo engine.
    pub sched_policy: SchedPolicy,
    /// Optional background workload submitted alongside the WM-driven
    /// stream: a replayed trace or an adversarial synthetic mix, on its
    /// own seed stream. `None` (the default) leaves the campaign
    /// byte-identical to before the workload layer existed.
    pub workload: Option<WorkloadSpec>,
    /// Differential escape hatch (`--legacy-sched` on the bench
    /// binaries): route service selection through the retained
    /// pre-policy-zoo FCFS monolith. Same decisions, same traces — the
    /// CI determinism smoke asserts same-seed byte-identity against the
    /// split [`SchedPolicy::Fcfs`] path. Rejected unless `sched_policy`
    /// is FCFS.
    pub legacy_sched: bool,
    /// Record every scheduler submission/cancel/node-failure into a
    /// replayable job log, surfaced as [`RunReport::job_log`] (CSV).
    pub record_jobs: bool,
    /// Selector queue cap (scaled from the paper's 35,000).
    pub queue_cap: usize,
    /// Probability a job fails and is resubmitted.
    pub job_failure_prob: f64,
    /// Expected compute-node failures per allocation-day (drained on
    /// failure, resident jobs crash and are resubmitted). Summit-era
    /// leadership machines lose a handful of nodes per day at full scale.
    pub node_failures_per_day: f64,
    /// Total planned campaign virtual hours (sets the MPI-bug episode
    /// boundary at one third of it).
    pub planned_hours: f64,
    /// Job-timeout watchdog grace handed to the WM: a placed job whose
    /// age exceeds `grace ×` its modeled runtime is presumed hung,
    /// canceled, and resubmitted. 0 disables the watchdog.
    pub job_timeout_grace: f64,
    /// Ready-buffer sizing: each partition keeps `gpu_target /
    /// ready_buffer_divisor` prepared simulations in flight. The paper's
    /// "sets of CG and AA simulations are kept prepared in anticipation"
    /// trade-off; the divisor controls staleness vs fill rate.
    pub ready_buffer_divisor: u64,
    /// Upper clamp on the CG ready buffer (the AA buffer is capped at
    /// half of it). The historical default of 400 starves allocations
    /// beyond ~1,000 nodes — full-Summit configurations must raise it or
    /// the setup pipeline cannot keep 27k GPUs fed.
    pub ready_buffer_cap: usize,
    /// Optional fault plan injected into every run (the chaos harness;
    /// event times are relative to each run's start).
    pub fault_plan: Option<FaultPlan>,
    /// Time-advance strategy (event-driven unless overridden).
    pub mode: DriveMode,
    /// Benchmarking escape hatch: run the scheduler's resource matcher
    /// and the trackers' hang watchdog on the retired linear scans
    /// instead of the free-resource / deadline indexes. Same decisions,
    /// same traces — only the wall-clock cost differs. The scale ladder
    /// uses it as the "pre-change engine" baseline.
    pub linear_scan: bool,
    /// Forces the legacy single-threaded event loop (`--serial` on the
    /// bench binaries). The default event-driven driver forks the data-
    /// generation and scheduler-poll partitions onto threads at heavy
    /// barriers; both loops produce byte-identical same-seed traces
    /// (asserted by tests and CI), so this toggle is the differential
    /// oracle and a wall-clock baseline, never a semantic switch.
    pub serial_loop: bool,
    /// Feedback-store backend (see [`StoreBackend`]).
    pub store_backend: StoreBackend,
    /// Root seed.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            cg_fraction: 0.7,
            snapshot_interval: SimDuration::from_secs(90),
            patches_per_snapshot: 24,
            frames_per_sim_per_min: 0.02,
            cg_target_us: 5.0,
            aa_target_ns: (50.0, 65.0),
            poll_interval: SimDuration::from_mins(2),
            submit_rate_per_min: 100,
            coupling: Coupling::Synchronous,
            policy: MatchPolicy::LowIdExhaustive,
            sched_policy: SchedPolicy::Fcfs,
            workload: None,
            legacy_sched: false,
            record_jobs: false,
            queue_cap: 2000,
            job_failure_prob: 0.005,
            node_failures_per_day: 2.0,
            planned_hours: 600.0,
            job_timeout_grace: 0.0,
            ready_buffer_divisor: 10,
            ready_buffer_cap: 400,
            fault_plan: None,
            mode: DriveMode::EventDriven,
            linear_scan: false,
            serial_loop: false,
            store_backend: StoreBackend::InProcess,
            seed: 20201214,
        }
    }
}

/// A campaign configuration the driver refuses to run. Historically the
/// use sites silently rewrote bad values (`.max(1)` on the divisor,
/// `.max(8)` on the cap); a service accepting configs over the wire must
/// reject them instead — an operator who typed `ready_buffer_divisor: 0`
/// meant *something*, and it was not "10".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `ready_buffer_divisor` is 0 — the ready-buffer target would divide
    /// by zero.
    ZeroReadyBufferDivisor,
    /// `ready_buffer_cap` is below 8 — the CG buffer clamps into
    /// `8..=cap` and the AA buffer into `4..=cap/2`, so any cap under 8
    /// would invert a clamp range.
    ReadyBufferCapTooSmall {
        /// The rejected cap.
        cap: usize,
    },
    /// `legacy_sched` is set with a non-FCFS `sched_policy` — the
    /// retained monolith models FCFS only, so any other pairing would
    /// silently change queue ordering.
    LegacySchedRequiresFcfs {
        /// The rejected queue policy.
        policy: SchedPolicy,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroReadyBufferDivisor => {
                write!(f, "ready_buffer_divisor must be >= 1 (got 0)")
            }
            ConfigError::ReadyBufferCapTooSmall { cap } => {
                write!(f, "ready_buffer_cap must be >= 8 (got {cap})")
            }
            ConfigError::LegacySchedRequiresFcfs { policy } => {
                write!(f, "legacy_sched models fcfs only (got {})", policy.name())
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl CampaignConfig {
    /// Checks the invariants the run loop relies on. [`Campaign::new`]
    /// enforces this (loudly), and wire-facing services reject invalid
    /// submissions with the typed error instead of mutating them. The
    /// defaults always validate.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ready_buffer_divisor == 0 {
            return Err(ConfigError::ZeroReadyBufferDivisor);
        }
        if self.ready_buffer_cap < 8 {
            return Err(ConfigError::ReadyBufferCapTooSmall {
                cap: self.ready_buffer_cap,
            });
        }
        if self.legacy_sched && self.sched_policy != SchedPolicy::Fcfs {
            return Err(ConfigError::LegacySchedRequiresFcfs {
                policy: self.sched_policy,
            });
        }
        Ok(())
    }

    /// Configuration for one rung of the Summit scale ladder (`nodes`
    /// compute nodes, 6 GPUs each): §5.2's fixed engine (greedy matching,
    /// asynchronous Q↔R), the hang watchdog armed as the 4,000-node
    /// campaign ran it, and candidate generation / ready buffers scaled
    /// so the whole machine can fill within a few setup generations.
    /// Hardware attrition is off — the ladder is a clean throughput
    /// benchmark; the chaos harness exercises faults separately.
    pub fn scale_rung(nodes: u32) -> CampaignConfig {
        let total_gpus = nodes as u64 * 6;
        CampaignConfig {
            // ~4× oversupply of patch candidates relative to the CG
            // partition: enough to keep the selector fed through
            // resubmissions without drowning the driver in candidate
            // generation.
            patches_per_snapshot: ((total_gpus / 200).max(24)) as usize,
            frames_per_sim_per_min: 0.01,
            queue_cap: (total_gpus as usize * 2).clamp(2_000, 35_000),
            policy: MatchPolicy::FirstMatch,
            coupling: Coupling::Asynchronous,
            submit_rate_per_min: 3_000,
            job_timeout_grace: 1.5,
            node_failures_per_day: 0.0,
            ready_buffer_divisor: 2,
            ready_buffer_cap: total_gpus as usize,
            ..CampaignConfig::default()
        }
    }
}

/// The run loop's feedback store: one of the two [`StoreBackend`]s
/// behind a single concrete type, so the generic
/// [`ScheduledFaultStore`] wrapper (and its `inner_mut().set_tracer`
/// re-staging at parallel barriers) works unchanged for both.
#[derive(Debug)]
enum RunStore {
    Kv(KvDataStore),
    Remote(RemoteDataStore),
}

impl RunStore {
    /// 20 shards either way — the paper's 20 Redis nodes.
    fn new(backend: StoreBackend) -> RunStore {
        match backend {
            StoreBackend::InProcess => RunStore::Kv(KvDataStore::new(20)),
            StoreBackend::Loopback => RunStore::Remote(RemoteDataStore::loopback(20)),
        }
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        match self {
            RunStore::Kv(s) => s.set_tracer(tracer),
            RunStore::Remote(s) => s.set_tracer(tracer),
        }
    }
}

macro_rules! run_store_delegate {
    ($self:ident, $s:ident => $body:expr) => {
        match $self {
            RunStore::Kv($s) => $body,
            RunStore::Remote($s) => $body,
        }
    };
}

impl DataStore for RunStore {
    fn kind(&self) -> datastore::BackendKind {
        run_store_delegate!(self, s => s.kind())
    }
    fn write(&mut self, ns: &str, key: &str, data: &[u8]) -> datastore::Result<()> {
        run_store_delegate!(self, s => s.write(ns, key, data))
    }
    fn read(&mut self, ns: &str, key: &str) -> datastore::Result<Vec<u8>> {
        run_store_delegate!(self, s => s.read(ns, key))
    }
    fn exists(&mut self, ns: &str, key: &str) -> bool {
        run_store_delegate!(self, s => s.exists(ns, key))
    }
    fn list(&mut self, ns: &str) -> datastore::Result<Vec<String>> {
        run_store_delegate!(self, s => s.list(ns))
    }
    fn move_ns(&mut self, key: &str, from: &str, to: &str) -> datastore::Result<()> {
        run_store_delegate!(self, s => s.move_ns(key, from, to))
    }
    fn delete(&mut self, ns: &str, key: &str) -> datastore::Result<bool> {
        run_store_delegate!(self, s => s.delete(ns, key))
    }
    fn flush(&mut self) -> datastore::Result<()> {
        run_store_delegate!(self, s => s.flush())
    }
    fn count(&mut self, ns: &str) -> datastore::Result<usize> {
        run_store_delegate!(self, s => s.count(ns))
    }
    fn read_many(&mut self, ns: &str, keys: &[String]) -> datastore::Result<Vec<Vec<u8>>> {
        run_store_delegate!(self, s => s.read_many(ns, keys))
    }
    fn move_ns_many(&mut self, keys: &[String], from: &str, to: &str) -> datastore::Result<()> {
        run_store_delegate!(self, s => s.move_ns_many(keys, from, to))
    }
}

/// What one simulation accumulated over the campaign.
#[derive(Debug, Clone, Copy)]
struct SimRecord {
    /// Target trajectory length (µs for CG, ns for AA).
    target: f64,
    /// Achieved length so far.
    achieved: f64,
    /// Throughput (µs/day for CG, ns/day for AA).
    rate_per_day: f64,
    /// When the current job instance was placed, if running.
    started_at: Option<SimTime>,
}

/// Report of one campaign run (one row of Table 1's underlying data).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Allocation size.
    pub nodes: u32,
    /// Wall-clock (virtual) hours actually executed. Equals the requested
    /// allocation length unless a [`RunControl`] pause ended the run
    /// early (pauses land on whole-hour boundaries, so this stays exact).
    pub hours: u64,
    /// nodes × executed hours.
    pub node_hours: u64,
    /// Jobs placed during the run.
    pub placed: u64,
    /// Simulations (CG+AA) completed during the run.
    pub sims_completed: u64,
    /// Mean GPU occupancy over the run's profile events (%).
    pub gpu_mean_occupancy: f64,
    /// Time for the CG partition to reach 90% of its GPU target.
    pub load_time: Option<SimTime>,
    /// CG running/pending timeline (Figure 6).
    pub cg_timeline: Timeline,
    /// AA running/pending timeline (Figure 6).
    pub aa_timeline: Timeline,
    /// Peak simultaneous GPU jobs.
    pub peak_gpu_jobs: u64,
    /// Compute nodes that failed (and were drained) during the run.
    pub nodes_failed: u64,
    /// Jobs crashed by node failures.
    pub jobs_crashed: u64,
    /// WM crash points survived (checkpoint → restore → continue).
    pub wm_crashes: u64,
    /// Jobs hung by the fault plan.
    pub jobs_hung: u64,
    /// Datastore faults injected by scheduled fault windows.
    pub store_faults_injected: u64,
    /// Datastore calls charged extra latency by fault windows.
    pub store_ops_delayed: u64,
    /// Jobs canceled by the WM timeout watchdog.
    pub jobs_timed_out: u64,
    /// Payloads permanently abandoned after exhausting resubmits.
    pub jobs_abandoned: u64,
    /// Job accounting summed over every WM incarnation of the run;
    /// [`RunLedger::check`] must come back empty.
    pub ledger: RunLedger,
    /// Driver loop passes this run took (ticks when ticked, wakeups when
    /// event-driven) — the quantity next-event time advance minimises.
    pub driver_iterations: u64,
    /// Clock advances forced past a stale wakeup source (see
    /// [`crate::driver::advance_clock`]). Always zero while every source
    /// honors the "never late, never stale" contract; a nonzero count
    /// means a `next_wakeup` accessor regressed.
    pub forced_advances: u64,
    /// The virtual time a cooperative pause stopped the run, if one did.
    /// Always a whole-hour boundary; `None` for runs that reached their
    /// requested end.
    pub paused_at: Option<SimTime>,
    /// Per-class queue-wait aggregates from the final scheduler
    /// incarnation (fair-share observability). Empty when no job of a
    /// class was placed.
    pub class_waits: Vec<(JobClass, ClassWait)>,
    /// The recorded job stream in CSV trace form, when
    /// [`CampaignConfig::record_jobs`] was set. Only the final WM
    /// incarnation's log survives a crash-chain run (earlier incarnations
    /// die with their engines).
    pub job_log: Option<String>,
}

/// The persistent campaign: survives across runs via checkpoints, exactly
/// like the paper's "single multiscale simulation campaign continued using
/// checkpoint files".
pub struct Campaign {
    cfg: CampaignConfig,
    seeds: SeedStream,
    /// Ordered by sim id: end-of-run iteration re-queues interrupted
    /// sims into the checkpoint, and that order must not depend on a
    /// hash function (determinism contract).
    sims: Arc<Mutex<BTreeMap<String, SimRecord>>>, // lint: allow(L6: BTreeMap iteration order, not lock order, decides scheduling; shared with WM model closures)
    ckpt: Option<WmCheckpoint>,
    /// Aggregated occupancy over all runs (Figure 5).
    profiler: OccupancyProfiler,
    reports: Vec<RunReport>,
    /// Cumulative virtual hours executed (drives the MPI-bug episode).
    hours_done: f64,
    /// Continuum performance samples (Figure 4, left).
    cont_samples: Vec<f64>,
    /// (size, rate) CG samples (Figure 4, middle).
    cg_samples: Vec<(f64, f64)>,
    /// (size, rate) AA samples (Figure 4, right).
    aa_samples: Vec<(f64, f64)>,
    snapshots: u64,
    patches: u64,
    frames: u64,
    next_id: u64,
    run_idx: u64,
    /// Observability sink shared with every run's engine and WM; a no-op
    /// handle by default.
    tracer: Tracer,
}

/// The concrete WM the campaign drives (the three-scale MuMMI app over
/// the Flux-model scheduler).
type CampaignWm = WorkflowManager<SchedEngine>;

/// Minimum estimated frame batch for which a barrier without a snapshot
/// due still forks the generation partition onto a thread. Forking pays
/// a scoped-thread spawn plus two tracer stages; a barrier that would
/// only generate a handful of frames is cheaper inline. Purely a
/// wall-clock knob: light and heavy barriers produce identical bytes.
const PARALLEL_FRAME_THRESHOLD: f64 = 64.0;

/// Run context and mutable accounting slots threaded through the
/// fault-drain helpers ([`apply_due_attrition`], [`apply_plan_fault`]),
/// which the serial body and the parallel barrier's fault phase share.
struct FaultCtx<'a> {
    /// The driver-owned continuum job: its failures are booked here, not
    /// by a tracker.
    cont_id: JobId,
    /// Allocation size, for wrapping planned node ids onto real nodes.
    nodes: u32,
    nodes_failed: &'a mut u64,
    jobs_crashed: &'a mut u64,
    jobs_hung: &'a mut u64,
    ledger: &'a mut RunLedger,
}

/// Drains every hardware-attrition arrival due at or before `t`: Flux
/// drains the node, resident jobs crash (their trackers resubmit them on
/// the next poll), and a continuum casualty is booked on the ledger.
fn apply_due_attrition(
    t: SimTime,
    failures: &mut FailureProcess,
    wm: &mut CampaignWm,
    ctx: &mut FaultCtx<'_>,
) {
    while let Some((_, node)) = failures.pop_due(t) {
        if !wm.launcher().graph().is_drained(node) {
            let victims = wm.launcher_mut().fail_node(node, t);
            *ctx.nodes_failed += 1;
            *ctx.jobs_crashed += victims.len() as u64;
            if victims.contains(&ctx.cont_id) {
                ctx.ledger.continuum_failed += 1;
            }
        }
    }
}

/// Applies one due chaos-plan event. `WmCrash` is the caller's job — it
/// rebuilds the WM incarnation and therefore needs the whole run scope —
/// and the parallel barrier never runs while one is due.
fn apply_plan_fault(
    kind: FaultKind,
    ev_t: SimTime,
    t: SimTime,
    wm: &mut CampaignWm,
    tracer: &Tracer,
    ctx: &mut FaultCtx<'_>,
) {
    match kind {
        FaultKind::NodeFail { node } => {
            let node = node % ctx.nodes.max(1);
            if !wm.launcher().graph().is_drained(node) {
                let victims = wm.launcher_mut().fail_node(node, t);
                *ctx.nodes_failed += 1;
                *ctx.jobs_crashed += victims.len() as u64;
                if victims.contains(&ctx.cont_id) {
                    ctx.ledger.continuum_failed += 1;
                }
                tracer.instant_at(
                    t,
                    "chaos",
                    "chaos.node_fail",
                    &[("node", node.into()), ("count", victims.len().into())],
                );
            }
        }
        FaultKind::StoreFaults {
            op,
            period,
            duration,
            ..
        } => {
            // The window itself was pre-installed on the store;
            // this marks its opening in the trace.
            tracer.instant_at(
                t,
                "chaos",
                "chaos.store_window",
                &[
                    ("op", op.label().into()),
                    ("period", period.into()),
                    ("from", ev_t.as_micros().into()),
                    ("until", (ev_t + duration).as_micros().into()),
                ],
            );
        }
        FaultKind::JobHang { class } => {
            if let Some(id) = wm.launcher_mut().hang_running(class, t) {
                *ctx.jobs_hung += 1;
                tracer.instant_at(
                    t,
                    "chaos",
                    "chaos.hang",
                    &[("class", class.label().into()), ("job", id.0.into())],
                );
            }
        }
        FaultKind::WmCrash => unreachable!("WmCrash is drained inline by the run loop"),
    }
}

impl Campaign {
    /// Starts a fresh campaign.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CampaignConfig::validate`] — an in-process
    /// caller constructing a config that divides by zero is a programming
    /// error, not a recoverable condition. Services accepting configs
    /// over a wire call `validate()` first and turn the typed error into
    /// a rejection.
    pub fn new(cfg: CampaignConfig) -> Campaign {
        if let Err(err) = cfg.validate() {
            panic!("invalid campaign config: {err}");
        }
        let seeds = SeedStream::new(cfg.seed);
        Campaign {
            cfg,
            seeds,
            sims: Arc::new(Mutex::new(BTreeMap::new())), // lint: allow(L6: see the sims field's reason)
            ckpt: None,
            profiler: OccupancyProfiler::new(),
            reports: Vec::new(),
            hours_done: 0.0,
            cont_samples: Vec::new(),
            cg_samples: Vec::new(),
            aa_samples: Vec::new(),
            snapshots: 0,
            patches: 0,
            frames: 0,
            next_id: 0,
            run_idx: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a tracer. Each subsequent run installs the same handle on
    /// its scheduler engine and workflow manager, so one trace carries the
    /// whole campaign (runs are disjoint in virtual time only per-run; the
    /// `run.start` / `run.end` markers delimit them).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer handle (no-op unless [`Campaign::set_tracer`]
    /// was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// All run reports so far.
    pub fn reports(&self) -> &[RunReport] {
        &self.reports
    }

    /// The merged occupancy profile (Figure 5).
    pub fn profiler(&self) -> &OccupancyProfiler {
        &self.profiler
    }

    /// Continuum performance samples (ms/day).
    pub fn continuum_samples(&self) -> &[f64] {
        &self.cont_samples
    }

    /// CG (size, µs/day) samples.
    pub fn cg_samples(&self) -> &[(f64, f64)] {
        &self.cg_samples
    }

    /// AA (size, ns/day) samples.
    pub fn aa_samples(&self) -> &[(f64, f64)] {
        &self.aa_samples
    }

    /// (snapshots, patches, frames) generated so far.
    pub fn data_counts(&self) -> (u64, u64, u64) {
        (self.snapshots, self.patches, self.frames)
    }

    /// Achieved CG trajectory lengths (µs), one per spawned CG sim.
    pub fn cg_lengths(&self) -> Vec<f64> {
        self.sims
            .lock()
            .iter()
            .filter(|(id, _)| id.starts_with("cg-"))
            .map(|(_, r)| r.achieved)
            .collect()
    }

    /// Achieved AA trajectory lengths (ns), one per spawned AA sim.
    pub fn aa_lengths(&self) -> Vec<f64> {
        self.sims
            .lock()
            .iter()
            .filter(|(id, _)| id.starts_with("aa-"))
            .map(|(_, r)| r.achieved)
            .collect()
    }

    /// Executes one Summit allocation of `nodes` nodes for `hours` virtual
    /// hours, restarting from the previous run's checkpoint.
    pub fn execute_run(&mut self, nodes: u32, hours: u64) -> RunReport {
        self.execute_run_on(MachineSpec::summit_allocation(nodes), hours)
    }

    /// Executes one allocation on an arbitrary machine (the persistent-
    /// workflow path: "coordinate variable sized allocations as resources
    /// become available on different clusters", §6).
    pub fn execute_run_on(&mut self, machine: MachineSpec, hours: u64) -> RunReport {
        self.execute_run_controlled_on(machine, hours, &RunControl::disabled())
    }

    /// The serialized checkpoint carried from the last run boundary (or
    /// pause point), for durable storage across process boundaries. `None`
    /// until a run has completed or paused.
    pub fn checkpoint_text(&self) -> Option<String> {
        self.ckpt.as_ref().map(|c| c.to_text())
    }

    /// Installs a checkpoint (e.g. parsed back via
    /// [`WmCheckpoint::from_text`]) so the next run restores from it —
    /// the cold-restart path a service takes after losing its in-memory
    /// campaign. In-memory trajectory progress (the sims map) does not
    /// survive such a restart; ready-queue membership and WM statistics
    /// do, exactly as with the paper's on-disk checkpoint files.
    pub fn restore_checkpoint(&mut self, ckpt: WmCheckpoint) {
        self.ckpt = Some(ckpt);
    }

    /// [`Campaign::execute_run_on`] with a cooperative [`RunControl`]:
    /// the handle can pause the run at the next whole virtual hour (the
    /// pause-point rule — see `control`'s module docs) and observe
    /// progress while the run executes on another thread. A paused run
    /// closes exactly like an end-of-allocation boundary: partial
    /// trajectories credited, interrupted sims requeued into the
    /// checkpoint, ledger reconciled — so resuming is the existing
    /// restart-chain path with a shorter first leg. With a disabled (or
    /// idle) handle this is value- and byte-identical to the batch path.
    pub fn execute_run_controlled_on(
        &mut self,
        machine: MachineSpec,
        hours: u64,
        control: &RunControl,
    ) -> RunReport {
        self.run_idx += 1;
        let run_seeds = self.seeds.fork_indexed("run", self.run_idx);
        let mut rng = StdRng::seed_from_u64(run_seeds.seed_for("driver"));

        let nodes = machine.nodes;
        let total_gpus = machine.total_gpus();
        // The spec outlives the first engine: a WM crash point discards the
        // whole incarnation and rebuilds scheduler + WM from scratch.
        let mut graph = ResourceGraph::new(machine.clone());
        graph.set_linear_scan(self.cfg.linear_scan);
        let mut engine = SchedEngine::new(
            graph,
            self.cfg.policy,
            self.cfg.coupling,
            Costs::summit_campaign(),
        );
        engine.set_tracer(self.tracer.clone());
        engine.set_sched_policy(self.cfg.sched_policy);
        engine.set_legacy_fcfs(self.cfg.legacy_sched);
        if self.cfg.record_jobs {
            engine.set_recording(true);
        }

        let cg_target = (total_gpus as f64 * self.cfg.cg_fraction) as u64;
        // Validated at construction/submission: divisor >= 1, cap >= 8.
        let divisor = self.cfg.ready_buffer_divisor;
        let cap = self.cfg.ready_buffer_cap;
        // `cg_target` can exceed `total_gpus` when `cg_fraction > 1`
        // (e.g. an operator writing 70 for 70%): the AA partition then
        // gets nothing, it must not underflow into a multi-exabyte
        // ready-buffer request.
        let aa_gpus = total_gpus.saturating_sub(cg_target);
        let wm_cfg = WmConfig {
            cg_gpu_fraction: self.cfg.cg_fraction,
            cg_ready_buffer: ((cg_target / divisor) as usize).clamp(8, cap),
            aa_ready_buffer: ((aa_gpus / divisor) as usize).clamp(4, cap / 2),
            poll_interval: self.cfg.poll_interval,
            feedback_interval: SimDuration::from_mins(10),
            profile_interval: SimDuration::from_mins(10),
            submit_rate_per_min: self.cfg.submit_rate_per_min,
            job_failure_prob: self.cfg.job_failure_prob,
            // The campaign owns restart state (its sims map + ready
            // queues); per-candidate history would dominate DES memory.
            record_history: false,
            job_timeout_grace: self.cfg.job_timeout_grace,
            linear_scan: self.cfg.linear_scan,
            seed: run_seeds.seed_for("wm"),
            ..WmConfig::default()
        };
        let wm_cfg_base = wm_cfg.clone();
        let mut wm = app3::build_three_scale_wm(wm_cfg, engine, 14);
        wm.set_tracer(self.tracer.clone());
        if let Some(ckpt) = &self.ckpt {
            wm.restore(ckpt);
        }
        self.tracer.set_now(SimTime::ZERO);
        self.tracer.instant_at(
            SimTime::ZERO,
            "campaign",
            "run.start",
            &[
                ("run", self.run_idx.into()),
                ("nodes", nodes.into()),
                ("hours", hours.into()),
            ],
        );

        // The per-sim runtime model: remaining length / throughput. Built
        // by a factory because every WM incarnation (the first, and each
        // crash-point restore) needs its own copy with a fresh RNG stream.
        let cg_perf = CgPerf::default();
        let aa_perf = AaPerf::default();
        let progress = (self.hours_done / self.cfg.planned_hours).min(1.0);
        let (aa_lo, aa_hi) = self.cfg.aa_target_ns;
        let cg_target_us = self.cfg.cg_target_us;
        let samples = Arc::new(Mutex::new((Vec::new(), Vec::new()))); // lint: allow(L6: perf-sample scratch shared with model closures; drained once after the run)
        let make_model = {
            let sims = Arc::clone(&self.sims);
            let samples = Arc::clone(&samples);
            move |mut model_rng: StdRng| -> RuntimeModel {
                let sims = Arc::clone(&sims);
                let samples_in = Arc::clone(&samples);
                Box::new(move |class, payload: &str| {
                    let mut sims = sims.lock();
                    let rec = sims
                        .entry(payload.to_string())
                        .or_insert_with(|| match class {
                            JobClass::CgSim => {
                                let size = cg_perf.sample_size(&mut model_rng);
                                let rate = cg_perf.sample(size, progress, &mut model_rng);
                                samples_in.lock().0.push((size, rate));
                                SimRecord {
                                    target: cg_target_us,
                                    achieved: 0.0,
                                    rate_per_day: rate,
                                    started_at: None,
                                }
                            }
                            _ => {
                                let size = aa_perf.sample_size(&mut model_rng);
                                let rate = aa_perf.sample(size, &mut model_rng);
                                samples_in.lock().1.push((size, rate));
                                SimRecord {
                                    target: model_rng.gen_range(aa_lo..aa_hi),
                                    achieved: 0.0,
                                    rate_per_day: rate,
                                    started_at: None,
                                }
                            }
                        });
                    let remaining = (rec.target - rec.achieved).max(0.0);
                    let days = remaining / rec.rate_per_day.max(1e-9);
                    Some(SimDuration::from_secs_f64(days * 86_400.0).max(SimDuration::from_mins(5)))
                })
            }
        };
        wm.set_runtime_model(make_model(StdRng::seed_from_u64(
            run_seeds.seed_for("perf"),
        )));

        // The continuum job: one multi-node CPU job for the whole run.
        let cont_nodes = (nodes / 8).clamp(2, 150);
        let cont_perf = ContinuumPerf::default();
        // Its id is remembered: the continuum job belongs to the driver,
        // not to a tracker, so its failures must be booked here.
        let mut cont_id = wm.launcher_mut().submit(
            JobSpec::new(
                JobClass::Continuum,
                JobShape::continuum(cont_nodes),
                SimDuration::from_hours(hours),
            ),
            SimTime::ZERO,
        );

        // The chaos plan (empty unless configured): store-fault windows are
        // compiled up-front into the store wrapper; the remaining events
        // are applied by the tick loop as virtual time passes them.
        let mut plan = self.cfg.fault_plan.clone().unwrap_or_default();
        plan.normalize();
        let windows: Vec<FaultWindow> = plan
            .events
            .iter()
            .filter_map(|ev| match ev.kind {
                FaultKind::StoreFaults {
                    op,
                    period,
                    duration,
                    extra_latency,
                } => Some(FaultWindow {
                    from: ev.at,
                    until: ev.at + duration,
                    op,
                    period,
                    extra_latency,
                }),
                _ => None,
            })
            .collect();
        let mut inner_store = RunStore::new(self.cfg.store_backend);
        inner_store.set_tracer(self.tracer.clone());
        let mut store = ScheduledFaultStore::new(inner_store, windows);
        // Plan events live in a real event queue: ticked mode drains what
        // is due each sweep, event mode additionally uses the head
        // timestamp to bound how far the clock may jump.
        let mut plan_q: EventQueue<FaultKind> = EventQueue::new();
        for ev in &plan.events {
            plan_q.schedule(ev.at, ev.kind);
        }
        // WM crash points, in time order. The parallel barrier consults
        // the front: a crash discards the incarnation mid-iteration (any
        // candidates ingested earlier in the same pass die with it), so a
        // barrier with a crash due must run the legacy serial body.
        let mut crash_times: VecDeque<SimTime> = plan
            .events
            .iter()
            .filter(|ev| matches!(ev.kind, FaultKind::WmCrash))
            .map(|ev| ev.at)
            .collect();
        let mut wm_crashes = 0u64;
        let mut jobs_hung = 0u64;
        let mut ledger = RunLedger {
            continuum_submitted: 1,
            ..RunLedger::default()
        };
        let mut watch = MonotonicWatch::new();
        // Run-local figure collectors: a WM crash discards the incarnation,
        // so its profile and timelines must be folded in before the drop.
        let mut run_profiler = OccupancyProfiler::new();
        let mut run_cg_tl = Timeline::new();
        let mut run_aa_tl = Timeline::new();
        let end = SimTime::from_hours(hours);
        // The effective end of this run: `end` unless a cooperative pause
        // pulls it in to an earlier whole-hour boundary. Monotone
        // non-increasing — once a pause point is adopted it never moves.
        let mut run_end = end;
        let mut t = SimTime::ZERO;
        let mut prev_t = SimTime::ZERO;
        let mut next_snapshot = SimTime::ZERO;
        let mut frame_accum = 0.0f64;
        let mut placed = 0u64;
        let mut completed = 0u64;
        let mut load_time = None;
        let mut nodes_failed = 0u64;
        let mut jobs_crashed = 0u64;
        // Hardware attrition as a pre-seeded Poisson process on its own
        // seed stream: the (time, node) failure history is a function of
        // the run seed and daily rate alone, invariant to the poll cadence
        // and to the drive mode.
        let mut failures = FailureProcess::new(
            run_seeds.seed_for("node-failures"),
            self.cfg.node_failures_per_day,
            nodes,
        );

        // Optional background workload: an extra job stream submitted
        // straight to the scheduler on its own seed stream. The WM never
        // tracks these ids — its polls ignore unknown jobs — so the
        // ledger books them separately. Synthetic mixes are sized to the
        // run length (~one arrival a minute at their default cadences).
        let mut bg_src: Option<Box<dyn WorkloadSource>> = self.cfg.workload.as_ref().map(|w| {
            w.build(run_seeds.seed_for("workload"), nodes, hours * 60)
                .unwrap_or_else(|e| panic!("workload {w} failed to build: {e}"))
        });
        let mut bg_ids: BTreeSet<JobId> = BTreeSet::new();

        // Forking a barrier only pays when the rayon pool actually has a
        // second worker. On a 1-thread pool `rayon::join` degrades to
        // inline calls, so the fork would spend its staging/absorb
        // plumbing for nothing — measured at 0.92× serial on the full
        // Table 1 schedule. Hoisted: the pool size is fixed for the
        // process lifetime.
        let pool_parallel = rayon::current_num_threads() > 1;

        let mut driver_iterations = 0u64;
        let mut forced_advances = 0u64;
        // Per-tick scratch buffers, hoisted out of the loop: candidate
        // staging and the WM event list are drained every pass, so one
        // allocation serves the whole run.
        let mut point_buf: Vec<dynim::HdPoint> = Vec::new();
        let mut wm_events: Vec<WmEvent> = Vec::new();
        while t <= run_end {
            driver_iterations += 1;
            self.tracer.set_now(t);
            store.set_now(t);

            // Cooperative pause point: adopt a requested/scheduled pause
            // target (always a whole-hour boundary at or after `t`) as the
            // run's new end. The current pass still executes in full, so
            // the run closes with a final pass exactly at the boundary,
            // mirroring the normal end-of-allocation close.
            if let Some(target) = control.pause_target(t) {
                if target < run_end {
                    run_end = target;
                }
            }

            // Barrier flavor. Between wakeups the domain partitions are
            // causally independent, so a heavy barrier (snapshot due, or
            // a large accumulated frame batch) forks data generation
            // against the scheduler poll; light barriers and any barrier
            // with a WM crash due run the legacy serial body. Both paths
            // produce byte-identical same-seed traces — `--serial` and
            // the fork threshold are wall-clock knobs, never semantic.
            let crash_due = crash_times.front().is_some_and(|&at| at <= t);
            let (cg_running, _) = wm.launcher().class_counts(JobClass::CgSim);
            let est_frames = frame_accum
                + cg_running as f64
                    * self.cfg.frames_per_sim_per_min
                    * t.since(prev_t).as_mins_f64();
            let fork_barrier = pool_parallel
                && !self.cfg.serial_loop
                && self.cfg.mode == DriveMode::EventDriven
                && !crash_due
                && (next_snapshot <= t || est_frames >= PARALLEL_FRAME_THRESHOLD);

            if fork_barrier {
                // Conservative-PDES fork (DESIGN.md "Parallel event
                // loop"). Fault injection runs first, serially: data
                // generation never reads engine state (the CG count was
                // captured above, exactly the value the serial body
                // reads before its own fault drain), and fault
                // application touches neither the store nor the driver
                // RNG. Each phase traces into its own staged sink; the
                // stages are absorbed below in the serial loop's
                // statement order — generation, faults, poll — so the
                // merged trace is byte-identical to the serial body's.
                let staged_gen = self.tracer.stage();
                let staged_fault = self.tracer.stage();
                let staged_poll = self.tracer.stage();

                wm.launcher_mut().set_tracer(staged_fault.clone());
                // Background arrivals drain before the fault phase — the
                // same statement position as the serial body, so the
                // staged-fault sink absorbs their submit traces in the
                // identical order.
                if let Some(src) = bg_src.as_deref_mut() {
                    while let Some(job) = src.pop_due(t) {
                        bg_ids.insert(wm.launcher_mut().submit(job.spec, job.at));
                        ledger.background_submitted += 1;
                    }
                }
                apply_due_attrition(
                    t,
                    &mut failures,
                    &mut wm,
                    &mut FaultCtx {
                        cont_id,
                        nodes,
                        nodes_failed: &mut nodes_failed,
                        jobs_crashed: &mut jobs_crashed,
                        jobs_hung: &mut jobs_hung,
                        ledger: &mut ledger,
                    },
                );
                while plan_q.peek_time().is_some_and(|at| at <= t) {
                    let Some((ev_t, kind)) = plan_q.pop() else {
                        break;
                    };
                    apply_plan_fault(
                        kind,
                        ev_t,
                        t,
                        &mut wm,
                        &staged_fault,
                        &mut FaultCtx {
                            cont_id,
                            nodes,
                            nodes_failed: &mut nodes_failed,
                            jobs_crashed: &mut jobs_crashed,
                            jobs_hung: &mut jobs_hung,
                            ledger: &mut ledger,
                        },
                    );
                }
                wm.set_tracer(staged_poll.clone());
                wm.launcher_mut().set_tracer(staged_poll.clone());
                store.inner_mut().set_tracer(staged_gen.clone());

                let mut patch_batches: Vec<Vec<dynim::HdPoint>> = Vec::new();
                let mut frame_points: Vec<dynim::HdPoint> = Vec::new();
                let (n_frames, ()) =
                    rayon::join(
                        || {
                            // GEN partition: continuum snapshots → patch
                            // candidates, CG frame analysis → AA candidates
                            // plus the feedback-round store writes. Owns the
                            // driver RNG. Candidate ingestion is deferred to
                            // the ordered merge below — it emits no trace
                            // events and never touches launcher state, so
                            // deferral cannot change a byte.
                            while next_snapshot <= t {
                                self.snapshots += 1;
                                self.cont_samples.push(cont_perf.sample(
                                    JobShape::continuum(cont_nodes).total_cores(),
                                    &mut rng,
                                ));
                                let mut batch = Vec::with_capacity(self.cfg.patches_per_snapshot);
                                for _ in 0..self.cfg.patches_per_snapshot {
                                    self.next_id += 1;
                                    self.patches += 1;
                                    let id = format!("cg-{:010}", self.next_id);
                                    let state = rng.gen_range(0..app3::PATCH_QUEUES);
                                    let encoded: Vec<f64> = (0..app3::PATCH_LATENT_DIM)
                                        .map(|_| rng.gen_range(-1.0..1.0))
                                        .collect();
                                    batch.push(app3::state_tagged_point(&id, state, encoded));
                                }
                                patch_batches.push(batch);
                                next_snapshot += self.cfg.snapshot_interval;
                            }
                            frame_accum += cg_running as f64
                                * self.cfg.frames_per_sim_per_min
                                * t.since(prev_t).as_mins_f64();
                            let n_frames = frame_accum as usize;
                            frame_accum -= n_frames as f64;
                            for _ in 0..n_frames {
                                self.next_id += 1;
                                self.frames += 1;
                                let id = format!("aa-{:010}", self.next_id);
                                let coords = vec![
                                    rng.gen_range(0.0..1.0),
                                    rng.gen_range(0.0..1.0),
                                    rng.gen_range(0.0..1.0),
                                ];
                                let frame = CgFrame {
                                    id: id.clone(),
                                    time: t.as_secs_f64(),
                                    encoding: [coords[0], coords[1], coords[2]],
                                    rdfs: vec![vec![1.0 + coords[0] - coords[1]; 8]],
                                };
                                let _ = store.write(mummi_core::ns::RDF_NEW, &id, &frame.encode());
                                frame_points.push(dynim::HdPoint::new(id, coords));
                            }
                            n_frames
                        },
                        || {
                            // POLL partition: job completions, resubmission
                            // draws, hang expiry. Reads neither the store
                            // nor the candidate selector.
                            wm.tick_poll_phase(t, &mut wm_events);
                        },
                    );

                // Ordered merge: absorb the staged events and metric ops
                // in the serial statement order, then restore the shared
                // tracer handles.
                self.tracer.absorb(&staged_gen);
                self.tracer.absorb(&staged_fault);
                self.tracer.absorb(&staged_poll);
                wm.set_tracer(self.tracer.clone());
                wm.launcher_mut().set_tracer(self.tracer.clone());
                store.inner_mut().set_tracer(self.tracer.clone());

                // Deferred candidate ingestion, in the serial call
                // order: one batch per snapshot, then the frame batch.
                for mut batch in patch_batches {
                    wm.add_patch_candidates_from(&mut batch);
                }
                if n_frames > 0 {
                    wm.add_frame_candidates_from(&mut frame_points);
                }

                // Maintenance half of the WM cycle, serial on the main
                // tracer: ready-buffer fill, feedback (store reads),
                // occupancy profiling.
                wm.tick_maintain_phase(t, &mut store, &mut wm_events);
            } else {
                // Continuum output: new snapshot → patch candidates.
                while next_snapshot <= t {
                    self.snapshots += 1;
                    self.cont_samples.push(
                        cont_perf.sample(JobShape::continuum(cont_nodes).total_cores(), &mut rng),
                    );
                    for _ in 0..self.cfg.patches_per_snapshot {
                        self.next_id += 1;
                        self.patches += 1;
                        let id = format!("cg-{:010}", self.next_id);
                        let state = rng.gen_range(0..app3::PATCH_QUEUES);
                        let encoded: Vec<f64> = (0..app3::PATCH_LATENT_DIM)
                            .map(|_| rng.gen_range(-1.0..1.0))
                            .collect();
                        point_buf.push(app3::state_tagged_point(&id, state, encoded));
                    }
                    wm.add_patch_candidates_from(&mut point_buf);
                    next_snapshot += self.cfg.snapshot_interval;
                }

                // CG analyses flag frames as AA candidates, proportional to the
                // number of running CG simulations and to the virtual time that
                // actually elapsed since the last driver pass (so the rate is
                // honoured whether the clock sweeps or jumps).
                let (cg_running, _) = wm.launcher().class_counts(JobClass::CgSim);
                frame_accum += cg_running as f64
                    * self.cfg.frames_per_sim_per_min
                    * t.since(prev_t).as_mins_f64();
                let n_frames = frame_accum as usize;
                frame_accum -= n_frames as f64;
                if n_frames > 0 {
                    for _ in 0..n_frames {
                        self.next_id += 1;
                        self.frames += 1;
                        let id = format!("aa-{:010}", self.next_id);
                        let coords = vec![
                            rng.gen_range(0.0..1.0),
                            rng.gen_range(0.0..1.0),
                            rng.gen_range(0.0..1.0),
                        ];
                        // The analyzed frame also lands in the data store for
                        // the CG→continuum feedback round (paper Task 4). A
                        // store-fault window may reject the write: the frame is
                        // simply lost to feedback, never to job accounting.
                        let frame = CgFrame {
                            id: id.clone(),
                            time: t.as_secs_f64(),
                            encoding: [coords[0], coords[1], coords[2]],
                            rdfs: vec![vec![1.0 + coords[0] - coords[1]; 8]],
                        };
                        let _ = store.write(mummi_core::ns::RDF_NEW, &id, &frame.encode());
                        point_buf.push(dynim::HdPoint::new(id, coords));
                    }
                    wm.add_frame_candidates_from(&mut point_buf);
                }

                // Background workload arrivals due by now, submitted at
                // their own timestamps (== `t` under event-driven advance;
                // possibly earlier under a ticked sweep, which the engine
                // inbox handles like any late ingestion).
                if let Some(src) = bg_src.as_deref_mut() {
                    while let Some(job) = src.pop_due(t) {
                        bg_ids.insert(wm.launcher_mut().submit(job.spec, job.at));
                        ledger.background_submitted += 1;
                    }
                }

                // Hardware attrition: the failure process decides which nodes
                // die and when; the driver applies each arrival at the wakeup
                // that covers it. Flux drains the node and the trackers
                // resubmit the crashed simulations.
                apply_due_attrition(
                    t,
                    &mut failures,
                    &mut wm,
                    &mut FaultCtx {
                        cont_id,
                        nodes,
                        nodes_failed: &mut nodes_failed,
                        jobs_crashed: &mut jobs_crashed,
                        jobs_hung: &mut jobs_hung,
                        ledger: &mut ledger,
                    },
                );

                // Scheduled faults from the chaos plan whose time has come.
                while plan_q.peek_time().is_some_and(|at| at <= t) {
                    let Some((ev_t, kind)) = plan_q.pop() else {
                        break;
                    };
                    if !matches!(kind, FaultKind::WmCrash) {
                        apply_plan_fault(
                            kind,
                            ev_t,
                            t,
                            &mut wm,
                            &self.tracer,
                            &mut FaultCtx {
                                cont_id,
                                nodes,
                                nodes_failed: &mut nodes_failed,
                                jobs_crashed: &mut jobs_crashed,
                                jobs_hung: &mut jobs_hung,
                                ledger: &mut ledger,
                            },
                        );
                        continue;
                    }
                    {
                        crash_times.pop_front();
                        wm_crashes += 1;
                        // The checkpoint is the only state that survives the
                        // crash; live jobs die with the incarnation.
                        let mut ckpt = wm.checkpoint();
                        let (next_fb, next_prof) = wm.cadence();
                        // Credit partial trajectories up to the crash and
                        // requeue interrupted sims — the end-of-allocation
                        // restart path, applied mid-run.
                        {
                            let mut sims = self.sims.lock();
                            for (id, rec) in sims.iter_mut() {
                                if let Some(started) = rec.started_at.take() {
                                    let days = t.since(started).as_hours_f64() / 24.0;
                                    rec.achieved =
                                        (rec.achieved + rec.rate_per_day * days).min(rec.target);
                                    if rec.achieved < rec.target {
                                        if id.starts_with("cg-") {
                                            ckpt.cg_ready.insert(0, id.clone());
                                        } else {
                                            ckpt.aa_ready.insert(0, id.clone());
                                        }
                                    }
                                }
                            }
                        }
                        // Book the dying incarnation before dropping it.
                        let st = wm.launcher().stats();
                        ledger.submitted += st.submitted;
                        ledger.placed += st.placed;
                        ledger.completed += st.completed;
                        ledger.failed += st.failed;
                        ledger.canceled += st.canceled;
                        let (live_run, live_pend) = wm.launcher().totals();
                        ledger.lost_in_crash += live_run + live_pend;
                        ledger.undelivered_failed += wm.launcher().undelivered_events() as u64;
                        let tt = wm.tracker_totals();
                        ledger.t_submitted += tt.submitted;
                        ledger.t_completed += tt.completed;
                        ledger.t_failed += tt.failed;
                        ledger.t_timed_out += tt.timed_out;
                        ledger.t_lost_in_crash += tt.live;
                        // Background jobs die with the incarnation's
                        // engine: book terminal states here (live ones are
                        // already inside the `totals()` above).
                        for &id in &bg_ids {
                            match wm.launcher().state(id) {
                                Some(JobState::Completed) => ledger.background_completed += 1,
                                Some(JobState::Failed) => ledger.background_failed += 1,
                                _ => {}
                            }
                        }
                        bg_ids.clear();
                        run_profiler.merge(wm.profiler());
                        run_cg_tl.merge(wm.cg_timeline());
                        run_aa_tl.merge(wm.aa_timeline());
                        self.tracer.instant_at(
                            t,
                            "chaos",
                            "chaos.crash",
                            &[
                                ("run", self.run_idx.into()),
                                ("lost", (live_run + live_pend).into()),
                            ],
                        );
                        // Rebuild scheduler + WM and restore. The new
                        // incarnation gets its own seed streams: recovery
                        // must not replay the dead WM's random decisions.
                        let mut graph = ResourceGraph::new(machine.clone());
                        graph.set_linear_scan(self.cfg.linear_scan);
                        let mut engine = SchedEngine::new(
                            graph,
                            self.cfg.policy,
                            self.cfg.coupling,
                            Costs::summit_campaign(),
                        );
                        engine.set_tracer(self.tracer.clone());
                        engine.set_sched_policy(self.cfg.sched_policy);
                        engine.set_legacy_fcfs(self.cfg.legacy_sched);
                        if self.cfg.record_jobs {
                            engine.set_recording(true);
                        }
                        let cfg2 = WmConfig {
                            seed: run_seeds.seed_for(&format!("wm-crash-{wm_crashes}")),
                            ..wm_cfg_base.clone()
                        };
                        wm = app3::build_three_scale_wm(cfg2, engine, 14);
                        wm.set_tracer(self.tracer.clone());
                        wm.restore(&ckpt);
                        wm.set_cadence(next_fb, next_prof);
                        wm.set_runtime_model(make_model(StdRng::seed_from_u64(
                            run_seeds.seed_for(&format!("perf-crash-{wm_crashes}")),
                        )));
                        // The continuum job died with the allocation's job
                        // table; resubmit it for the remainder of the run.
                        cont_id = wm.launcher_mut().submit(
                            JobSpec::new(
                                JobClass::Continuum,
                                JobShape::continuum(cont_nodes),
                                run_end.since(t),
                            ),
                            t,
                        );
                        ledger.continuum_submitted += 1;
                        // Scheduler counters legitimately restart from zero.
                        watch.reset();
                    }
                }

                // The WM cycle.
                wm.tick_into(t, &mut store, &mut wm_events);
            }

            for ev in wm_events.drain(..) {
                match ev {
                    WmEvent::CgSimStarted { sim_id, .. } | WmEvent::AaSimStarted { sim_id, .. } => {
                        placed += 1;
                        if let Some(rec) = self.sims.lock().get_mut(&*sim_id) {
                            rec.started_at = Some(t);
                        }
                    }
                    WmEvent::CgSimFinished { sim_id } | WmEvent::AaSimFinished { sim_id } => {
                        completed += 1;
                        if let Some(rec) = self.sims.lock().get_mut(&*sim_id) {
                            rec.achieved = rec.target;
                            rec.started_at = None;
                        }
                    }
                    _ => {}
                }
            }
            // Lifetime counters must never run backwards, fault plan or not.
            {
                let st = wm.launcher().stats();
                let ws = wm.stats();
                watch.observe(&[
                    st.submitted,
                    st.placed,
                    st.completed,
                    st.failed,
                    st.canceled,
                    ws.patches_ingested,
                    ws.frames_ingested,
                    ws.cg_selected,
                    ws.aa_selected,
                    ws.cg_sims_started,
                    ws.aa_sims_started,
                    ws.cg_sims_completed,
                    ws.aa_sims_completed,
                    ws.feedback_iterations,
                    ws.feedback_frames,
                    ws.jobs_timed_out,
                    ws.jobs_abandoned,
                ]);
            }
            if load_time.is_none() {
                let (r, _) = wm.launcher().class_counts(JobClass::CgSim);
                if r * 10 >= cg_target * 9 {
                    load_time = Some(t);
                }
            }
            control.publish(t, placed, completed);
            prev_t = t;
            match self.cfg.mode {
                DriveMode::Ticked => t += self.cfg.poll_interval,
                DriveMode::EventDriven => {
                    if t >= run_end {
                        break;
                    }
                    // Next-event time advance: jump straight to the safe
                    // horizon — the earliest instant anything can happen,
                    // under the documented tie-break (snapshot, workload,
                    // failure, chaos, WM) — clamped so the run closes with a
                    // final pass exactly at `end`. Every source returns a
                    // wakeup strictly after `t` once its due work is
                    // drained; a stale (already-past) horizon is a source
                    // contract violation, counted instead of silently
                    // masked as 1 µs of drift (the legacy `.max(t + 1µs)`
                    // clamp), and fatal under debug.
                    let horizon = driver::next_horizon(
                        next_snapshot,
                        bg_src.as_deref().and_then(|s| s.next_at()),
                        failures.next_at(),
                        plan_q.peek_time(),
                        wm.next_wakeup(t),
                    );
                    let (next_t, forced) = driver::advance_clock(t, horizon.at, run_end);
                    if forced {
                        forced_advances += 1;
                        debug_assert!(
                            false,
                            "stale wakeup from {:?} at t={}us",
                            horizon.source,
                            t.as_micros()
                        );
                    }
                    t = next_t;
                }
            }
        }

        // Run over (or paused — the close-out is identical): credit
        // partial trajectories to interrupted sims and queue them for the
        // next allocation (restart from checkpoints).
        let paused_at = if run_end < end { Some(run_end) } else { None };
        let executed_hours = run_end.as_micros() / 3_600_000_000;
        debug_assert_eq!(
            executed_hours * 3_600_000_000,
            run_end.as_micros(),
            "run ends and pause points are whole-hour aligned"
        );
        let mut ckpt = wm.checkpoint();
        {
            let mut sims = self.sims.lock();
            for (id, rec) in sims.iter_mut() {
                if let Some(started) = rec.started_at.take() {
                    let days = run_end.since(started).as_hours_f64() / 24.0;
                    rec.achieved = (rec.achieved + rec.rate_per_day * days).min(rec.target);
                    if rec.achieved < rec.target {
                        if id.starts_with("cg-") {
                            ckpt.cg_ready.insert(0, id.clone());
                        } else {
                            ckpt.aa_ready.insert(0, id.clone());
                        }
                    }
                }
            }
        }

        // Fold the run's perf samples and profile into campaign state.
        {
            let mut s = samples.lock();
            self.cg_samples.append(&mut s.0);
            self.aa_samples.append(&mut s.1);
        }
        run_profiler.merge(wm.profiler());
        run_cg_tl.merge(wm.cg_timeline());
        run_aa_tl.merge(wm.aa_timeline());
        self.profiler.merge(&run_profiler);
        self.hours_done += executed_hours as f64;

        // Close the books on the final incarnation and reconcile.
        {
            let st = wm.launcher().stats();
            ledger.submitted += st.submitted;
            ledger.placed += st.placed;
            ledger.completed += st.completed;
            ledger.failed += st.failed;
            ledger.canceled += st.canceled;
            let (live_run, live_pend) = wm.launcher().totals();
            ledger.live_end += live_run + live_pend;
            ledger.undelivered_failed += wm.launcher().undelivered_events() as u64;
            let tt = wm.tracker_totals();
            ledger.t_submitted += tt.submitted;
            ledger.t_completed += tt.completed;
            ledger.t_failed += tt.failed;
            ledger.t_timed_out += tt.timed_out;
            ledger.t_live_end += tt.live;
            for &id in &bg_ids {
                match wm.launcher().state(id) {
                    Some(JobState::Completed) => ledger.background_completed += 1,
                    Some(JobState::Failed) => ledger.background_failed += 1,
                    _ => {}
                }
            }
            ledger.monotonic_violations = watch.violations();
        }
        debug_assert!(
            ledger.check().is_empty(),
            "run {} accounting does not reconcile: {:?}",
            self.run_idx,
            ledger.check()
        );

        let gpu_mean = {
            let series = run_profiler.gpu_series();
            if series.is_empty() {
                0.0
            } else {
                series.iter().sum::<f64>() / series.len() as f64
            }
        };
        let peak = run_cg_tl.peak_running() + run_aa_tl.peak_running();
        let wm_stats = wm.stats();
        let class_waits = wm.launcher().class_waits();
        let job_log = wm
            .launcher_mut()
            .take_log()
            .map(|log| workload::TraceFile::from_sched_log(&log).to_csv());
        let report = RunReport {
            nodes,
            hours: executed_hours,
            node_hours: nodes as u64 * executed_hours,
            placed,
            sims_completed: completed,
            gpu_mean_occupancy: gpu_mean,
            load_time,
            cg_timeline: run_cg_tl,
            aa_timeline: run_aa_tl,
            peak_gpu_jobs: peak,
            nodes_failed,
            jobs_crashed,
            wm_crashes,
            jobs_hung,
            store_faults_injected: store.injected(),
            store_ops_delayed: store.delayed().0,
            jobs_timed_out: wm_stats.jobs_timed_out,
            jobs_abandoned: wm_stats.jobs_abandoned,
            ledger,
            driver_iterations,
            forced_advances,
            paused_at,
            class_waits,
            job_log,
        };
        if let Some(p) = paused_at {
            self.tracer.instant_at(
                p,
                "campaign",
                "run.paused",
                &[("run", self.run_idx.into()), ("requested", hours.into())],
            );
        }
        self.tracer.instant_at(
            run_end,
            "campaign",
            "run.end",
            &[
                ("run", self.run_idx.into()),
                ("placed", placed.into()),
                ("completed", completed.into()),
            ],
        );
        self.ckpt = Some(ckpt);
        self.reports.push(report.clone());
        report
    }

    /// Runs the paper's Table 1 schedule (or a scaled version of it).
    /// Returns (nodes, hours, runs, node_hours) rows.
    pub fn run_table(&mut self, rows: &[(u32, u64, u32)]) -> Vec<(u32, u64, u32, u64)> {
        let mut out = Vec::with_capacity(rows.len());
        for &(nodes, hours, count) in rows {
            for _ in 0..count {
                self.execute_run(nodes, hours);
            }
            out.push((nodes, hours, count, nodes as u64 * hours * count as u64));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            patches_per_snapshot: 6,
            frames_per_sim_per_min: 0.05,
            cg_target_us: 0.5, // short targets so sims turn over in-test
            aa_target_ns: (5.0, 8.0),
            queue_cap: 500,
            policy: MatchPolicy::FirstMatch,
            coupling: Coupling::Asynchronous,
            submit_rate_per_min: 600,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn single_run_reaches_high_gpu_occupancy() {
        let mut c = Campaign::new(small_cfg());
        let report = c.execute_run(20, 24);
        assert_eq!(report.node_hours, 480);
        assert!(report.placed > 50, "jobs placed: {}", report.placed);
        assert!(
            report.gpu_mean_occupancy > 50.0,
            "mean GPU occupancy {:.1}%",
            report.gpu_mean_occupancy
        );
        assert!(report.load_time.is_some(), "machine should fully load");
        let (snaps, patches, frames) = c.data_counts();
        assert!(snaps > 900, "one snapshot per 90s for 24h: {snaps}");
        assert_eq!(patches, snaps * 6);
        assert!(frames > 0);
    }

    #[test]
    fn campaign_restarts_carry_over_sims() {
        let mut c = Campaign::new(small_cfg());
        c.execute_run(10, 6);
        let lens_after_1: Vec<f64> = c.cg_lengths();
        let spawned_1 = lens_after_1.len();
        assert!(spawned_1 > 0);
        c.execute_run(10, 6);
        let lens_after_2 = c.cg_lengths();
        assert!(lens_after_2.len() >= spawned_1);
        // Some trajectories grow across runs (restart continues them) or
        // more sims appear.
        let sum1: f64 = lens_after_1.iter().sum();
        let sum2: f64 = lens_after_2.iter().sum();
        assert!(
            sum2 > sum1,
            "campaign accumulates trajectory: {sum1} -> {sum2}"
        );
    }

    #[test]
    fn length_distribution_caps_at_target() {
        let mut c = Campaign::new(small_cfg());
        c.execute_run(10, 24);
        c.execute_run(10, 24);
        let lens = c.cg_lengths();
        assert!(!lens.is_empty());
        assert!(lens.iter().all(|&l| l <= 0.5 + 1e-9));
        // With 0.5 µs targets at ~1 µs/day, a 48h campaign completes many.
        let done = lens.iter().filter(|&&l| l >= 0.5 - 1e-9).count();
        assert!(done > 0, "some sims should reach target");
    }

    #[test]
    fn perf_samples_accumulate_with_spawns() {
        let mut c = Campaign::new(small_cfg());
        c.execute_run(10, 12);
        assert!(!c.cg_samples().is_empty());
        assert!(!c.continuum_samples().is_empty());
        for &(size, rate) in c.cg_samples() {
            assert!(size > 100_000.0 && rate > 0.1);
        }
    }

    #[test]
    fn table_schedule_accumulates_node_hours() {
        let mut c = Campaign::new(CampaignConfig {
            poll_interval: SimDuration::from_mins(10),
            ..small_cfg()
        });
        let rows = c.run_table(&[(5, 6, 2), (10, 6, 1)]);
        assert_eq!(rows[0], (5, 6, 2, 60));
        assert_eq!(rows[1], (10, 6, 1, 60));
        assert_eq!(c.reports().len(), 3);
        let total: u64 = rows.iter().map(|r| r.3).sum();
        assert_eq!(total, 120);
    }

    /// Regression: an over-unity CG fraction (the "70 instead of 0.70"
    /// operator typo) makes `cg_target` exceed the machine's GPU count;
    /// the AA ready-buffer sizing used to underflow in `u64` — a panic in
    /// debug, a multi-exabyte buffer request in release. It must saturate
    /// to the floor instead and the run must still execute.
    #[test]
    fn overfull_cg_fraction_saturates_aa_buffer() {
        let cfg = CampaignConfig {
            cg_fraction: 70.0,
            patches_per_snapshot: 4,
            policy: MatchPolicy::FirstMatch,
            coupling: Coupling::Asynchronous,
            ..CampaignConfig::default()
        };
        let mut c = Campaign::new(cfg);
        let r = c.execute_run(5, 6);
        assert!(r.placed > 0, "the CG-only machine still places jobs");
        assert!(r.ledger.check().is_empty(), "{:?}", r.ledger.check());
    }

    #[test]
    fn default_config_validates() {
        assert_eq!(CampaignConfig::default().validate(), Ok(()));
        assert_eq!(CampaignConfig::scale_rung(72).validate(), Ok(()));
    }

    #[test]
    fn zero_divisor_is_a_typed_error_not_a_silent_rewrite() {
        let cfg = CampaignConfig {
            ready_buffer_divisor: 0,
            ..CampaignConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroReadyBufferDivisor));
        assert_eq!(
            cfg.validate().unwrap_err().to_string(),
            "ready_buffer_divisor must be >= 1 (got 0)"
        );
    }

    #[test]
    fn tiny_cap_is_a_typed_error_not_a_silent_rewrite() {
        let cfg = CampaignConfig {
            ready_buffer_cap: 0,
            ..CampaignConfig::default()
        };
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ReadyBufferCapTooSmall { cap: 0 })
        );
        let cfg = CampaignConfig {
            ready_buffer_cap: 7,
            ..CampaignConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = CampaignConfig {
            ready_buffer_cap: 8,
            ..CampaignConfig::default()
        };
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "invalid campaign config")]
    fn campaign_new_rejects_invalid_configs_loudly() {
        let _ = Campaign::new(CampaignConfig {
            ready_buffer_divisor: 0,
            ..CampaignConfig::default()
        });
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;

    #[test]
    fn node_failures_drain_and_resubmit() {
        let mut cfg = CampaignConfig {
            patches_per_snapshot: 6,
            frames_per_sim_per_min: 0.02,
            cg_target_us: 2.0,
            queue_cap: 500,
            policy: MatchPolicy::FirstMatch,
            coupling: Coupling::Asynchronous,
            submit_rate_per_min: 600,
            ..CampaignConfig::default()
        };
        cfg.node_failures_per_day = 10.0; // aggressive attrition (half the allocation per day)
        let mut c = Campaign::new(cfg);
        c.execute_run(20, 12);
        let r = c.execute_run(20, 12);
        assert!(r.nodes_failed >= 2, "failures occurred: {}", r.nodes_failed);
        assert!(r.jobs_crashed > 0, "jobs crashed: {}", r.jobs_crashed);
        // The campaign keeps making progress regardless.
        assert!(
            r.gpu_mean_occupancy > 40.0,
            "occupancy survives attrition: {:.1}%",
            r.gpu_mean_occupancy
        );
    }

    #[test]
    fn zero_failure_rate_is_quiet() {
        let cfg = CampaignConfig {
            node_failures_per_day: 0.0,
            patches_per_snapshot: 4,
            policy: MatchPolicy::FirstMatch,
            coupling: Coupling::Asynchronous,
            ..CampaignConfig::default()
        };
        let mut c = Campaign::new(cfg);
        let r = c.execute_run(5, 6);
        assert_eq!(r.nodes_failed, 0);
        assert_eq!(r.jobs_crashed, 0);
    }
}
