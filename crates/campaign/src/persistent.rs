//! The persistent workflow — the paper's "Next Leap" (§6), implemented.
//!
//! "There is a growing need for developing persistent workflows to
//! seamlessly connect software stacks and data services across allocations
//! and even across clusters … In future iterations of MuMMI, we envision a
//! persistent workflow that can coordinate variable sized allocations as
//! resources become available on different clusters."
//!
//! [`PersistentCampaign`] consumes a stream of [`AllocationOffer`]s —
//! whatever sizes become available, on whatever machine — and continues
//! one scientific campaign across all of them through the checkpoint
//! mechanism. The workflow state (trajectory progress, prepared
//! simulations, counters) survives every hop.

use resources::{MachineSpec, NodeSpec};

use crate::run::{Campaign, CampaignConfig, RunReport};

/// One allocation becoming available to the persistent workflow.
#[derive(Debug, Clone)]
pub struct AllocationOffer {
    /// Cluster name (selects the node architecture).
    pub cluster: String,
    /// Node architecture of the cluster.
    pub node: NodeSpec,
    /// Allocation size in nodes.
    pub nodes: u32,
    /// Allocation duration in hours.
    pub hours: u64,
}

impl AllocationOffer {
    /// A Summit allocation.
    pub fn summit(nodes: u32, hours: u64) -> AllocationOffer {
        AllocationOffer {
            cluster: "summit".into(),
            node: NodeSpec::summit(),
            nodes,
            hours,
        }
    }

    /// A Lassen allocation (4 GPUs/node — different architecture).
    pub fn lassen(nodes: u32, hours: u64) -> AllocationOffer {
        AllocationOffer {
            cluster: "lassen".into(),
            node: NodeSpec::lassen(),
            nodes,
            hours,
        }
    }
}

/// Aggregate accounting per cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterUsage {
    /// Cluster name.
    pub cluster: String,
    /// Allocations consumed.
    pub allocations: u32,
    /// Node hours consumed.
    pub node_hours: u64,
}

/// A campaign that hops across whatever allocations appear.
pub struct PersistentCampaign {
    campaign: Campaign,
    usage: Vec<ClusterUsage>,
}

impl PersistentCampaign {
    /// Starts a persistent campaign.
    pub fn new(cfg: CampaignConfig) -> PersistentCampaign {
        PersistentCampaign {
            campaign: Campaign::new(cfg),
            usage: Vec::new(),
        }
    }

    /// The underlying campaign (figure data, lengths, profiler).
    pub fn campaign(&self) -> &Campaign {
        &self.campaign
    }

    /// Consumes one allocation offer: the workflow restores its checkpoint
    /// onto the offered machine, runs for the offered duration, and
    /// checkpoints again.
    pub fn consume(&mut self, offer: &AllocationOffer) -> RunReport {
        let machine = MachineSpec::custom(
            &format!("{}-{}", offer.cluster, offer.nodes),
            offer.nodes,
            offer.node,
        );
        let report = self.campaign.execute_run_on(machine, offer.hours);
        match self.usage.iter_mut().find(|u| u.cluster == offer.cluster) {
            Some(u) => {
                u.allocations += 1;
                u.node_hours += report.node_hours;
            }
            None => self.usage.push(ClusterUsage {
                cluster: offer.cluster.clone(),
                allocations: 1,
                node_hours: report.node_hours,
            }),
        }
        report
    }

    /// Consumes a whole offer stream in order.
    pub fn consume_all(&mut self, offers: &[AllocationOffer]) -> Vec<RunReport> {
        offers.iter().map(|o| self.consume(o)).collect()
    }

    /// Per-cluster accounting.
    pub fn usage(&self) -> &[ClusterUsage] {
        &self.usage
    }

    /// Total node hours across clusters.
    pub fn total_node_hours(&self) -> u64 {
        self.usage.iter().map(|u| u.node_hours).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resources::MatchPolicy;
    use sched::Coupling;

    fn cfg() -> CampaignConfig {
        CampaignConfig {
            patches_per_snapshot: 6,
            frames_per_sim_per_min: 0.03,
            cg_target_us: 1.0,
            queue_cap: 500,
            policy: MatchPolicy::FirstMatch,
            coupling: Coupling::Asynchronous,
            submit_rate_per_min: 600,
            node_failures_per_day: 0.0,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_continues_across_clusters() {
        let mut p = PersistentCampaign::new(cfg());
        let offers = vec![
            AllocationOffer::summit(10, 12),
            AllocationOffer::lassen(16, 12), // different architecture
            AllocationOffer::summit(6, 6),
            AllocationOffer::lassen(8, 12),
        ];
        let reports = p.consume_all(&offers);
        assert_eq!(reports.len(), 4);

        // Trajectory accumulates monotonically across hops.
        let total: f64 = p.campaign().cg_lengths().iter().sum();
        assert!(total > 0.0);
        // Warm restarts on later hops load fast even on the other cluster.
        assert!(
            reports[3].gpu_mean_occupancy > 50.0,
            "4th hop occupancy {:.1}%",
            reports[3].gpu_mean_occupancy
        );

        // Accounting.
        assert_eq!(p.usage().len(), 2);
        let summit = p.usage().iter().find(|u| u.cluster == "summit").unwrap();
        assert_eq!(summit.allocations, 2);
        assert_eq!(summit.node_hours, 10 * 12 + 6 * 6);
        assert_eq!(p.total_node_hours(), 120 + 36 + 16 * 12 + 8 * 12);
    }

    #[test]
    fn heterogeneous_gpu_counts_are_respected() {
        let mut p = PersistentCampaign::new(cfg());
        let r = p.consume(&AllocationOffer::lassen(10, 8));
        // Lassen: 4 GPUs/node → at most 40 GPU jobs simultaneously.
        assert!(r.peak_gpu_jobs <= 40, "peak {}", r.peak_gpu_jobs);
        assert!(r.placed > 0);
    }
}
