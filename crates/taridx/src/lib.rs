//! Indexed tar archives — the `pytaridx` stand-in.
//!
//! Large MuMMI campaigns create over a billion files; "one of the simplest
//! ways of reducing the inode count is to collect files into archives"
//! (§4.2). This crate reimplements the paper's `pytaridx` design in Rust:
//!
//! - archives are **standard POSIX ustar tar files**, portable and readable
//!   with the commonly available decoder (`tar -tf` works);
//! - writes are **append-only**, which "prevents data corruption due to
//!   hardware/software failures";
//! - a **sidecar index** (`<archive>.idx`) provides random access to any
//!   member without scanning the archive;
//! - re-inserting a key appends a new member and the index takes the latest
//!   copy as the correct value — the paper's crash-recovery semantics;
//! - a lost or stale index can be **rebuilt by scanning** the tar headers
//!   ([`IndexedTar::recover_index`]).
//!
//! ```
//! use taridx::IndexedTar;
//! let dir = std::env::temp_dir().join(format!("taridx-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("frames.tar");
//!
//! let mut tar = IndexedTar::create(&path).unwrap();
//! tar.append("frame-0001", b"rdf data").unwrap();
//! tar.flush().unwrap();
//! assert_eq!(tar.read("frame-0001").unwrap(), b"rdf data");
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

mod archive;
mod header;
mod index;

pub use archive::IndexedTar;
pub use header::{TarHeader, BLOCK_SIZE};
pub use index::{Index, IndexEntry};

use std::fmt;
use std::io;

/// Errors produced by archive operations.
#[derive(Debug)]
pub enum TarError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The requested key is not present in the index.
    KeyNotFound(String),
    /// A key longer than tar's 100-byte name field (we do not use prefixes).
    KeyTooLong(String),
    /// The archive bytes do not parse as a ustar stream.
    Corrupt(String),
}

impl fmt::Display for TarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TarError::Io(e) => write!(f, "i/o error: {e}"),
            TarError::KeyNotFound(k) => write!(f, "key not found: {k}"),
            TarError::KeyTooLong(k) => write!(f, "key exceeds 100 bytes: {k}"),
            TarError::Corrupt(m) => write!(f, "corrupt archive: {m}"),
        }
    }
}

impl std::error::Error for TarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TarError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TarError {
    fn from(e: io::Error) -> Self {
        TarError::Io(e)
    }
}

/// Convenience alias for archive results.
pub type Result<T> = std::result::Result<T, TarError>;
