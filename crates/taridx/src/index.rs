//! The sidecar index: key → (offset, size) with last-write-wins semantics.
//!
//! The on-disk format is a plain text file, one record per line:
//!
//! ```text
//! <data_offset>\t<size>\t<key>\n
//! ```
//!
//! Records are appended in archive order; when a key appears more than once
//! (a re-insert after a failed write) the **last** record wins, matching the
//! paper: "in the event of a failure during a write, the same key gets
//! reinserted and is taken to be the correct value". Deleting a key only
//! touches the index — the tar data is immutable.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

/// Location of one member's payload inside the archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Byte offset of the payload (not the header) in the tar file.
    pub offset: u64,
    /// Payload size in bytes.
    pub size: u64,
}

/// In-memory index over the live members of an archive.
///
/// Keys are held in a `BTreeMap` so every iteration (and everything built
/// on it, like `TarStore::list`) observes the same ascending lexicographic
/// order — listing order must not depend on which backend served it.
#[derive(Debug, Clone, Default)]
pub struct Index {
    map: BTreeMap<String, IndexEntry>,
    /// Total records ever appended, including superseded re-inserts; the
    /// archive itself holds the full append history.
    appended: usize,
}

impl Index {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a new member; a repeated key supersedes the previous entry.
    pub fn insert(&mut self, key: &str, entry: IndexEntry) {
        self.appended += 1;
        self.map.insert(key.to_string(), entry);
    }

    /// Looks up the live entry for `key`.
    pub fn get(&self, key: &str) -> Option<IndexEntry> {
        self.map.get(key).copied()
    }

    /// Removes `key` from the live view (the tar data remains).
    pub fn remove(&mut self, key: &str) -> Option<IndexEntry> {
        self.map.remove(key)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when there are no live keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is live.
    pub fn contains(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// Iterates live keys in ascending lexicographic order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(|s| s.as_str())
    }

    /// Total records ever appended (including superseded ones).
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// Serializes the live view to the sidecar file at `path`, atomically
    /// (write to `<path>.tmp`, then rename) to guard against a crash
    /// mid-flush leaving a truncated index.
    ///
    /// Exactly one record per live key, in key order — the sidecar is a
    /// canonical snapshot of the live mapping, not a replay log. Last-wins
    /// recovery over superseded records is the job of the archive scan
    /// (`IndexedTar::recover_index`), which re-reads the tar stream where
    /// the full append history actually lives.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("idx.tmp");
        {
            let mut f = io::BufWriter::new(fs::File::create(&tmp)?);
            for (key, e) in &self.map {
                writeln!(f, "{}\t{}\t{}", e.offset, e.size, key)?;
            }
            f.flush()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads an index from the sidecar file at `path`.
    pub fn load(path: &Path) -> io::Result<Index> {
        let f = BufReader::new(fs::File::open(path)?);
        let mut idx = Index::new();
        for (lineno, line) in f.lines().enumerate() {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let parse = |s: Option<&str>| -> io::Result<u64> {
                s.and_then(|v| v.parse().ok()).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad index record at line {}", lineno + 1),
                    )
                })
            };
            let offset = parse(parts.next())?;
            let size = parse(parts.next())?;
            let key = parts.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("missing key at line {}", lineno + 1),
                )
            })?;
            idx.insert(key, IndexEntry { offset, size });
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("taridx-index-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn insert_get_remove() {
        let mut idx = Index::new();
        idx.insert(
            "a",
            IndexEntry {
                offset: 512,
                size: 10,
            },
        );
        assert!(idx.contains("a"));
        assert_eq!(idx.get("a").unwrap().size, 10);
        assert!(idx.remove("a").is_some());
        assert!(!idx.contains("a"));
        assert!(idx.remove("a").is_none());
    }

    #[test]
    fn reinsert_last_wins() {
        let mut idx = Index::new();
        idx.insert(
            "k",
            IndexEntry {
                offset: 512,
                size: 5,
            },
        );
        idx.insert(
            "k",
            IndexEntry {
                offset: 2048,
                size: 7,
            },
        );
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get("k").unwrap().offset, 2048);
        assert_eq!(idx.appended(), 2);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut idx = Index::new();
        idx.insert(
            "alpha",
            IndexEntry {
                offset: 512,
                size: 100,
            },
        );
        idx.insert(
            "beta/with/slashes",
            IndexEntry {
                offset: 1536,
                size: 200,
            },
        );
        idx.insert(
            "alpha",
            IndexEntry {
                offset: 4096,
                size: 50,
            },
        );
        let p = tmpfile("roundtrip.idx");
        idx.save(&p).unwrap();
        let loaded = Index::load(&p).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get("alpha").unwrap().offset, 4096);
        assert_eq!(loaded.get("beta/with/slashes").unwrap().size, 200);
        fs::remove_file(p).unwrap();
    }

    #[test]
    fn removed_keys_stay_removed_after_save() {
        let mut idx = Index::new();
        idx.insert(
            "gone",
            IndexEntry {
                offset: 512,
                size: 1,
            },
        );
        idx.insert(
            "kept",
            IndexEntry {
                offset: 1024,
                size: 2,
            },
        );
        idx.remove("gone");
        let p = tmpfile("removed.idx");
        idx.save(&p).unwrap();
        let loaded = Index::load(&p).unwrap();
        assert!(!loaded.contains("gone"));
        assert!(loaded.contains("kept"));
        fs::remove_file(p).unwrap();
    }

    #[test]
    fn keys_iterate_in_lexicographic_order() {
        let mut idx = Index::new();
        for key in ["zebra", "alpha", "mid", "alpha/sub"] {
            idx.insert(
                key,
                IndexEntry {
                    offset: 512,
                    size: 1,
                },
            );
        }
        let keys: Vec<&str> = idx.keys().collect();
        assert_eq!(keys, vec!["alpha", "alpha/sub", "mid", "zebra"]);
    }

    #[test]
    fn save_writes_one_record_per_live_key_in_key_order() {
        let mut idx = Index::new();
        // Two identical (key, entry) records in the append history used to
        // produce duplicate sidecar lines.
        let e = IndexEntry {
            offset: 512,
            size: 4,
        };
        idx.insert("dup", e);
        idx.insert("dup", e);
        idx.insert(
            "b",
            IndexEntry {
                offset: 1024,
                size: 1,
            },
        );
        idx.insert(
            "a",
            IndexEntry {
                offset: 1536,
                size: 2,
            },
        );
        let p = tmpfile("canonical.idx");
        idx.save(&p).unwrap();
        let text = fs::read_to_string(&p).unwrap();
        assert_eq!(text, "1536\t2\ta\n1024\t1\tb\n512\t4\tdup\n");
        fs::remove_file(p).unwrap();
    }

    #[test]
    fn roundtrip_covers_superseded_reinserted_and_removed_keys() {
        let mut idx = Index::new();
        // Superseded: two versions, last wins.
        idx.insert(
            "superseded",
            IndexEntry {
                offset: 512,
                size: 10,
            },
        );
        idx.insert(
            "superseded",
            IndexEntry {
                offset: 2048,
                size: 20,
            },
        );
        // Removed, then re-inserted at a new location.
        idx.insert(
            "reborn",
            IndexEntry {
                offset: 3072,
                size: 30,
            },
        );
        idx.remove("reborn");
        idx.insert(
            "reborn",
            IndexEntry {
                offset: 4096,
                size: 40,
            },
        );
        // Removed and never re-inserted.
        idx.insert(
            "gone",
            IndexEntry {
                offset: 5120,
                size: 50,
            },
        );
        idx.remove("gone");

        let p = tmpfile("full-roundtrip.idx");
        idx.save(&p).unwrap();
        let loaded = Index::load(&p).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get("superseded").unwrap().offset, 2048);
        assert_eq!(loaded.get("reborn").unwrap().offset, 4096);
        assert!(!loaded.contains("gone"));
        // Saving the loaded copy reproduces the same canonical bytes.
        let p2 = tmpfile("full-roundtrip-2.idx");
        loaded.save(&p2).unwrap();
        assert_eq!(
            fs::read_to_string(&p).unwrap(),
            fs::read_to_string(&p2).unwrap()
        );
        fs::remove_file(p).unwrap();
        fs::remove_file(p2).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let p = tmpfile("garbage.idx");
        fs::write(&p, "not-a-number\tnope\tkey\n").unwrap();
        assert!(Index::load(&p).is_err());
        fs::remove_file(p).unwrap();
    }
}
