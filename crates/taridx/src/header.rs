//! POSIX ustar header encoding and decoding.
//!
//! Only the subset needed for archive members (regular files, names up to
//! 100 bytes) is implemented; that is what pytaridx produces, and it keeps
//! the archives decodable by any standard `tar`.

use crate::{Result, TarError};

/// Tar block size in bytes; headers and data are padded to this.
pub const BLOCK_SIZE: usize = 512;

const NAME_LEN: usize = 100;
const MAGIC: &[u8; 6] = b"ustar\0";

/// A decoded member header: the fields taridx cares about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TarHeader {
    /// Member name (the taridx key).
    pub name: String,
    /// Member payload size in bytes.
    pub size: u64,
    /// Modification time, seconds since the epoch.
    pub mtime: u64,
}

impl TarHeader {
    /// Encodes a ustar header block for a regular file.
    pub fn encode(name: &str, size: u64, mtime: u64) -> Result<[u8; BLOCK_SIZE]> {
        if name.len() > NAME_LEN {
            return Err(TarError::KeyTooLong(name.to_string()));
        }
        let mut block = [0u8; BLOCK_SIZE];
        block[..name.len()].copy_from_slice(name.as_bytes());
        write_octal(&mut block[100..108], 0o644); // mode
        write_octal(&mut block[108..116], 0); // uid
        write_octal(&mut block[116..124], 0); // gid
        write_octal12(&mut block[124..136], size);
        write_octal12(&mut block[136..148], mtime);
        block[156] = b'0'; // typeflag: regular file
        block[257..263].copy_from_slice(MAGIC);
        block[263..265].copy_from_slice(b"00"); // version
                                                // uname/gname left empty; dev major/minor zeroed octal.
        write_octal(&mut block[329..337], 0);
        write_octal(&mut block[337..345], 0);
        // Checksum: computed with the checksum field set to spaces.
        block[148..156].fill(b' ');
        let sum: u64 = block.iter().map(|&b| b as u64).sum();
        let chk = format!("{sum:06o}\0 ");
        block[148..156].copy_from_slice(chk.as_bytes());
        Ok(block)
    }

    /// Decodes a header block. Returns `Ok(None)` for an all-zero block
    /// (end-of-archive marker).
    pub fn decode(block: &[u8; BLOCK_SIZE]) -> Result<Option<TarHeader>> {
        if block.iter().all(|&b| b == 0) {
            return Ok(None);
        }
        let stored = parse_octal(&block[148..156])
            .ok_or_else(|| TarError::Corrupt("bad checksum field".into()))?;
        let mut sum: u64 = block.iter().map(|&b| b as u64).sum();
        // Recompute as if the checksum field were spaces.
        for &b in &block[148..156] {
            sum = sum - b as u64 + b' ' as u64;
        }
        if sum != stored {
            return Err(TarError::Corrupt(format!(
                "checksum mismatch: stored {stored}, computed {sum}"
            )));
        }
        let name_end = block[..NAME_LEN]
            .iter()
            .position(|&b| b == 0)
            .unwrap_or(NAME_LEN);
        let name = std::str::from_utf8(&block[..name_end])
            .map_err(|_| TarError::Corrupt("non-utf8 member name".into()))?
            .to_string();
        let size = parse_octal(&block[124..136])
            .ok_or_else(|| TarError::Corrupt("bad size field".into()))?;
        let mtime = parse_octal(&block[136..148]).unwrap_or(0);
        Ok(Some(TarHeader { name, size, mtime }))
    }

    /// Number of 512-byte blocks occupied by a payload of `size` bytes.
    pub fn data_blocks(size: u64) -> u64 {
        size.div_ceil(BLOCK_SIZE as u64)
    }
}

/// Writes `value` as a NUL-terminated octal field of width `buf.len()`.
fn write_octal(buf: &mut [u8], value: u64) {
    let s = format!("{:0width$o}\0", value, width = buf.len() - 1);
    buf.copy_from_slice(&s.as_bytes()[..buf.len()]);
}

/// Writes `value` into a 12-byte octal field (size/mtime).
fn write_octal12(buf: &mut [u8], value: u64) {
    debug_assert_eq!(buf.len(), 12);
    let s = format!("{value:011o}\0");
    buf.copy_from_slice(s.as_bytes());
}

/// Parses an octal field, tolerating leading spaces and trailing NUL/space.
fn parse_octal(field: &[u8]) -> Option<u64> {
    let trimmed: Vec<u8> = field
        .iter()
        .copied()
        .skip_while(|&b| b == b' ')
        .take_while(|&b| b.is_ascii_digit())
        .collect();
    if trimmed.is_empty() {
        return Some(0);
    }
    let s = std::str::from_utf8(&trimmed).ok()?;
    u64::from_str_radix(s, 8).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_header() {
        let block = TarHeader::encode("patches/p-000042.npz", 70_000, 12345).unwrap();
        let h = TarHeader::decode(&block).unwrap().unwrap();
        assert_eq!(h.name, "patches/p-000042.npz");
        assert_eq!(h.size, 70_000);
        assert_eq!(h.mtime, 12345);
    }

    #[test]
    fn zero_block_is_end_marker() {
        let block = [0u8; BLOCK_SIZE];
        assert_eq!(TarHeader::decode(&block).unwrap(), None);
    }

    #[test]
    fn corrupt_checksum_is_detected() {
        let mut block = TarHeader::encode("k", 10, 0).unwrap();
        block[0] ^= 0xff;
        assert!(matches!(
            TarHeader::decode(&block),
            Err(TarError::Corrupt(_))
        ));
    }

    #[test]
    fn long_keys_are_rejected() {
        let long = "x".repeat(101);
        assert!(matches!(
            TarHeader::encode(&long, 0, 0),
            Err(TarError::KeyTooLong(_))
        ));
        // Exactly 100 bytes is fine.
        let exact = "y".repeat(100);
        let block = TarHeader::encode(&exact, 0, 0).unwrap();
        assert_eq!(TarHeader::decode(&block).unwrap().unwrap().name, exact);
    }

    #[test]
    fn data_blocks_rounds_up() {
        assert_eq!(TarHeader::data_blocks(0), 0);
        assert_eq!(TarHeader::data_blocks(1), 1);
        assert_eq!(TarHeader::data_blocks(512), 1);
        assert_eq!(TarHeader::data_blocks(513), 2);
    }

    #[test]
    fn header_magic_is_ustar() {
        let block = TarHeader::encode("k", 1, 0).unwrap();
        assert_eq!(&block[257..263], b"ustar\0");
    }
}
