//! The `IndexedTar` archive: append-only writes, random-access reads.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::header::{TarHeader, BLOCK_SIZE};
use crate::index::{Index, IndexEntry};
use crate::{Result, TarError};

/// An indexed tar archive opened for appending and random-access reading.
///
/// The file layout is a standard ustar stream: for each member, a 512-byte
/// header followed by the payload padded to a block boundary. Two trailing
/// zero blocks terminate the archive; appends overwrite the terminator and
/// re-write it after the new member, so the file is always a valid tar.
#[derive(Debug)]
pub struct IndexedTar {
    file: File,
    path: PathBuf,
    index: Index,
    /// Byte offset where the next member header will be written (i.e. where
    /// the end-of-archive terminator currently starts).
    end: u64,
    /// Seconds-since-epoch stamped into member headers, injected via
    /// [`IndexedTar::set_mtime`]. Never the host wall clock: identical
    /// campaign runs must produce byte-identical archives.
    mtime: u64,
}

impl IndexedTar {
    /// Creates a new, empty archive at `path`, truncating any existing file.
    pub fn create(path: impl AsRef<Path>) -> Result<IndexedTar> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        // Terminator for an empty archive.
        file.write_all(&[0u8; BLOCK_SIZE * 2])?;
        Ok(IndexedTar {
            file,
            path,
            index: Index::new(),
            end: 0,
            mtime: 0,
        })
    }

    /// Opens an existing archive, loading the sidecar index if present and
    /// rebuilding it from the tar stream otherwise.
    pub fn open(path: impl AsRef<Path>) -> Result<IndexedTar> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut tar = IndexedTar {
            file,
            path,
            index: Index::new(),
            end: 0,
            mtime: 0,
        };
        let idx_path = tar.index_path();
        match Index::load(&idx_path) {
            Ok(idx) => {
                tar.index = idx;
                // End offset = after the last member recorded in the scan;
                // scanning is still needed to find the append point, but we
                // can trust the index for reads immediately.
                tar.end = tar.scan_end_offset()?;
            }
            Err(_) => {
                tar.recover_index()?;
            }
        }
        Ok(tar)
    }

    /// Path of the sidecar index file.
    pub fn index_path(&self) -> PathBuf {
        let mut os = self.path.clone().into_os_string();
        os.push(".idx");
        PathBuf::from(os)
    }

    /// Path of the archive itself.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `key` is live in the index.
    pub fn contains(&self, key: &str) -> bool {
        self.index.contains(key)
    }

    /// Live keys, in ascending lexicographic order.
    pub fn keys(&self) -> Vec<String> {
        self.index.keys().map(str::to_string).collect()
    }

    /// Total member records ever appended (including superseded re-inserts).
    pub fn appended(&self) -> usize {
        self.index.appended()
    }

    /// Sets the modification time (seconds since the Unix epoch) stamped
    /// into the headers of subsequently appended members. Callers inject
    /// their own clock — typically the campaign's virtual `SimTime` — so
    /// archive bytes are a pure function of the data written.
    pub fn set_mtime(&mut self, secs_since_epoch: u64) {
        self.mtime = secs_since_epoch;
    }

    /// The mtime currently stamped into new members.
    pub fn mtime(&self) -> u64 {
        self.mtime
    }

    /// Appends a member. If `key` already exists the new copy supersedes the
    /// old one in the index (the old payload stays in the file, unreferenced).
    pub fn append(&mut self, key: &str, data: &[u8]) -> Result<()> {
        let header = TarHeader::encode(key, data.len() as u64, self.mtime)?;
        let data_offset = self.end + BLOCK_SIZE as u64;
        let padded = TarHeader::data_blocks(data.len() as u64) * BLOCK_SIZE as u64;

        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(&header)?;
        self.file.write_all(data)?;
        let pad = padded - data.len() as u64;
        if pad > 0 {
            self.file.write_all(&vec![0u8; pad as usize])?;
        }
        // Re-write the end-of-archive terminator after the new member.
        self.file.write_all(&[0u8; BLOCK_SIZE * 2])?;

        self.end = data_offset + padded;
        self.index.insert(
            key,
            IndexEntry {
                offset: data_offset,
                size: data.len() as u64,
            },
        );
        Ok(())
    }

    /// Reads the live payload for `key`.
    pub fn read(&mut self, key: &str) -> Result<Vec<u8>> {
        let entry = self
            .index
            .get(key)
            .ok_or_else(|| TarError::KeyNotFound(key.to_string()))?;
        self.read_entry(entry)
    }

    /// Reads a payload by its index entry (used for bulk scans).
    pub fn read_entry(&mut self, entry: IndexEntry) -> Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(entry.offset))?;
        let mut buf = vec![0u8; entry.size as usize];
        self.file.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Looks up the index entry for `key` without reading the payload.
    pub fn entry(&self, key: &str) -> Option<IndexEntry> {
        self.index.get(key)
    }

    /// Removes `key` from the live index; the payload remains in the file.
    pub fn remove_key(&mut self, key: &str) -> bool {
        self.index.remove(key).is_some()
    }

    /// Persists the sidecar index and syncs archive data to disk.
    pub fn flush(&mut self) -> Result<()> {
        self.file.flush()?;
        self.index.save(&self.index_path())?;
        Ok(())
    }

    /// Rebuilds the index by scanning tar headers from the start of the
    /// file — the recovery path when the sidecar is missing or corrupt.
    /// Re-inserted keys resolve to their **last** occurrence.
    pub fn recover_index(&mut self) -> Result<()> {
        self.index = Index::new();
        self.end = 0;
        let mut offset = 0u64;
        let file_len = self.file.metadata()?.len();
        let mut block = [0u8; BLOCK_SIZE];
        while offset + BLOCK_SIZE as u64 <= file_len {
            self.file.seek(SeekFrom::Start(offset))?;
            self.file.read_exact(&mut block)?;
            match TarHeader::decode(&block)? {
                None => break, // end-of-archive marker
                Some(h) => {
                    let data_offset = offset + BLOCK_SIZE as u64;
                    self.index.insert(
                        &h.name,
                        IndexEntry {
                            offset: data_offset,
                            size: h.size,
                        },
                    );
                    offset = data_offset + TarHeader::data_blocks(h.size) * BLOCK_SIZE as u64;
                    self.end = offset;
                }
            }
        }
        Ok(())
    }

    /// Rewrites the archive keeping only live index entries, reclaiming the
    /// space of superseded re-inserts and removed keys. Live keys keep
    /// their payloads; the sidecar index is rewritten to match. Returns the
    /// number of bytes reclaimed.
    ///
    /// The rewrite goes through a `.repack` sibling file that atomically
    /// replaces the archive, so a crash mid-repack leaves the original
    /// intact — the same append-only safety argument as normal writes.
    pub fn repack(&mut self) -> Result<u64> {
        let old_size = self.file.metadata()?.len();
        let mut repack_path = self.path.clone().into_os_string();
        repack_path.push(".repack");
        let repack_path = PathBuf::from(repack_path);

        // Index iteration is sorted, so the rewritten layout is
        // deterministic without an extra sort.
        let keys: Vec<String> = self.index.keys().map(str::to_string).collect();
        {
            let mut fresh = IndexedTar::create(&repack_path)?;
            fresh.set_mtime(self.mtime);
            for key in &keys {
                let data = self.read(key)?;
                fresh.append(key, &data)?;
            }
            fresh.flush()?;
        }
        // Atomically swap in the new archive and its sidecar index.
        let mut repack_idx = repack_path.clone().into_os_string();
        repack_idx.push(".idx");
        std::fs::rename(&repack_path, &self.path)?;
        std::fs::rename(PathBuf::from(repack_idx), self.index_path())?;
        let reopened = IndexedTar::open(&self.path)?;
        self.file = reopened.file;
        self.index = reopened.index;
        self.end = reopened.end;
        self.flush()?;
        let new_size = self.file.metadata()?.len();
        Ok(old_size.saturating_sub(new_size))
    }

    /// Scans headers to locate the append point without touching the index.
    fn scan_end_offset(&mut self) -> Result<u64> {
        let mut offset = 0u64;
        let file_len = self.file.metadata()?.len();
        let mut block = [0u8; BLOCK_SIZE];
        let mut end = 0u64;
        while offset + BLOCK_SIZE as u64 <= file_len {
            self.file.seek(SeekFrom::Start(offset))?;
            self.file.read_exact(&mut block)?;
            match TarHeader::decode(&block)? {
                None => break,
                Some(h) => {
                    offset +=
                        BLOCK_SIZE as u64 + TarHeader::data_blocks(h.size) * BLOCK_SIZE as u64;
                    end = offset;
                }
            }
        }
        Ok(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("taridx-arch-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_read_roundtrip() {
        let dir = tmpdir("rt");
        let mut tar = IndexedTar::create(dir.join("a.tar")).unwrap();
        tar.append("one", b"payload-1").unwrap();
        tar.append("two", &vec![7u8; 5000]).unwrap();
        assert_eq!(tar.read("one").unwrap(), b"payload-1");
        assert_eq!(tar.read("two").unwrap(), vec![7u8; 5000]);
        assert_eq!(tar.len(), 2);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_key_errors() {
        let dir = tmpdir("miss");
        let mut tar = IndexedTar::create(dir.join("a.tar")).unwrap();
        assert!(matches!(tar.read("nope"), Err(TarError::KeyNotFound(_))));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn reinsert_supersedes() {
        let dir = tmpdir("re");
        let mut tar = IndexedTar::create(dir.join("a.tar")).unwrap();
        tar.append("k", b"old").unwrap();
        tar.append("k", b"new-value").unwrap();
        assert_eq!(tar.read("k").unwrap(), b"new-value");
        assert_eq!(tar.len(), 1);
        assert_eq!(tar.appended(), 2);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn reopen_with_index_preserves_content_and_appends() {
        let dir = tmpdir("reopen");
        let p = dir.join("a.tar");
        {
            let mut tar = IndexedTar::create(&p).unwrap();
            tar.append("x", b"xx").unwrap();
            tar.flush().unwrap();
        }
        {
            let mut tar = IndexedTar::open(&p).unwrap();
            assert_eq!(tar.read("x").unwrap(), b"xx");
            tar.append("y", b"yy").unwrap();
            tar.flush().unwrap();
        }
        let mut tar = IndexedTar::open(&p).unwrap();
        assert_eq!(tar.read("x").unwrap(), b"xx");
        assert_eq!(tar.read("y").unwrap(), b"yy");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn recovery_rebuilds_index_after_sidecar_loss() {
        let dir = tmpdir("recover");
        let p = dir.join("a.tar");
        {
            let mut tar = IndexedTar::create(&p).unwrap();
            tar.append("a", b"alpha").unwrap();
            tar.append("b", b"beta").unwrap();
            tar.append("a", b"alpha-2").unwrap(); // re-insert: last must win
            tar.flush().unwrap();
        }
        fs::remove_file(format!("{}.idx", p.display())).unwrap();
        let mut tar = IndexedTar::open(&p).unwrap();
        assert_eq!(tar.len(), 2);
        assert_eq!(tar.read("a").unwrap(), b"alpha-2");
        assert_eq!(tar.read("b").unwrap(), b"beta");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn remove_key_hides_data_without_truncating() {
        let dir = tmpdir("rm");
        let p = dir.join("a.tar");
        let mut tar = IndexedTar::create(&p).unwrap();
        tar.append("hide", b"secret").unwrap();
        let size_before = fs::metadata(&p).unwrap().len();
        assert!(tar.remove_key("hide"));
        assert!(!tar.remove_key("hide"));
        assert!(matches!(tar.read("hide"), Err(TarError::KeyNotFound(_))));
        assert_eq!(fs::metadata(&p).unwrap().len(), size_before);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn archive_is_standard_tar() {
        // Validate the terminator and per-member layout by re-scanning with
        // the decoder alone (what an external `tar` does).
        let dir = tmpdir("std");
        let p = dir.join("a.tar");
        let mut tar = IndexedTar::create(&p).unwrap();
        tar.append("m1", &vec![1u8; 700]).unwrap();
        tar.append("m2", b"").unwrap();
        tar.flush().unwrap();
        drop(tar);

        let bytes = fs::read(&p).unwrap();
        assert_eq!(bytes.len() % BLOCK_SIZE, 0);
        // Member 1 header at 0, data 512..1212, padded to 1536.
        let h1: [u8; BLOCK_SIZE] = bytes[0..512].try_into().unwrap();
        let h1 = TarHeader::decode(&h1).unwrap().unwrap();
        assert_eq!((h1.name.as_str(), h1.size), ("m1", 700));
        // Member 2 header after 2 data blocks.
        let off2 = 512 + 1024;
        let h2: [u8; BLOCK_SIZE] = bytes[off2..off2 + 512].try_into().unwrap();
        let h2 = TarHeader::decode(&h2).unwrap().unwrap();
        assert_eq!((h2.name.as_str(), h2.size), ("m2", 0));
        // Terminator: two zero blocks after member 2's header.
        let term = off2 + 512;
        assert!(bytes[term..term + 1024].iter().all(|&b| b == 0));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn repack_reclaims_dead_space_and_preserves_live_data() {
        let dir = tmpdir("repack");
        let p = dir.join("a.tar");
        let mut tar = IndexedTar::create(&p).unwrap();
        // Lots of superseded versions plus a removed key.
        for round in 0..10 {
            tar.append("hot", format!("version-{round}").as_bytes())
                .unwrap();
        }
        tar.append("cold", &vec![3u8; 4000]).unwrap();
        tar.append("dead", &vec![4u8; 8000]).unwrap();
        tar.remove_key("dead");
        tar.flush().unwrap();

        let before = fs::metadata(&p).unwrap().len();
        let reclaimed = tar.repack().unwrap();
        let after = fs::metadata(&p).unwrap().len();
        assert!(reclaimed > 8000, "reclaimed {reclaimed}");
        assert_eq!(before - after, reclaimed);

        assert_eq!(tar.len(), 2);
        assert_eq!(tar.read("hot").unwrap(), b"version-9");
        assert_eq!(tar.read("cold").unwrap(), vec![3u8; 4000]);
        assert!(matches!(tar.read("dead"), Err(TarError::KeyNotFound(_))));

        // Still appendable and recoverable after the rewrite.
        tar.append("new", b"post-repack").unwrap();
        tar.recover_index().unwrap();
        assert_eq!(tar.read("new").unwrap(), b"post-repack");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn repack_of_clean_archive_is_lossless() {
        let dir = tmpdir("repack-clean");
        let mut tar = IndexedTar::create(dir.join("a.tar")).unwrap();
        for i in 0..5 {
            tar.append(&format!("k{i}"), &[i as u8; 100]).unwrap();
        }
        tar.flush().unwrap();
        tar.repack().unwrap();
        for i in 0..5 {
            assert_eq!(tar.read(&format!("k{i}")).unwrap(), vec![i as u8; 100]);
        }
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn identical_writes_produce_identical_bytes() {
        // Archive bytes are a pure function of (keys, payloads, injected
        // mtime) — no wall clock leaks into the format.
        let dir = tmpdir("det");
        let write = |name: &str| -> Vec<u8> {
            let p = dir.join(name);
            let mut tar = IndexedTar::create(&p).unwrap();
            tar.set_mtime(1_600_000_000);
            tar.append("a", b"alpha").unwrap();
            tar.append("b", &vec![9u8; 1000]).unwrap();
            tar.flush().unwrap();
            fs::read(&p).unwrap()
        };
        assert_eq!(write("one.tar"), write("two.tar"));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn empty_payloads_are_allowed() {
        let dir = tmpdir("empty");
        let mut tar = IndexedTar::create(dir.join("a.tar")).unwrap();
        tar.append("nil", b"").unwrap();
        assert_eq!(tar.read("nil").unwrap(), Vec::<u8>::new());
        fs::remove_dir_all(dir).unwrap();
    }
}
