//! Offline stand-in for `criterion`.
//!
//! Benches compile and run as short timed smoke loops: each routine is
//! executed a handful of times and the mean wall time is printed in a
//! criterion-like one-line format. There is no statistical analysis,
//! no warm-up, and no HTML report — the goal is that `cargo bench`
//! still exercises every bench path and emits comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each bench takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; sampling here is count-based.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; there is no warm-up phase.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped bench.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, None, &mut f);
        self
    }
}

/// Work-per-iteration annotation used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// How much setup output `iter_batched` keeps alive; irrelevant here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A `function/parameter` bench identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A named set of benches sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benches with work-per-iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the per-bench sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; sampling here is count-based.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one bench in this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.criterion.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs one parameterised bench in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(
            &full,
            self.criterion.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (report already emitted per bench).
    pub fn finish(self) {}
}

fn run_bench(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    for _ in 0..samples {
        f(&mut bencher);
    }
    let mean = if bencher.iters > 0 {
        bencher.elapsed / bencher.iters as u32
    } else {
        Duration::ZERO
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!(
                "  {:.1} MiB/s",
                n as f64 / mean.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("{id:<50} time: {mean:>12.3?}{rate}");
}

/// Times closures handed to it by a bench routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Times `routine` over fresh input from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a bench group entry point.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_routines_and_counts_iters() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(10));
            g.bench_function("f", |b| b.iter(|| runs += 1));
            g.bench_with_input(BenchmarkId::new("p", 7), &7u32, |b, &n| {
                b.iter_batched(|| n, |v| v * 2, BatchSize::LargeInput)
            });
            g.finish();
        }
        assert_eq!(runs, 3);
    }

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| ()));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = target
    }

    #[test]
    fn group_macro_produces_runner() {
        benches();
    }
}
