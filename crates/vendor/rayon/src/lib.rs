//! Offline stand-in for `rayon` with a real fork-join executor.
//!
//! Earlier versions of this shim kept rayon's *shape* (so call sites read
//! idiomatically and the real crate can swap in) but executed everything
//! sequentially. The campaign's parallel event loop needs actual threads,
//! so the shim now runs on scoped `std::thread` workers:
//!
//! - [`join`] forks its second closure onto a scoped thread.
//! - Slice/range parallel iterators split into at most
//!   [`current_num_threads`] contiguous blocks, one scoped thread per
//!   block, and reassemble results **in input order** — parallel
//!   `collect` is byte-identical to sequential `collect`, and `for_each`
//!   over disjoint `&mut` blocks is schedule-independent by construction.
//! - Everything degrades to plain sequential execution when only one
//!   thread is configured (`RAYON_NUM_THREADS=1`, or a single-core host)
//!   or when the workload is below a fixed cutoff, so tiny inputs don't
//!   pay thread-spawn latency. The cutoff is a pure performance knob:
//!   inline and forked execution produce identical results.
//!
//! Only the API surface this workspace uses is implemented: `par_iter`,
//! `par_iter_mut` (+ `zip`), `par_chunks_mut` (+ `enumerate`),
//! `into_par_iter` on `Range<usize>`, `map`/`collect`/`for_each`, and
//! `join`.

use std::ops::Range;
use std::sync::OnceLock;

/// Below this many slice elements an element-wise operation runs inline:
/// spawn latency (~tens of µs) would dominate the work. Correctness does
/// not depend on the value — forked and inline execution are identical.
const SEQ_CUTOFF_ELEMS: usize = 4096;

/// Hard ceiling on the worker count: an `RAYON_NUM_THREADS` beyond this
/// is far more likely a typo (extra digit, pasted value) than a real
/// machine, and scoped-spawn fan-out at that width would thrash anyway.
pub const MAX_THREADS: usize = 512;

/// Resolves the worker-thread count from an optional `RAYON_NUM_THREADS`
/// value and the host's available parallelism. Pure so it can be tested
/// without touching the process environment.
///
/// Rules (documented contract, not incidental behavior):
/// - unset → `available` (clamped to `1..=MAX_THREADS`);
/// - a positive integer ≤ [`MAX_THREADS`] → that value;
/// - a positive integer > [`MAX_THREADS`] → clamped to `MAX_THREADS`,
///   with a warning;
/// - `0`, empty, or unparseable → fall back to `available`, with a
///   warning. The old behavior fell back *silently*, which let an
///   operator typo (`RAYON_NUM_THREADS=fourteen`, or an exported-but-
///   empty variable) masquerade as a deliberate host-width choice.
fn resolve_num_threads(var: Option<&str>, available: usize) -> (usize, Option<String>) {
    let fallback = available.clamp(1, MAX_THREADS);
    match var {
        None => (fallback, None),
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(0) => (
                fallback,
                Some(format!(
                    "rayon: RAYON_NUM_THREADS=0 is not a valid worker count; \
                     using available parallelism ({fallback})"
                )),
            ),
            Ok(n) if n > MAX_THREADS => (
                MAX_THREADS,
                Some(format!(
                    "rayon: RAYON_NUM_THREADS={n} exceeds the supported maximum; \
                     clamping to {MAX_THREADS}"
                )),
            ),
            Ok(n) => (n, None),
            Err(_) => (
                fallback,
                Some(format!(
                    "rayon: RAYON_NUM_THREADS={raw:?} is not an integer; \
                     using available parallelism ({fallback})"
                )),
            ),
        },
    }
}

/// Number of worker threads the executor may use: `RAYON_NUM_THREADS`
/// when set to a positive integer (clamped to [`MAX_THREADS`]), otherwise
/// the host's available parallelism. `1` disables forking entirely.
/// An unusable value (`0`, empty, unparseable) falls back to available
/// parallelism with a once-per-process warning on stderr instead of the
/// historical silent ignore.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        let var = std::env::var("RAYON_NUM_THREADS").ok();
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let (n, warning) = resolve_num_threads(var.as_deref(), available);
        if let Some(w) = warning {
            eprintln!("{w}");
        }
        n
    })
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// `b` is forked onto a scoped thread while `a` runs on the caller; with a
/// single configured thread both run sequentially on the caller. A panic
/// in either closure propagates to the caller either way.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            let rb = match hb.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            };
            (ra, rb)
        })
    }
}

/// Ordered parallel map over `0..n`: blocks are computed on scoped
/// threads and concatenated in index order.
fn map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    let block = n.div_ceil(threads);
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        let mut start = 0;
        while start < n {
            let end = (start + block).min(n);
            let fr = &f;
            handles.push(s.spawn(move || (start..end).map(fr).collect::<Vec<R>>()));
            start = end;
        }
        for h in handles {
            match h.join() {
                Ok(mut part) => out.append(&mut part),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    out
}

/// Parallel `for_each` over disjoint `&mut` blocks of a slice.
fn for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() < SEQ_CUTOFF_ELEMS {
        for it in items.iter_mut() {
            f(it);
        }
        return;
    }
    let block = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        for chunk in items.chunks_mut(block) {
            let fr = &f;
            s.spawn(move || {
                for it in chunk.iter_mut() {
                    fr(it);
                }
            });
        }
    });
}

/// A parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element; the result collects in input order.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`], pending a `collect`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Collects mapped elements **in input order** (rayon's indexed
    /// collect semantics), regardless of which thread computed them.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = &self.f;
        let items = self.items;
        map_indexed(items.len(), |i| f(&items[i]))
            .into_iter()
            .collect()
    }
}

/// A parallel iterator over `&mut [T]`.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Applies `f` to every element; writes are disjoint per element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        for_each_mut(self.items, f);
    }

    /// Pairs this iterator with a shared-reference iterator of matching
    /// length (pairs beyond the shorter side are dropped, as in rayon).
    pub fn zip<U: Sync>(self, other: ParIter<'a, U>) -> ParZipMut<'a, T, U> {
        ParZipMut {
            a: self.items,
            b: other.items,
        }
    }
}

/// `par_iter_mut().zip(par_iter())`: element-wise disjoint writes with a
/// read-only companion slice.
pub struct ParZipMut<'a, T, U> {
    a: &'a mut [T],
    b: &'a [U],
}

impl<T: Send, U: Sync> ParZipMut<'_, T, U> {
    /// Applies `f` to every aligned pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((&mut T, &U)) + Sync,
    {
        let n = self.a.len().min(self.b.len());
        let a = &mut self.a[..n];
        let b = &self.b[..n];
        let threads = current_num_threads();
        if threads <= 1 || n < SEQ_CUTOFF_ELEMS {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                f((x, y));
            }
            return;
        }
        let block = n.div_ceil(threads);
        std::thread::scope(|s| {
            for (ca, cb) in a.chunks_mut(block).zip(b.chunks(block)) {
                let fr = &f;
                s.spawn(move || {
                    for (x, y) in ca.iter_mut().zip(cb.iter()) {
                        fr((x, y));
                    }
                });
            }
        });
    }
}

/// A parallel iterator over disjoint mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    items: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Numbers each chunk with its index (chunk order, as `chunks_mut`).
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            items: self.items,
            size: self.size,
        }
    }
}

/// `par_chunks_mut(size).enumerate()`: indexed disjoint row bands.
pub struct ParChunksMutEnumerate<'a, T> {
    items: &'a mut [T],
    size: usize,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Applies `f` to every `(chunk_index, chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let size = self.size.max(1);
        let items = self.items;
        let chunk_count = items.len().div_ceil(size).max(1);
        let threads = current_num_threads();
        if threads <= 1 || items.len() < SEQ_CUTOFF_ELEMS || chunk_count < 2 {
            for (i, ch) in items.chunks_mut(size).enumerate() {
                f((i, ch));
            }
            return;
        }
        // Split whole chunks into at most `threads` contiguous bands so
        // each scoped thread owns a disjoint `&mut` region and global
        // chunk indices stay exact.
        let chunks_per_band = chunk_count.div_ceil(threads);
        let band_elems = chunks_per_band * size;
        std::thread::scope(|s| {
            let mut rest = items;
            let mut band_idx = 0usize;
            while !rest.is_empty() {
                let take = band_elems.min(rest.len());
                let (band, tail) = rest.split_at_mut(take);
                rest = tail;
                let first_chunk = band_idx * chunks_per_band;
                let fr = &f;
                s.spawn(move || {
                    for (j, ch) in band.chunks_mut(size).enumerate() {
                        fr((first_chunk + j, ch));
                    }
                });
                band_idx += 1;
            }
        });
    }
}

/// `par_iter` on shared slices (and anything that derefs to one).
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// A parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    /// Disjoint mutable chunks of `size` elements (last may be short).
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { items: self }
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut { items: self, size }
    }
}

/// An indexed parallel producer over an owned range.
pub struct RangePar {
    range: Range<usize>,
}

impl RangePar {
    /// Maps each index; the result collects in index order.
    pub fn map<R, F>(self, f: F) -> RangeParMap<F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        RangeParMap {
            range: self.range,
            f,
        }
    }
}

/// The result of [`RangePar::map`], pending a `collect`.
pub struct RangeParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<R, F> RangeParMap<F>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    /// Collects mapped indices in index order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let start = self.range.start;
        let n = self.range.end.saturating_sub(start);
        let f = &self.f;
        map_indexed(n, |i| f(start + i)).into_iter().collect()
    }
}

/// `into_par_iter` on owned producers (only `Range<usize>` is needed
/// by this workspace).
pub trait IntoParallelIterator {
    /// The parallel producer type.
    type Iter;
    /// Converts `self` into a parallel producer.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangePar;

    fn into_par_iter(self) -> RangePar {
        RangePar { range: self }
    }
}

/// The conventional prelude.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled.len(), v.len());
        assert!(doubled.iter().enumerate().all(|(i, &d)| d == 2 * i as u64));
    }

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut v: Vec<i64> = vec![1; 10_000];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn zip_pairs_elements_and_stops_at_shorter() {
        let mut a: Vec<i64> = vec![0; 8192];
        let b: Vec<i64> = (0..8000).collect();
        a.par_iter_mut()
            .zip(b.par_iter())
            .for_each(|(x, y)| *x = *y + 1);
        assert_eq!(a[0], 1);
        assert_eq!(a[7999], 8000);
        assert_eq!(a[8000], 0, "pairs beyond the shorter side are dropped");
    }

    #[test]
    fn chunks_mut_enumerate_numbers_rows_globally() {
        let nx = 64;
        let ny = 128;
        let mut grid = vec![0usize; nx * ny];
        grid.par_chunks_mut(nx)
            .enumerate()
            .for_each(|(y, row)| row.iter_mut().for_each(|c| *c = y));
        for y in 0..ny {
            assert!(grid[y * nx..(y + 1) * nx].iter().all(|&c| c == y));
        }
    }

    #[test]
    fn range_into_par_iter_collects_in_index_order() {
        let squares: Vec<usize> = (0..5000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[0], 0);
        assert_eq!(squares[4999], 4999 * 4999);
    }

    #[test]
    fn join_runs_both_and_returns_in_order() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_nests() {
        let ((a, b), c) = join(|| join(|| 1, || 2), || 3);
        assert_eq!((a, b, c), (1, 2, 3));
    }

    #[test]
    fn parallel_and_sequential_results_are_identical() {
        // The executor contract the campaign loop leans on: forked and
        // inline execution of the same ordered op produce the same bytes.
        let v: Vec<u64> = (0..20_000).map(|i| i * 7 % 1013).collect();
        let par: Vec<u64> = v.par_iter().map(|x| x ^ 0xAB).collect();
        let seq: Vec<u64> = v.iter().map(|x| x ^ 0xAB).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn resolve_unset_uses_available_parallelism_silently() {
        assert_eq!(resolve_num_threads(None, 8), (8, None));
        assert_eq!(resolve_num_threads(None, 1), (1, None));
    }

    #[test]
    fn resolve_valid_values_pass_through() {
        assert_eq!(resolve_num_threads(Some("1"), 8), (1, None));
        assert_eq!(resolve_num_threads(Some("4"), 1), (4, None));
        assert_eq!(
            resolve_num_threads(Some(" 16 "), 8),
            (16, None),
            "surrounding whitespace is tolerated"
        );
    }

    #[test]
    fn resolve_zero_warns_and_falls_back() {
        let (n, warning) = resolve_num_threads(Some("0"), 6);
        assert_eq!(n, 6);
        let w = warning.expect("a zero thread count must warn");
        assert!(w.contains("RAYON_NUM_THREADS=0"), "{w}");
    }

    #[test]
    fn resolve_unparseable_warns_and_falls_back() {
        for bad in ["fourteen", "", "4.0", "-2", "0x10"] {
            let (n, warning) = resolve_num_threads(Some(bad), 3);
            assert_eq!(n, 3, "fallback for {bad:?}");
            let w = warning.unwrap_or_else(|| panic!("{bad:?} must warn"));
            assert!(w.contains("not an integer"), "{w}");
        }
    }

    #[test]
    fn resolve_clamps_absurd_widths() {
        let (n, warning) = resolve_num_threads(Some("100000"), 4);
        assert_eq!(n, MAX_THREADS);
        assert!(warning.expect("clamping must warn").contains("clamping"));
        // Pathological hosts clamp too, silently (nothing the operator typed).
        assert_eq!(resolve_num_threads(None, 100_000), (MAX_THREADS, None));
        assert_eq!(resolve_num_threads(None, 0), (1, None));
    }
}
