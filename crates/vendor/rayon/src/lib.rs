//! Offline stand-in for `rayon`.
//!
//! Exposes the `par_iter`/`par_iter_mut`/`into_par_iter`/`par_chunks_mut`
//! entry points the workspace uses, backed by plain sequential `std`
//! iterators. Call sites keep their data-parallel shape (no borrows across
//! items, chunked writes), so swapping the real rayon back in is a
//! one-line `Cargo.toml` change — and sequential execution is itself a
//! feature for this repo: identical results on every machine, with no
//! thread-pool scheduling in the determinism audit surface.

/// Sequential `into_par_iter` for anything iterable (ranges, vectors).
pub trait IntoParallelIterator {
    /// The underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Converts into a (sequential) "parallel" iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential `par_iter` over shared references.
pub trait IntoParallelRefIterator<'data> {
    /// The underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type (a shared reference).
    type Item: 'data;
    /// Borrowing (sequential) "parallel" iteration.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoIterator,
{
    type Iter = <&'data I as IntoIterator>::IntoIter;
    type Item = <&'data I as IntoIterator>::Item;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential `par_iter_mut` over exclusive references.
pub trait IntoParallelRefMutIterator<'data> {
    /// The underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type (an exclusive reference).
    type Item: 'data;
    /// Mutating (sequential) "parallel" iteration.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoIterator,
{
    type Iter = <&'data mut I as IntoIterator>::IntoIter;
    type Item = <&'data mut I as IntoIterator>::Item;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential chunked mutation over slices.
pub trait ParallelSliceMut<T> {
    /// Chunked (sequential) "parallel" mutation; chunk size `chunk_size`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// Runs the two closures (sequentially) and returns both results —
/// signature-compatible with `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The conventional prelude.
pub mod prelude {
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_surface_behaves_like_std() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let mut w = vec![1, 2, 3];
        w.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(w, vec![11, 12, 13]);

        let squares: Vec<usize> = (0..5).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);

        let mut data = vec![0u32; 6];
        data.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, chunk)| chunk.fill(i as u32));
        assert_eq!(data, vec![0, 0, 1, 1, 2, 2]);

        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!((a, b.as_str()), (2, "xy"));
    }
}
