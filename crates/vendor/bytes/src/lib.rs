//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply clonable, immutable, refcounted byte buffer;
//! [`BytesMut`] is its growable builder; [`Buf`]/[`BufMut`] carry the
//! little-endian cursor accessors the MuMMI codecs use. Semantics match
//! upstream for this subset: cloning [`Bytes`] is a refcount bump, and
//! `Buf` is implemented for `&[u8]` so codecs can decode straight from
//! slices.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, refcounted byte buffer. Cloning is O(1).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { data: bytes.into() }
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-length buffer.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "…({} bytes)", self.data.len())?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Bytes {
        v.freeze()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-length buffer.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-cursor over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The current contiguous unread region.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    /// Panics when fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "Buf underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "Buf::advance past end");
        *self = &self[cnt..];
    }
}

/// Write-cursor over a growable byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_cursors() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_u16_le(7);
        buf.put_f64_le(1.5);
        buf.put_slice(b"tail");
        buf.put_u8(9);
        let frozen = buf.freeze();

        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.remaining(), 4 + 8 + 2 + 8 + 4 + 1);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 42);
        assert_eq!(cur.get_u16_le(), 7);
        assert_eq!(cur.get_f64_le(), 1.5);
        let mut tail = [0u8; 4];
        cur.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(cur.get_u8(), 9);
        assert!(!cur.has_remaining());
    }

    #[test]
    fn bytes_clone_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.as_ref().as_ptr(), c.as_ref().as_ptr());
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn constructors_agree() {
        assert_eq!(Bytes::from_static(b"xy"), Bytes::copy_from_slice(b"xy"));
        assert_eq!(Bytes::from("xy"), Bytes::from(vec![b'x', b'y']));
        assert_eq!(Bytes::new().len(), 0);
        let eq_slice: &[u8] = b"xy";
        assert_eq!(Bytes::from_static(b"xy"), *eq_slice);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut cur: &[u8] = b"ab";
        cur.advance(3);
    }
}
