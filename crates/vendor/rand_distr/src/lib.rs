//! Offline stand-in for `rand_distr`: the Normal and LogNormal
//! distributions used by the MuMMI performance models, implemented with a
//! Box–Muller transform over the vendored deterministic [`rand`].

pub use rand::distributions::Distribution;
use rand::RngCore;

/// Error from constructing a distribution with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation (or shape) was negative or non-finite.
    BadVariance,
    /// The mean (or location) was non-finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation is invalid"),
            NormalError::MeanTooSmall => write!(f, "mean is invalid"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Maps 64 random bits onto `(0, 1]` — open at zero so `ln` is finite.
#[inline]
fn unit_open_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One standard-normal draw (Box–Muller, using one of the pair).
#[inline]
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = unit_open_f64(rng);
    let u2 = unit_open_f64(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; `std_dev` must be finite and `>= 0`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The configured standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution with location `mu` and shape
    /// `sigma` (of the underlying normal).
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, NormalError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(LogNormal::new(0.0, -0.1).is_err());
        assert!(Normal::new(3.0, 0.0).is_ok());
    }

    #[test]
    fn normal_matches_moments() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.02, "sd {}", var.sqrt());
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let mut samples: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let median = samples[50_000];
        assert!((median - 1.0f64.exp()).abs() < 0.05, "median {median}");
        assert!(samples.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn zero_sigma_is_degenerate() {
        let d = Normal::new(7.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        assert_eq!(d.sample(&mut rng), 7.0);
    }
}
