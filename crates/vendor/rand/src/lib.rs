//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no access to crates.io, so
//! this crate vendors the *deterministic* subset of the rand 0.8 API that
//! MuMMI actually uses: seedable generators, range/bool sampling,
//! distribution plumbing, and slice shuffling. There is deliberately no
//! `thread_rng` and no `random()` — the workspace determinism contract
//! (see `mummi-lint` rule L2) forbids unseeded randomness, so the entry
//! points simply do not exist here.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through a
//! splitmix64 expansion: fast, well-distributed, and stable across
//! platforms and releases, which is exactly what replayable campaigns
//! need. Streams are *not* bit-compatible with upstream `rand`; they are
//! bit-stable for this workspace, which is the property the tests pin.

/// Core random-number generation: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (the only constructor the
    /// workspace uses; everything flows through `simcore::rng::SeedStream`).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of any [`distributions::Standard`]-supported type.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples one value from `distr`.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Converts the generator into an iterator of samples from `distr`.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter {
            distr,
            rng: self,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with splitmix64
    /// seeding. Deterministic, portable, clonable.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would trap xoshiro at zero forever.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions and uniform-range sampling.
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one sample using `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl<'a, T, D: Distribution<T> + ?Sized> Distribution<T> for &'a D {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }

    /// The "natural" distribution of a type: uniform over all values for
    /// integers, `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Iterator over samples from a distribution (see [`crate::Rng::sample_iter`]).
    #[derive(Debug)]
    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) _marker: core::marker::PhantomData<T>,
    }

    impl<D, R, T> Iterator for DistIter<D, R, T>
    where
        D: Distribution<T>,
        R: RngCore,
    {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }

    /// Uniform-range sampling support for [`crate::Rng::gen_range`].
    pub mod uniform {
        use super::super::{unit_f64, RngCore};

        /// A type with uniform sampling over `[lo, hi)` / `[lo, hi]`.
        ///
        /// The blanket [`SampleRange`] impls below are over `T:
        /// SampleUniform` (mirroring upstream) so that type inference can
        /// unify `T` with the range's element type immediately — per-type
        /// range impls would leave float literals ambiguous.
        pub trait SampleUniform: Sized + PartialOrd {
            /// Uniform sample in `[lo, hi)`, or `[lo, hi]` when `inclusive`.
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self;
        }

        /// A range that can produce one uniform sample.
        pub trait SampleRange<T> {
            /// Draws one uniform sample from the range.
            ///
            /// # Panics
            /// Panics on an empty range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "gen_range: empty range");
                T::sample_uniform(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                T::sample_uniform(rng, lo, hi, true)
            }
        }

        /// Multiply-shift bounded sampling (Lemire, without the rejection
        /// step: the bias at simulation span sizes is < 2^-40 and the
        /// sequence stays deterministic, which is what matters here).
        #[inline]
        fn bounded(word: u64, span: u64) -> u64 {
            ((word as u128 * span as u128) >> 64) as u64
        }

        macro_rules! uniform_uint {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                    ) -> Self {
                        let span = ((hi - lo) as u64).wrapping_add(inclusive as u64);
                        if span == 0 {
                            // Full-width inclusive range.
                            return rng.next_u64() as $t;
                        }
                        lo + bounded(rng.next_u64(), span) as $t
                    }
                }
            )*};
        }
        uniform_uint!(u8, u16, u32, u64, usize);

        macro_rules! uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                    ) -> Self {
                        let span = ((hi as i128 - lo as i128) as u64)
                            .wrapping_add(inclusive as u64);
                        if span == 0 {
                            // Full-width inclusive range.
                            return rng.next_u64() as $t;
                        }
                        (lo as i128 + bounded(rng.next_u64(), span) as i128) as $t
                    }
                }
            )*};
        }
        uniform_int!(i8, i16, i32, i64, isize);

        macro_rules! uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        _inclusive: bool,
                    ) -> Self {
                        lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
                    }
                }
            )*};
        }
        uniform_float!(f32, f64);
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// The conventional prelude.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn streams_are_deterministic_and_seed_dependent() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let k = r.gen_range(0usize..=4);
            assert!(k <= 4);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
        let mut r = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never fixes");
    }

    #[test]
    fn sample_iter_streams_standard() {
        let r = StdRng::seed_from_u64(5);
        let v: Vec<u32> = r
            .sample_iter(crate::distributions::Standard)
            .take(5)
            .collect();
        assert_eq!(v.len(), 5);
        let r = StdRng::seed_from_u64(5);
        let w: Vec<u32> = r
            .sample_iter(crate::distributions::Standard)
            .take(5)
            .collect();
        assert_eq!(v, w);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
