//! Offline stand-in for `parking_lot`: [`RwLock`] and [`Mutex`] with the
//! non-poisoning `parking_lot` API, backed by `std::sync`. A poisoned
//! std lock means a panic already happened under the lock; propagating
//! that panic (as `parking_lot` effectively does by never poisoning)
//! matches the upstream contract closely enough for this workspace.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }

    #[test]
    fn locks_survive_a_panicked_holder() {
        let l = Arc::new(RwLock::new(0));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
