//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and the `proptest!` macro surface
//! the workspace's property tests use, with fully deterministic case
//! generation: every test derives its RNG seed from its own path, so a
//! failure reproduces by simply re-running the test. There is no
//! shrinking — failures report the generated inputs instead, which the
//! deterministic replay makes just as actionable for these test sizes.

pub mod test_runner {
    //! Test configuration, errors, and the deterministic case RNG.

    pub use rand::rngs::StdRng as TestRng;

    // Used by the `proptest!` expansion via `$crate`, so consumer crates
    // need no direct `rand` dependency.
    #[doc(hidden)]
    pub use rand::SeedableRng as __SeedableRng;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: env_case_cap().map_or(256, |cap| cap.min(256)),
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases. `PROPTEST_CASES` still caps
        /// the count, so slow interpreters stay fast even against suites
        /// that ask for large explicit counts.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases: env_case_cap().map_or(cases, |cap| cap.min(cases)),
            }
        }
    }

    /// `PROPTEST_CASES`, when set, is a global upper bound on cases per
    /// test. CI sanitizer runs (Miri, tsan) set it low: each generated
    /// case costs orders of magnitude more under an interpreter, and the
    /// interleaving/UB coverage they add does not need hundreds of
    /// inputs.
    fn env_case_cap() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    /// A failed property within one generated case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given explanation.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// The result type property bodies produce.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Stable seed for a test path (FNV-1a), so case streams never depend
    /// on link order or parallel test scheduling.
    pub fn seed_for_path(path: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in path.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: std::rc::Rc::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        gen: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    /// Uniform choice among alternative strategies (`prop_oneof!`).
    #[derive(Debug, Clone)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given alternatives.
        ///
        /// # Panics
        /// Panics when `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// String strategies from a small regex subset: sequences of literal
    /// characters and `[...]` classes (with ranges), each optionally
    /// quantified by `{m}`, `{m,n}`, `?`, `*`, or `+`. This covers the
    /// character-class patterns the workspace's tests draw keys from.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms =
                parse_pattern(self).unwrap_or_else(|e| panic!("unsupported regex {self:?}: {e}"));
            let mut out = String::new();
            for (chars, lo, hi) in &atoms {
                let n = rng.gen_range(*lo..=*hi);
                for _ in 0..n {
                    out.push(chars[rng.gen_range(0..chars.len())]);
                }
            }
            out
        }
    }

    type Atom = (Vec<char>, usize, usize);

    fn parse_pattern(pattern: &str) -> Result<Vec<Atom>, &'static str> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .ok_or("unterminated [")?
                        + i;
                    let class = expand_class(&chars[i + 1..close])?;
                    i = close + 1;
                    class
                }
                '\\' => {
                    i += 1;
                    let c = *chars.get(i).ok_or("dangling escape")?;
                    i += 1;
                    vec![c]
                }
                c if !"{}*+?]".contains(c) => {
                    i += 1;
                    vec![c]
                }
                _ => return Err("unsupported construct"),
            };
            // Optional quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .ok_or("unterminated {")?
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().map_err(|_| "bad repeat count")?,
                            hi.trim().parse().map_err(|_| "bad repeat count")?,
                        ),
                        None => {
                            let n = body.trim().parse().map_err(|_| "bad repeat count")?;
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            if lo > hi {
                return Err("empty repeat range");
            }
            atoms.push((alphabet, lo, hi));
        }
        Ok(atoms)
    }

    fn expand_class(body: &[char]) -> Result<Vec<char>, &'static str> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (a, b) = (body[i] as u32, body[i + 2] as u32);
                if a > b {
                    return Err("inverted class range");
                }
                for c in a..=b {
                    out.push(char::from_u32(c).ok_or("bad class range")?);
                }
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        if out.is_empty() {
            return Err("empty class");
        }
        Ok(out)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::distributions::{Distribution, Standard};

    /// Marker for types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_via_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    Standard.sample(rng)
                }
            }
        )*};
    }
    arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// The canonical strategy of an [`Arbitrary`] type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<A> {
        _marker: std::marker::PhantomData<A>,
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// A strategy over all values of `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive-exclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Module alias so `prop::collection::vec(...)` works from the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// The conventional prelude.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests (see crate docs).
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    // Without: default config.
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __seed = $crate::test_runner::seed_for_path(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __rng: $crate::test_runner::TestRng =
                <$crate::test_runner::TestRng as $crate::test_runner::__SeedableRng>::seed_from_u64(
                    __seed,
                );
            for __case in 0..__config.cases {
                let mut __case_desc = ::std::string::String::new();
                $(
                    let __value =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    __case_desc.push_str(&::std::format!(
                        "\n  {} = {:?}",
                        stringify!($pat),
                        &__value
                    ));
                    let $pat = __value;
                )+
                let __result: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __result {
                    ::std::panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs:{}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        __e,
                        __case_desc
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)*), l, r
        );
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A(u64),
        B(bool),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 3u64..10, (a, b) in (0usize..4, -1.0f64..1.0)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((-1.0..1.0).contains(&b));
        }

        #[test]
        fn strings_match_their_class(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vectors_respect_bounds(v in prop::collection::vec(any::<u8>(), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
        }

        #[test]
        fn oneof_and_map_cover_both_arms(
            p in prop_oneof![
                (1u64..5).prop_map(Pick::A),
                any::<bool>().prop_map(Pick::B),
            ]
        ) {
            match p {
                Pick::A(n) => prop_assert!((1..5).contains(&n)),
                Pick::B(_) => prop_assert!(true),
            }
        }

        #[test]
        fn just_yields_the_value(v in Just(41)) {
            prop_assert_eq!(v + 1, 42);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_path() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let seed = crate::test_runner::seed_for_path("some::test");
        let mut a = crate::test_runner::TestRng::seed_from_u64(seed);
        let mut b = crate::test_runner::TestRng::seed_from_u64(seed);
        let s = crate::collection::vec(0u64..100, 5..20);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u64..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("failed at case 0"), "{msg}");
        assert!(msg.contains("inputs:"), "{msg}");
    }
}
