//! Online CG analysis: protein–lipid RDFs and the 3-D conformational
//! encoding.
//!
//! "Custom, Python-based analysis is executed simultaneously on the same
//! computational node … The analysis module is tuned to finish inspecting
//! each snapshot within this time period and generates 17 KB additional
//! data every 41.5 seconds" (§4.1(3)). The two products that drive the
//! workflow are:
//!
//! - **protein–lipid RDFs** per species — aggregated by the CG→continuum
//!   feedback into updated coupling parameters;
//! - the **3-D conformational state** of the RAS-RAF complex — the frame
//!   encoding the binned sampler selects on.

use datastore::codec::{Array, Records};

use crate::system::CgSystem;

/// One analyzed CG frame: the ~850 B of "identifying information that is
/// minimal and sufficient for the downstream tasks".
#[derive(Debug, Clone, PartialEq)]
pub struct CgFrame {
    /// Frame id: `<sim>:f<index>`.
    pub id: String,
    /// Simulation time of the frame.
    pub time: f64,
    /// 3-D conformational encoding in [0, 1]³.
    pub encoding: [f64; 3],
    /// Protein–lipid RDF per lipid species (flattened, `rdf_bins` each).
    pub rdfs: Vec<Vec<f64>>,
}

impl CgFrame {
    /// Serializes the frame for a data store.
    pub fn encode(&self) -> Vec<u8> {
        let mut rec = Records::new();
        rec.insert(
            "meta",
            Array::from_vec(vec![
                self.time,
                self.encoding[0],
                self.encoding[1],
                self.encoding[2],
                self.rdfs.len() as f64,
            ]),
        );
        for (s, r) in self.rdfs.iter().enumerate() {
            rec.insert(&format!("rdf{s}"), Array::from_vec(r.clone()));
        }
        rec.encode().to_vec()
    }

    /// Decodes a serialized frame (the id comes from the namespace key).
    pub fn decode(id: &str, bytes: &[u8]) -> datastore::Result<CgFrame> {
        let rec = Records::decode(bytes)?;
        let meta = rec
            .get("meta")
            .ok_or_else(|| datastore::DataError::Codec("missing meta".into()))?;
        let n = meta.data()[4] as usize;
        let mut rdfs = Vec::with_capacity(n);
        for s in 0..n {
            rdfs.push(
                rec.get(&format!("rdf{s}"))
                    .ok_or_else(|| datastore::DataError::Codec(format!("missing rdf{s}")))?
                    .data()
                    .to_vec(),
            );
        }
        Ok(CgFrame {
            id: id.to_string(),
            time: meta.data()[0],
            encoding: [meta.data()[1], meta.data()[2], meta.data()[3]],
            rdfs,
        })
    }
}

/// Radial distribution function between the protein beads and the head
/// beads of one lipid species, over `bins` bins up to `rmax`.
///
/// Normalized against the ideal-gas expectation, so g(r) → 1 for an
/// uncorrelated fluid and g(r) ≈ 0 inside the excluded core.
pub fn compute_rdf(cg: &CgSystem, species: usize, bins: usize, rmax: f64) -> Vec<f64> {
    let heads = cg.heads_of(species);
    let prot = &cg.protein;
    let mut counts = vec![0u64; bins];
    if heads.is_empty() || prot.is_empty() {
        return vec![0.0; bins];
    }
    for &i in prot {
        for &j in &heads {
            let r = cg.sys.dist(i, j);
            if r < rmax {
                let b = ((r / rmax) * bins as f64) as usize;
                counts[b.min(bins - 1)] += 1;
            }
        }
    }
    // Ideal-gas normalization: pairs expected in each spherical shell at
    // the species' bulk density.
    let volume = cg.sys.box_l[0] * cg.sys.box_l[1] * cg.sys.box_l[2];
    let density = heads.len() as f64 / volume;
    let dr = rmax / bins as f64;
    (0..bins)
        .map(|b| {
            let r_lo = b as f64 * dr;
            let r_hi = r_lo + dr;
            let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
            let expected = density * shell * prot.len() as f64;
            if expected > 0.0 {
                counts[b] as f64 / expected
            } else {
                0.0
            }
        })
        .collect()
}

/// Encodes the protein conformation as three disparate quantities in
/// [0, 1]: normalized radius of gyration, end-to-end extension ratio, and
/// membrane-plane tilt of the chain axis.
pub fn encode_conformation(cg: &CgSystem) -> [f64; 3] {
    let prot = &cg.protein;
    if prot.len() < 2 {
        return [0.0; 3];
    }
    let n = prot.len() as f64;
    // Unwrap the chain relative to its first bead (minimum image per step).
    let mut unwrapped: Vec<[f64; 3]> = Vec::with_capacity(prot.len());
    unwrapped.push(cg.sys.pos[prot[0]]);
    for w in prot.windows(2) {
        let prev = *unwrapped.last().expect("non-empty");
        let d = cg.sys.delta(cg.sys.pos[w[0]], cg.sys.pos[w[1]]);
        unwrapped.push([prev[0] + d[0], prev[1] + d[1], prev[2] + d[2]]);
    }
    let mut com = [0.0f64; 3];
    for p in &unwrapped {
        for k in 0..3 {
            com[k] += p[k] / n;
        }
    }
    let rg2: f64 = unwrapped
        .iter()
        .map(|p| {
            (0..3)
                .map(|k| (p[k] - com[k]) * (p[k] - com[k]))
                .sum::<f64>()
        })
        .sum::<f64>()
        / n;
    let rg = rg2.sqrt();

    let first = unwrapped[0];
    let last = unwrapped[unwrapped.len() - 1];
    let ee: f64 = (0..3)
        .map(|k| (last[k] - first[k]) * (last[k] - first[k]))
        .sum::<f64>()
        .sqrt();
    // Contour length at the 0.4 nm bond spacing.
    let contour = 0.4 * (n - 1.0);

    let dz = (last[2] - first[2]).abs();
    let tilt = if ee > 1e-9 { dz / ee } else { 0.0 };

    [
        (rg / (contour / 2.0)).clamp(0.0, 1.0),
        (ee / contour).clamp(0.0, 1.0),
        tilt.clamp(0.0, 1.0),
    ]
}

/// Produces the analyzed frame for the current state of a simulation.
pub fn analyze_frame(cg: &CgSystem, sim_id: &str, frame_index: u64, rdf_bins: usize) -> CgFrame {
    let rdfs = (0..cg.n_species)
        .map(|s| compute_rdf(cg, s, rdf_bins, cg.sys.box_l[0] / 2.0))
        .collect();
    CgFrame {
        id: format!("{sim_id}:f{frame_index}"),
        time: cg.time(),
        encoding: encode_conformation(cg),
        rdfs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{build_membrane, MembraneConfig};

    fn relaxed() -> CgSystem {
        let mut m = build_membrane(&MembraneConfig::small());
        m.relax(50);
        m.run(100);
        m
    }

    #[test]
    fn rdf_is_zero_in_core_and_near_one_far() {
        let m = relaxed();
        let rdf = compute_rdf(&m, 1, 20, 5.0);
        assert_eq!(rdf.len(), 20);
        // Excluded-volume core.
        assert!(rdf[0] < 0.5, "core should be depleted: {}", rdf[0]);
        // Far bins should be within a loose band around 1 (finite system).
        let far_mean: f64 = rdf[12..].iter().sum::<f64>() / 8.0;
        assert!(
            (0.2..3.0).contains(&far_mean),
            "far-field g(r) should be O(1): {far_mean}"
        );
        assert!(rdf.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn fingerprint_species_has_enriched_contact_peak() {
        // Species 0 is protein-attractive in the membrane force field;
        // after dynamics its near-protein RDF mass should exceed that of a
        // neutral species.
        let mut m = build_membrane(&MembraneConfig {
            lipids_per_species: 24,
            ..MembraneConfig::small()
        });
        m.relax(80);
        m.run(3000);
        let near = |s: usize| -> f64 { compute_rdf(&m, s, 20, 5.0)[2..8].iter().sum() };
        let attracted = near(0);
        let neutral = near(2);
        assert!(
            attracted > neutral,
            "species 0 should be enriched near protein: {attracted} vs {neutral}"
        );
    }

    #[test]
    fn conformation_encoding_is_bounded_and_sane() {
        let m = relaxed();
        let e = encode_conformation(&m);
        for v in e {
            assert!((0.0..=1.0).contains(&v), "encoding out of range: {e:?}");
        }
        // A straight fresh chain is highly extended.
        let fresh = build_membrane(&MembraneConfig::small());
        let e0 = encode_conformation(&fresh);
        assert!(e0[1] > 0.9, "straight chain extension: {}", e0[1]);
        assert!(e0[2] > 0.9, "straight z-chain tilt: {}", e0[2]);
    }

    #[test]
    fn conformation_handles_degenerate_protein() {
        let mut m = build_membrane(&MembraneConfig {
            protein_beads: 0,
            ..MembraneConfig::small()
        });
        m.relax(5);
        assert_eq!(encode_conformation(&m), [0.0; 3]);
    }

    #[test]
    fn frame_roundtrip() {
        let m = relaxed();
        let frame = analyze_frame(&m, "sim-0001", 7, 16);
        assert_eq!(frame.id, "sim-0001:f7");
        assert_eq!(frame.rdfs.len(), 3);
        let bytes = frame.encode();
        let back = CgFrame::decode(&frame.id, &bytes).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn rdf_of_missing_species_is_zero() {
        let m = relaxed();
        let rdf = compute_rdf(&m, 99, 10, 5.0);
        assert_eq!(rdf, vec![0.0; 10]);
    }
}
