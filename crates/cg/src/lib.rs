//! The coarse-grained (micro) scale: a Martini-like particle MD surrogate.
//!
//! The campaign's CG scale runs "CG simulations with the Martini force
//! field … using the CUDA-enabled version of ddcMD", one GPU and one CPU
//! core each, with a Python analysis sharing the node (§4.1(3)). This crate
//! is that substrate, and also hosts the generic particle engine the AA
//! scale reuses:
//!
//! - [`engine`] — periodic-box Langevin MD: typed particles, pair
//!   Lennard-Jones via cell lists (rayon-parallel), harmonic bonds, energy
//!   minimization, checkpoint/restore;
//! - [`system`] — membrane builders: lipid bilayer patches with per-species
//!   head/tail beads plus RAS / RAS-RAF protein bead chains;
//! - [`analysis`] — the online analysis MuMMI runs next to each simulation:
//!   protein–lipid radial distribution functions (the CG→continuum feedback
//!   payload) and the 3-D conformational-state encoding of the RAS-RAF
//!   complex (the frame-selector input).

pub mod analysis;
pub mod engine;
pub mod system;

pub use analysis::{compute_rdf, encode_conformation, CgFrame};
pub use engine::{ForceField, Integrator, MdSystem, PairTable};
pub use system::{build_membrane, CgSystem, MembraneConfig};
