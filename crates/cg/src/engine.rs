//! The generic particle MD engine: periodic box, typed particles,
//! Lennard-Jones pair forces over a cell list, harmonic bonds, Langevin
//! integration, and steepest-descent minimization.

// Numeric kernels below index several arrays along a shared axis;
// indexed loops are clearer than zipped iterators there.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::Rng;
use rayon::prelude::*;

use datastore::codec::{Array, Records};

/// Pairwise Lennard-Jones parameters per (type, type) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairTable {
    n_types: usize,
    /// (sigma, epsilon) per pair, row-major over (a, b).
    params: Vec<(f64, f64)>,
}

impl PairTable {
    /// A table where every pair has the same parameters.
    pub fn uniform(n_types: usize, sigma: f64, epsilon: f64) -> PairTable {
        PairTable {
            n_types,
            params: vec![(sigma, epsilon); n_types * n_types],
        }
    }

    /// Sets the parameters of one unordered pair.
    pub fn set(&mut self, a: usize, b: usize, sigma: f64, epsilon: f64) {
        self.params[a * self.n_types + b] = (sigma, epsilon);
        self.params[b * self.n_types + a] = (sigma, epsilon);
    }

    /// Parameters of a pair.
    #[inline]
    pub fn get(&self, a: usize, b: usize) -> (f64, f64) {
        self.params[a * self.n_types + b]
    }

    /// Number of particle types.
    pub fn n_types(&self) -> usize {
        self.n_types
    }
}

/// Force-field description: nonbonded table, cutoff, and harmonic bonds.
#[derive(Debug, Clone, PartialEq)]
pub struct ForceField {
    /// Nonbonded LJ parameters.
    pub pairs: PairTable,
    /// Nonbonded cutoff distance.
    pub cutoff: f64,
    /// Harmonic bonds: (i, j, k, r0) — E = k/2 (r - r0)².
    pub bonds: Vec<(u32, u32, f64, f64)>,
}

/// Langevin integration parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Integrator {
    /// Time step (ps for CG, fs-scale for AA — units are the caller's).
    pub dt: f64,
    /// Friction coefficient (1/time).
    pub gamma: f64,
    /// Thermal energy kT (sets the noise amplitude).
    pub kt: f64,
}

/// A particle system in a periodic orthorhombic box.
#[derive(Debug, Clone, PartialEq)]
pub struct MdSystem {
    /// Positions.
    pub pos: Vec<[f64; 3]>,
    /// Velocities.
    pub vel: Vec<[f64; 3]>,
    /// Type of each particle (index into the pair table).
    pub typ: Vec<u16>,
    /// Box side lengths.
    pub box_l: [f64; 3],
    /// Simulated time (in `dt` units accumulated).
    pub time: f64,
    /// Steps taken.
    pub steps: u64,
}

impl MdSystem {
    /// Creates a system with zero velocities.
    ///
    /// # Panics
    /// Panics when positions and types disagree in length.
    pub fn new(pos: Vec<[f64; 3]>, typ: Vec<u16>, box_l: [f64; 3]) -> MdSystem {
        assert_eq!(pos.len(), typ.len(), "every particle needs a type");
        let n = pos.len();
        MdSystem {
            pos,
            vel: vec![[0.0; 3]; n],
            typ,
            box_l,
            time: 0.0,
            steps: 0,
        }
    }

    /// Particle count.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True when the system has no particles.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Minimum-image displacement from `a` to `b`.
    #[inline]
    pub fn delta(&self, a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        let mut d = [0.0; 3];
        for k in 0..3 {
            let l = self.box_l[k];
            let mut x = b[k] - a[k];
            x -= (x / l).round() * l;
            d[k] = x;
        }
        d
    }

    /// Minimum-image distance between particles `i` and `j`.
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        let d = self.delta(self.pos[i], self.pos[j]);
        (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
    }

    /// Wraps every position into the primary box image.
    pub fn wrap(&mut self) {
        for p in &mut self.pos {
            for k in 0..3 {
                p[k] = p[k].rem_euclid(self.box_l[k]);
            }
        }
    }

    /// Computes forces and potential energy under `ff`.
    pub fn forces(&self, ff: &ForceField) -> (Vec<[f64; 3]>, f64) {
        let cells = CellList::build(self, ff.cutoff);
        let cut2 = ff.cutoff * ff.cutoff;
        // Parallel per-particle neighbor loop (each pair visited twice; the
        // energy is halved accordingly).
        let results: Vec<([f64; 3], f64)> = (0..self.len())
            .into_par_iter() // lint: allow(L8: per-particle forces collect in index order; the energy sum below runs serially over that ordered Vec)
            .map(|i| {
                let mut f = [0.0f64; 3];
                let mut e = 0.0f64;
                let pi = self.pos[i];
                let ti = self.typ[i] as usize;
                cells.for_neighbors(self, i, |j| {
                    let d = self.delta(pi, self.pos[j]);
                    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                    if r2 >= cut2 || r2 < 1e-12 {
                        return;
                    }
                    let (sigma, eps) = ff.pairs.get(ti, self.typ[j] as usize);
                    if eps == 0.0 {
                        return;
                    }
                    let sr2 = sigma * sigma / r2;
                    let sr6 = sr2 * sr2 * sr2;
                    let sr12 = sr6 * sr6;
                    // F = 24 eps (2 sr12 - sr6) / r² * r_vec, directed from
                    // j to i (repulsive positive).
                    let fmag = 24.0 * eps * (2.0 * sr12 - sr6) / r2;
                    for k in 0..3 {
                        f[k] -= fmag * d[k];
                    }
                    e += 0.5 * 4.0 * eps * (sr12 - sr6);
                });
                (f, e)
            })
            .collect();
        let mut forces: Vec<[f64; 3]> = results.iter().map(|r| r.0).collect();
        let mut energy: f64 = results.iter().map(|r| r.1).sum();

        // Bonds (serial: bond counts are O(n) and cheap).
        for &(i, j, k, r0) in &ff.bonds {
            let (i, j) = (i as usize, j as usize);
            let d = self.delta(self.pos[i], self.pos[j]);
            let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt().max(1e-12);
            let fmag = k * (r - r0) / r;
            for ax in 0..3 {
                forces[i][ax] += fmag * d[ax];
                forces[j][ax] -= fmag * d[ax];
            }
            energy += 0.5 * k * (r - r0) * (r - r0);
        }
        (forces, energy)
    }

    /// One Langevin step (Euler-Maruyama on velocities, unit masses).
    pub fn step(&mut self, ff: &ForceField, ig: &Integrator, rng: &mut StdRng) {
        let (forces, _) = self.forces(ff);
        let dt = ig.dt;
        let damp = (-ig.gamma * dt).exp();
        let noise = (ig.kt * (1.0 - damp * damp)).sqrt();
        for i in 0..self.len() {
            for k in 0..3 {
                self.vel[i][k] += forces[i][k] * dt;
                self.vel[i][k] = self.vel[i][k] * damp + noise * rng.gen_range(-1.732..1.732);
                self.pos[i][k] += self.vel[i][k] * dt;
            }
        }
        self.wrap();
        self.time += dt;
        self.steps += 1;
    }

    /// Runs `n` Langevin steps.
    pub fn run(&mut self, ff: &ForceField, ig: &Integrator, rng: &mut StdRng, n: u64) {
        for _ in 0..n {
            self.step(ff, ig, rng);
        }
    }

    /// Steepest-descent energy minimization with adaptive step size;
    /// returns (initial energy, final energy).
    pub fn minimize(&mut self, ff: &ForceField, steps: usize, max_move: f64) -> (f64, f64) {
        let (_, e0) = self.forces(ff);
        let mut step = max_move;
        let mut prev = e0;
        for _ in 0..steps {
            let (forces, _) = self.forces(ff);
            let fmax = forces
                .iter()
                .flat_map(|f| f.iter().map(|v| v.abs()))
                .fold(0.0f64, f64::max)
                .max(1e-12);
            let scale = step / fmax;
            let backup = self.pos.clone();
            for (p, f) in self.pos.iter_mut().zip(&forces) {
                for k in 0..3 {
                    p[k] += f[k] * scale;
                }
            }
            self.wrap();
            let (_, e) = self.forces(ff);
            if e < prev {
                prev = e;
                step = (step * 1.2).min(max_move);
            } else {
                // Reject uphill move, shrink the step.
                self.pos = backup;
                step *= 0.5;
                if step < 1e-10 {
                    break;
                }
            }
        }
        (e0, prev)
    }

    /// Serializes positions/velocities/types — the checkpoint format
    /// ("all simulations are checkpointed with their own simulation code").
    pub fn checkpoint(&self) -> Vec<u8> {
        let n = self.len();
        let mut rec = Records::new();
        rec.insert(
            "meta",
            Array::from_vec(vec![
                n as f64,
                self.box_l[0],
                self.box_l[1],
                self.box_l[2],
                self.time,
                self.steps as f64,
            ]),
        );
        let flat = |v: &[[f64; 3]]| -> Vec<f64> { v.iter().flatten().copied().collect() };
        rec.insert("pos", Array::new(vec![n, 3], flat(&self.pos)));
        rec.insert("vel", Array::new(vec![n, 3], flat(&self.vel)));
        rec.insert(
            "typ",
            Array::from_vec(self.typ.iter().map(|&t| t as f64).collect()),
        );
        rec.encode().to_vec()
    }

    /// Restores a system from a checkpoint.
    pub fn restore(bytes: &[u8]) -> datastore::Result<MdSystem> {
        let rec = Records::decode(bytes)?;
        let need = |n: &str| {
            rec.get(n)
                .ok_or_else(|| datastore::DataError::Codec(format!("missing {n}")))
        };
        let meta = need("meta")?;
        let n = meta.data()[0] as usize;
        let unflat = |a: &Array| -> Vec<[f64; 3]> {
            a.data().chunks(3).map(|c| [c[0], c[1], c[2]]).collect()
        };
        Ok(MdSystem {
            pos: unflat(need("pos")?),
            vel: unflat(need("vel")?),
            typ: need("typ")?.data().iter().map(|&t| t as u16).collect(),
            box_l: [meta.data()[1], meta.data()[2], meta.data()[3]],
            time: meta.data()[4],
            steps: meta.data()[5] as u64,
        })
        .and_then(|s| {
            if s.pos.len() == n && s.typ.len() == n {
                Ok(s)
            } else {
                Err(datastore::DataError::Codec(
                    "inconsistent checkpoint".into(),
                ))
            }
        })
    }

    /// Instantaneous kinetic temperature (unit masses): 2 KE / (3 N).
    pub fn temperature(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let ke: f64 = self
            .vel
            .iter()
            .map(|v| 0.5 * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum();
        2.0 * ke / (3.0 * self.len() as f64)
    }
}

/// A cell list for O(n) neighbor iteration at a fixed cutoff.
struct CellList {
    ncell: [usize; 3],
    heads: Vec<i32>,
    next: Vec<i32>,
}

impl CellList {
    fn build(sys: &MdSystem, cutoff: f64) -> CellList {
        let mut ncell = [0usize; 3];
        for k in 0..3 {
            ncell[k] = ((sys.box_l[k] / cutoff).floor() as usize).max(1);
        }
        let total = ncell[0] * ncell[1] * ncell[2];
        let mut heads = vec![-1i32; total];
        let mut next = vec![-1i32; sys.len()];
        for i in 0..sys.len() {
            let c = Self::cell_of(sys, &ncell, sys.pos[i]);
            next[i] = heads[c];
            heads[c] = i as i32;
        }
        CellList { ncell, heads, next }
    }

    fn cell_of(sys: &MdSystem, ncell: &[usize; 3], p: [f64; 3]) -> usize {
        let mut idx = [0usize; 3];
        for k in 0..3 {
            let f = (p[k].rem_euclid(sys.box_l[k])) / sys.box_l[k];
            idx[k] = ((f * ncell[k] as f64) as usize).min(ncell[k] - 1);
        }
        (idx[2] * ncell[1] + idx[1]) * ncell[0] + idx[0]
    }

    /// Visits every particle in the 27 cells around particle `i`, except
    /// `i` itself. When the box is small enough that cells alias (fewer
    /// than 3 cells per axis), neighbors are visited exactly once anyway.
    fn for_neighbors(&self, sys: &MdSystem, i: usize, mut visit: impl FnMut(usize)) {
        let p = sys.pos[i];
        let mut base = [0usize; 3];
        for k in 0..3 {
            let f = (p[k].rem_euclid(sys.box_l[k])) / sys.box_l[k];
            base[k] = ((f * self.ncell[k] as f64) as usize).min(self.ncell[k] - 1);
        }
        let mut seen_cells = [usize::MAX; 27];
        let mut n_seen = 0;
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let cx = (base[0] as i64 + dx).rem_euclid(self.ncell[0] as i64) as usize;
                    let cy = (base[1] as i64 + dy).rem_euclid(self.ncell[1] as i64) as usize;
                    let cz = (base[2] as i64 + dz).rem_euclid(self.ncell[2] as i64) as usize;
                    let c = (cz * self.ncell[1] + cy) * self.ncell[0] + cx;
                    if seen_cells[..n_seen].contains(&c) {
                        continue; // aliased cell in a small box
                    }
                    seen_cells[n_seen] = c;
                    n_seen += 1;
                    let mut j = self.heads[c];
                    while j >= 0 {
                        if j as usize != i {
                            visit(j as usize);
                        }
                        j = self.next[j as usize];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn two_body(r: f64) -> (MdSystem, ForceField) {
        let sys = MdSystem::new(
            vec![[5.0, 5.0, 5.0], [5.0 + r, 5.0, 5.0]],
            vec![0, 0],
            [20.0, 20.0, 20.0],
        );
        let ff = ForceField {
            pairs: PairTable::uniform(1, 1.0, 1.0),
            cutoff: 5.0,
            bonds: vec![],
        };
        (sys, ff)
    }

    #[test]
    fn lj_minimum_at_r_min() {
        // LJ minimum is at 2^(1/6) sigma; force ~0 there, repulsive closer,
        // attractive farther.
        let rmin = 2f64.powf(1.0 / 6.0);
        let (sys, ff) = two_body(rmin);
        let (f, e) = sys.forces(&ff);
        assert!(f[0][0].abs() < 1e-9, "force at minimum: {}", f[0][0]);
        assert!((e - -1.0).abs() < 1e-9, "energy at minimum: {e}");

        let (sys, ff) = two_body(0.9);
        let (f, _) = sys.forces(&ff);
        assert!(f[0][0] < 0.0, "repulsion pushes particle 0 left");

        let (sys, ff) = two_body(1.5);
        let (f, _) = sys.forces(&ff);
        assert!(f[0][0] > 0.0, "attraction pulls particle 0 right");
    }

    #[test]
    fn forces_obey_newtons_third_law() {
        let (sys, ff) = two_body(1.3);
        let (f, _) = sys.forces(&ff);
        for k in 0..3 {
            assert!((f[0][k] + f[1][k]).abs() < 1e-9);
        }
    }

    #[test]
    fn minimum_image_across_boundary() {
        // Particles at opposite box edges are actually close.
        let sys = MdSystem::new(
            vec![[0.5, 5.0, 5.0], [19.5, 5.0, 5.0]],
            vec![0, 0],
            [20.0, 20.0, 20.0],
        );
        assert!((sys.dist(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bond_force_restores_length() {
        let mut sys = MdSystem::new(
            vec![[5.0, 5.0, 5.0], [8.0, 5.0, 5.0]],
            vec![0, 0],
            [20.0, 20.0, 20.0],
        );
        let ff = ForceField {
            pairs: PairTable::uniform(1, 1.0, 0.0), // no LJ
            cutoff: 2.0,
            bonds: vec![(0, 1, 10.0, 2.0)],
        };
        let (e0, e1) = sys.minimize(&ff, 200, 0.1);
        assert!(e1 < e0);
        assert!(
            (sys.dist(0, 1) - 2.0).abs() < 0.01,
            "bond at {}",
            sys.dist(0, 1)
        );
    }

    #[test]
    fn minimization_never_increases_energy() {
        let mut pos = Vec::new();
        // A deliberately clashy lattice.
        for i in 0..4 {
            for j in 0..4 {
                pos.push([i as f64 * 0.8, j as f64 * 0.8, 5.0]);
            }
        }
        let n = pos.len();
        let mut sys = MdSystem::new(pos, vec![0; n], [10.0, 10.0, 10.0]);
        let ff = ForceField {
            pairs: PairTable::uniform(1, 1.0, 1.0),
            cutoff: 2.5,
            bonds: vec![],
        };
        let (e0, e1) = sys.minimize(&ff, 300, 0.05);
        assert!(e1 < e0, "minimization failed: {e0} -> {e1}");
    }

    #[test]
    fn langevin_thermalizes_near_kt() {
        let mut pos = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                for k in 0..5 {
                    pos.push([i as f64 * 2.0, j as f64 * 2.0, k as f64 * 2.0]);
                }
            }
        }
        let n = pos.len();
        let mut sys = MdSystem::new(pos, vec![0; n], [10.0, 10.0, 10.0]);
        let ff = ForceField {
            pairs: PairTable::uniform(1, 1.0, 0.2),
            cutoff: 2.5,
            bonds: vec![],
        };
        let ig = Integrator {
            dt: 0.005,
            gamma: 1.0,
            kt: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        sys.run(&ff, &ig, &mut rng, 2000);
        let t = sys.temperature();
        assert!(
            (0.5..2.0).contains(&t),
            "temperature should settle near kT=1: {t}"
        );
    }

    #[test]
    fn cell_list_matches_brute_force() {
        // Forces via cell list must equal an all-pairs reference.
        let mut rng = StdRng::seed_from_u64(8);
        let n = 60;
        let box_l = [8.0, 8.0, 8.0];
        let pos: Vec<[f64; 3]> = (0..n)
            .map(|_| {
                [
                    rng.gen_range(0.0..8.0),
                    rng.gen_range(0.0..8.0),
                    rng.gen_range(0.0..8.0),
                ]
            })
            .collect();
        let sys = MdSystem::new(pos, vec![0; n], box_l);
        let ff = ForceField {
            pairs: PairTable::uniform(1, 1.0, 1.0),
            cutoff: 2.0,
            bonds: vec![],
        };
        let (fast, e_fast) = sys.forces(&ff);

        // Brute force reference.
        let mut slow = vec![[0.0f64; 3]; n];
        let mut e_slow = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = sys.delta(sys.pos[i], sys.pos[j]);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if !(1e-12..4.0).contains(&r2) {
                    continue;
                }
                let sr2 = 1.0 / r2;
                let sr6 = sr2 * sr2 * sr2;
                let sr12 = sr6 * sr6;
                let fmag = 24.0 * (2.0 * sr12 - sr6) / r2;
                for k in 0..3 {
                    slow[i][k] -= fmag * d[k];
                }
                e_slow += 0.5 * 4.0 * (sr12 - sr6);
            }
        }
        // Tolerance scales with magnitude: a near-contact pair can push
        // forces past 1e8, where cell-list vs all-pairs summation order
        // legitimately differs in the last ulp.
        let tol = |reference: f64| 1e-9 + 1e-12 * reference.abs();
        assert!(
            (e_fast - e_slow).abs() < tol(e_slow),
            "{e_fast} vs {e_slow}"
        );
        for i in 0..n {
            for k in 0..3 {
                assert!(
                    (fast[i][k] - slow[i][k]).abs() < tol(slow[i][k]),
                    "particle {i} axis {k}: {} vs {}",
                    fast[i][k],
                    slow[i][k]
                );
            }
        }
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let (mut sys, ff) = two_body(1.2);
        let ig = Integrator {
            dt: 0.002,
            gamma: 1.0,
            kt: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(3);
        sys.run(&ff, &ig, &mut rng, 50);
        let bytes = sys.checkpoint();
        let restored = MdSystem::restore(&bytes).unwrap();
        assert_eq!(restored, sys);
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(MdSystem::restore(b"nope").is_err());
    }
}
