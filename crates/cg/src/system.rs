//! Membrane system construction: bilayer patches with proteins.
//!
//! Bead-type layout: types `0..n_species` are lipid **head** beads (one
//! type per lipid species, matching the continuum fields), `n_species` is
//! the shared lipid **tail** bead, and `n_species + 1` is the protein
//! backbone bead. The insane-style placement from density fields lives in
//! the `mapping` crate; this module provides the raw builders and the
//! [`CgSystem`] wrapper the workflow manages.

// Numeric kernels below index several arrays along a shared axis;
// indexed loops are clearer than zipped iterators there.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::engine::{ForceField, Integrator, MdSystem, PairTable};

/// Membrane construction parameters.
#[derive(Debug, Clone)]
pub struct MembraneConfig {
    /// Box side in x/y (nm); z is `thickness * 3`.
    pub side: f64,
    /// Bilayer thickness (nm).
    pub thickness: f64,
    /// Lipid species count (head-bead types).
    pub n_species: usize,
    /// Lipids per leaflet per species.
    pub lipids_per_species: usize,
    /// Protein bead-chain length (0 = no protein).
    pub protein_beads: usize,
    /// RNG seed for placement jitter.
    pub seed: u64,
}

impl MembraneConfig {
    /// A small test membrane.
    pub fn small() -> MembraneConfig {
        MembraneConfig {
            side: 10.0,
            thickness: 2.0,
            n_species: 3,
            lipids_per_species: 16,
            protein_beads: 6,
            seed: 11,
        }
    }
}

/// A CG membrane simulation: the engine system plus bead bookkeeping.
#[derive(Debug, Clone)]
pub struct CgSystem {
    /// The particle system.
    pub sys: MdSystem,
    /// Force field.
    pub ff: ForceField,
    /// Lipid species count.
    pub n_species: usize,
    /// Particle indices of protein beads (a contiguous chain).
    pub protein: Vec<usize>,
    /// Integrator defaults for this system.
    pub integrator: Integrator,
    rng: StdRng,
}

impl CgSystem {
    /// Assembles a CG system from parts (used by createsim and tests).
    pub fn from_parts(
        sys: MdSystem,
        ff: ForceField,
        n_species: usize,
        protein: Vec<usize>,
        integrator: Integrator,
        seed: u64,
    ) -> CgSystem {
        CgSystem {
            sys,
            ff,
            n_species,
            protein,
            integrator,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The tail bead type id.
    pub fn tail_type(&self) -> u16 {
        self.n_species as u16
    }

    /// The protein bead type id.
    pub fn protein_type(&self) -> u16 {
        (self.n_species + 1) as u16
    }

    /// Particle indices of the head beads of one lipid species.
    pub fn heads_of(&self, species: usize) -> Vec<usize> {
        self.sys
            .typ
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t as usize == species)
            .map(|(i, _)| i)
            .collect()
    }

    /// Advances `n` Langevin steps.
    pub fn run(&mut self, n: u64) {
        let ig = self.integrator;
        let ff = self.ff.clone();
        self.sys.run(&ff, &ig, &mut self.rng, n);
    }

    /// Steepest-descent relaxation; returns (initial, final) energy.
    pub fn relax(&mut self, steps: usize) -> (f64, f64) {
        let ff = self.ff.clone();
        self.sys.minimize(&ff, steps, 0.05)
    }

    /// Simulated time.
    pub fn time(&self) -> f64 {
        self.sys.time
    }
}

/// Builds a bilayer membrane with an embedded protein bead chain.
///
/// Each lipid is two beads (head at the leaflet surface, tail toward the
/// bilayer mid-plane) bonded harmonically. The protein chain sits at the
/// box center spanning the bilayer.
pub fn build_membrane(cfg: &MembraneConfig) -> CgSystem {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let box_l = [cfg.side, cfg.side, cfg.thickness * 3.0];
    let z_mid = box_l[2] / 2.0;
    let z_head_top = z_mid + cfg.thickness / 2.0;
    let z_head_bot = z_mid - cfg.thickness / 2.0;
    let z_tail_top = z_mid + cfg.thickness / 6.0;
    let z_tail_bot = z_mid - cfg.thickness / 6.0;

    let mut pos: Vec<[f64; 3]> = Vec::new();
    let mut typ: Vec<u16> = Vec::new();
    let mut bonds: Vec<(u32, u32, f64, f64)> = Vec::new();

    let n_lipids = cfg.n_species * cfg.lipids_per_species;
    let per_row = (n_lipids as f64).sqrt().ceil() as usize;
    let spacing = cfg.side / per_row.max(1) as f64;

    for (leaflet, (z_head, z_tail)) in [(z_head_top, z_tail_top), (z_head_bot, z_tail_bot)]
        .into_iter()
        .enumerate()
    {
        // Species are interleaved across the lattice so every species is
        // geometrically equivalent at t=0 (a mixed membrane); any later
        // enrichment near the protein comes from the force field alone.
        for placed in 0..n_lipids {
            let s = placed % cfg.n_species;
            let gx = (placed % per_row) as f64;
            let gy = (placed / per_row) as f64;
            // Offset the two leaflets to avoid perfect stacking.
            let off = if leaflet == 0 { 0.25 } else { 0.75 };
            let mut jitter = || rng.gen_range(-0.05..0.05) * spacing;
            let x = (gx + off) * spacing + jitter();
            let y = (gy + off) * spacing + jitter();
            let head_idx = pos.len() as u32;
            pos.push([x.rem_euclid(cfg.side), y.rem_euclid(cfg.side), z_head]);
            typ.push(s as u16);
            pos.push([x.rem_euclid(cfg.side), y.rem_euclid(cfg.side), z_tail]);
            typ.push(cfg.n_species as u16);
            bonds.push((head_idx, head_idx + 1, 20.0, cfg.thickness / 3.0));
        }
    }

    // Protein chain through the bilayer at the box center.
    let mut protein = Vec::with_capacity(cfg.protein_beads);
    if cfg.protein_beads > 0 {
        let z0 = z_mid - 0.4 * (cfg.protein_beads as f64 - 1.0) / 2.0;
        for b in 0..cfg.protein_beads {
            let idx = pos.len();
            pos.push([cfg.side / 2.0, cfg.side / 2.0, z0 + 0.4 * b as f64]);
            typ.push((cfg.n_species + 1) as u16);
            protein.push(idx);
            if b > 0 {
                bonds.push((idx as u32 - 1, idx as u32, 50.0, 0.4));
            }
        }
    }

    // Force field: heads repel softly, tails attract (hydrophobic
    // clustering), protein mildly attracts heads of species 0 (the
    // lipid-fingerprint species).
    let n_types = cfg.n_species + 2;
    let mut pairs = PairTable::uniform(n_types, 0.47, 0.05);
    let tail = cfg.n_species;
    let prot = cfg.n_species + 1;
    pairs.set(tail, tail, 0.47, 0.5);
    for s in 0..cfg.n_species {
        pairs.set(s, tail, 0.47, 0.1);
        pairs.set(s, prot, 0.47, if s == 0 { 0.4 } else { 0.05 });
    }
    pairs.set(prot, prot, 0.47, 0.2);

    let ff = ForceField {
        pairs,
        cutoff: 1.2,
        bonds,
    };
    let sys = MdSystem::new(pos, typ, box_l);
    CgSystem {
        sys,
        ff,
        n_species: cfg.n_species,
        protein,
        integrator: Integrator {
            dt: 0.01,
            gamma: 1.0,
            kt: 0.3,
        },
        rng: StdRng::seed_from_u64(cfg.seed ^ 0x5eed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membrane_has_expected_composition() {
        let cfg = MembraneConfig::small();
        let m = build_membrane(&cfg);
        // 3 species × 16 lipids × 2 leaflets × 2 beads + 6 protein beads.
        assert_eq!(m.sys.len(), 3 * 16 * 2 * 2 + 6);
        assert_eq!(m.protein.len(), 6);
        for s in 0..3 {
            assert_eq!(m.heads_of(s).len(), 32);
        }
        // Bonds: one per lipid + protein chain.
        assert_eq!(m.ff.bonds.len(), 96 + 5);
    }

    #[test]
    fn leaflets_are_separated_in_z() {
        let m = build_membrane(&MembraneConfig::small());
        let z_mid = m.sys.box_l[2] / 2.0;
        let heads_above = m
            .sys
            .typ
            .iter()
            .enumerate()
            .filter(|&(i, &t)| (t as usize) < 3 && m.sys.pos[i][2] > z_mid)
            .count();
        assert_eq!(heads_above, 48, "half the heads in the upper leaflet");
    }

    #[test]
    fn relax_reduces_energy_and_keeps_bilayer() {
        let mut m = build_membrane(&MembraneConfig::small());
        let (e0, e1) = m.relax(100);
        assert!(e1 <= e0);
        // Protein must still span the mid-plane region.
        let z_mid = m.sys.box_l[2] / 2.0;
        let pz: Vec<f64> = m.protein.iter().map(|&i| m.sys.pos[i][2]).collect();
        assert!(pz.iter().any(|&z| z < z_mid) || pz.iter().any(|&z| z >= z_mid));
    }

    #[test]
    fn dynamics_run_and_time_advances() {
        let mut m = build_membrane(&MembraneConfig::small());
        m.relax(50);
        m.run(100);
        assert!((m.time() - 1.0).abs() < 1e-9); // 100 × dt=0.01
                                                // Everything still inside the box.
        for p in &m.sys.pos {
            for k in 0..3 {
                assert!(p[k] >= 0.0 && p[k] <= m.sys.box_l[k]);
            }
        }
    }

    #[test]
    fn tails_stay_nearer_midplane_than_heads() {
        let mut m = build_membrane(&MembraneConfig::small());
        m.relax(50);
        let z_mid = m.sys.box_l[2] / 2.0;
        let tails: Vec<usize> = m
            .sys
            .typ
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t == m.tail_type())
            .map(|(i, _)| i)
            .collect();
        let heads: Vec<usize> = (0..3).flat_map(|s| m.heads_of(s)).collect();
        // Time-average over the trajectory: the instantaneous ordering at
        // any single late frame is noise-dominated (nothing tethers the
        // bilayer plane), but tails must hug the mid-plane on average.
        let (mut tail_dev, mut head_dev) = (0.0, 0.0);
        for _ in 0..20 {
            m.run(10);
            let mean_dev = |idx: &[usize]| -> f64 {
                idx.iter()
                    .map(|&i| (m.sys.pos[i][2] - z_mid).abs())
                    .sum::<f64>()
                    / idx.len().max(1) as f64
            };
            tail_dev += mean_dev(&tails);
            head_dev += mean_dev(&heads);
        }
        assert!(
            tail_dev < head_dev,
            "tails should hug the mid-plane: tail dev {} vs head dev {}",
            tail_dev / 20.0,
            head_dev / 20.0
        );
    }
}
