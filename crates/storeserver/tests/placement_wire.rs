//! The placement contract through the wire path: the same properties
//! `kvstore/tests/placement.rs` pins in-process must survive encode →
//! decode → engine dispatch. Runs over the loopback transport — every
//! op is a real wire frame, no sockets needed.

use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;

use storeserver::{StoreClient, StoreEngine, StoreError};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A cross-shard rename comes back as the typed `CrossShardRename`
    /// error with both key names intact after the wire round trip, and
    /// the store is unchanged; a same-shard rename moves the value.
    #[test]
    fn rename_shard_semantics_survive_the_wire(
        shards in 2usize..32,
        from_tag in "[a-z0-9]{1,16}",
        to_tag in "[a-z0-9]{1,16}",
        payload in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let engine = Arc::new(StoreEngine::in_memory(shards));
        let crosses = {
            let c = engine.cluster();
            c.shard_for(&format!("src:{{{from_tag}}}")) != c.shard_for(&format!("dst:{{{to_tag}}}"))
        };
        let mut client = StoreClient::loopback(engine);
        let from = format!("src:{{{from_tag}}}");
        let to = format!("dst:{{{to_tag}}}");
        client.put(&from, Bytes::from(payload.clone())).unwrap();
        match client.rename(&from, &to) {
            Ok(()) => {
                prop_assert!(!crosses, "cross-shard rename succeeded over the wire");
                let moved = client.get(&to).unwrap();
                prop_assert_eq!(moved.as_deref(), Some(&payload[..]));
            }
            Err(StoreError::CrossShardRename { from: f, to: t }) => {
                prop_assert!(crosses, "same-shard rename bounced as cross-shard");
                prop_assert_eq!(&f, &from);
                prop_assert_eq!(&t, &to);
                let kept = client.get(&from).unwrap();
                prop_assert_eq!(kept.as_deref(), Some(&payload[..]));
                prop_assert!(!client.exists(&to).unwrap());
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Same-tag keys written through the wire land on one shard: the
    /// stats shard count never moves, and a follow-up same-tag rename
    /// always succeeds regardless of the surrounding namespace text.
    #[test]
    fn same_tag_wire_writes_allow_namespace_renames(
        shards in 1usize..32,
        tag in "[a-z0-9]{1,16}",
        ns_a in "[a-z:]{0,8}",
        ns_b in "[a-z:]{0,8}",
    ) {
        let mut client = StoreClient::loopback(Arc::new(StoreEngine::in_memory(shards)));
        let from = format!("{ns_a}{{{tag}}}");
        let to = format!("{ns_b}x{{{tag}}}");
        client.put(&from, Bytes::from_static(b"frame")).unwrap();
        // Shared tag ⇒ co-shard ⇒ the feedback "tagging" rename can
        // never fail with a cross-shard error.
        client.rename(&from, &to).unwrap();
        prop_assert!(client.exists(&to).unwrap());
    }
}
