//! Many concurrent clients against one server — the tsan target.
//!
//! Eight writer clients on disjoint hash tags plus a scanner, the shape
//! of a feedback iteration where thousands of CG analyses write while
//! the workflow manager scans. Conservation asserts at the end: every
//! acknowledged write is present, namespaces stay disjoint, renames
//! neither lose nor duplicate a frame.

use bytes::Bytes;
use std::sync::Arc;
use std::thread;

use storeserver::{StoreClient, StoreEngine, StoreServer};

const WRITERS: usize = 8;
const PER_WRITER: usize = 200;

#[test]
fn concurrent_writers_and_scanner_conserve_every_frame() {
    let engine = Arc::new(StoreEngine::in_memory(20));
    let server = StoreServer::start(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    thread::scope(|s| {
        for t in 0..WRITERS {
            s.spawn(move || {
                let mut c = StoreClient::connect(addr).expect("connect");
                // Pipelined writes on this writer's own tag namespace.
                let pairs: Vec<(String, Bytes)> = (0..PER_WRITER)
                    .map(|i| {
                        (
                            format!("rdf:new:{{t{t}}}:f{i}"),
                            Bytes::from(vec![t as u8; 64]),
                        )
                    })
                    .collect();
                for chunk in pairs.chunks(32) {
                    assert_eq!(c.put_many(chunk.to_vec()).unwrap(), chunk.len() as u64);
                }
                // Tag half of them as done (same-tag rename = same shard).
                for i in 0..PER_WRITER / 2 {
                    c.rename(
                        &format!("rdf:new:{{t{t}}}:f{i}"),
                        &format!("rdf:done:{{t{t}}}:f{i}"),
                    )
                    .unwrap();
                }
            });
        }
        // A scanner races the writers; every observation must be
        // internally consistent (no phantom keys, counts never exceed
        // the final totals).
        s.spawn(move || {
            let mut c = StoreClient::connect(addr).expect("connect");
            for _ in 0..20 {
                let n = c.keys("rdf:*").unwrap().len();
                assert!(n <= WRITERS * PER_WRITER, "phantom keys: {n}");
            }
        });
    });

    let mut c = StoreClient::connect(addr).expect("connect");
    assert_eq!(c.keys("rdf:*").unwrap().len(), WRITERS * PER_WRITER);
    for t in 0..WRITERS {
        assert_eq!(
            c.keys(&format!("rdf:new:{{t{t}}}*")).unwrap().len(),
            PER_WRITER / 2
        );
        assert_eq!(
            c.keys(&format!("rdf:done:{{t{t}}}*")).unwrap().len(),
            PER_WRITER / 2
        );
    }
    let stats = c.stats().unwrap();
    assert_eq!(stats.keys as usize, WRITERS * PER_WRITER);
    server.stop();
}

#[test]
fn concurrent_deleters_count_each_key_once() {
    let engine = Arc::new(StoreEngine::in_memory(8));
    let server = StoreServer::start(engine, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let mut setup = StoreClient::connect(addr).unwrap();
    let keys: Vec<String> = (0..1000).map(|i| format!("del:{{k{i}}}")).collect();
    let pairs: Vec<(String, Bytes)> = keys
        .iter()
        .map(|k| (k.clone(), Bytes::from_static(b"x")))
        .collect();
    setup.put_many(pairs).unwrap();

    // Four clients race to delete the same 1000 keys; exactly 1000
    // deletions may be acknowledged as "existed" across all of them.
    let total: u64 = thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let keys = keys.clone();
                s.spawn(move || {
                    let mut c = StoreClient::connect(addr).expect("connect");
                    let mut mine = 0u64;
                    for chunk in keys.chunks(100) {
                        mine += c.del_many(chunk.to_vec()).unwrap();
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(total, 1000, "each key deleted exactly once across racers");
    let mut c = StoreClient::connect(addr).unwrap();
    assert!(c.keys("del:*").unwrap().is_empty());
    server.stop();
}
