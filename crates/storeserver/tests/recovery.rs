//! WAL crash recovery, up to and including SIGKILLing a real server
//! process mid-write and auditing ledger conservation.
//!
//! The contract under test: **an acknowledged write is never lost.**
//! The server syncs a batch's WAL records before releasing the batch's
//! responses, so any response the client has seen refers to a record
//! that replay will find. Writes in flight at the kill may or may not
//! survive — both outcomes are legal — but acked ones must.

use bytes::Bytes;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use storeserver::proto::{read_frame, Request, Response};
use storeserver::{StoreClient, StoreEngine, StoreServer, SyncMode};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn server_restart_recovers_acked_state() {
    let dir = tmpdir("restart");
    {
        let engine = Arc::new(StoreEngine::open(&dir, 8, SyncMode::Virtual).unwrap());
        let server = StoreServer::start(engine, "127.0.0.1:0").unwrap();
        let mut c = StoreClient::connect(server.addr()).unwrap();
        let pairs: Vec<(String, Bytes)> = (0..500)
            .map(|i| {
                (
                    format!("ns:{{k{i}}}"),
                    Bytes::from(vec![(i % 251) as u8; 40]),
                )
            })
            .collect();
        c.put_many(pairs).unwrap();
        for i in 0..100 {
            c.rename(&format!("ns:{{k{i}}}"), &format!("done:{{k{i}}}"))
                .unwrap();
        }
        c.del_many((0..50).map(|i| format!("done:{{k{i}}}")).collect())
            .unwrap();
        server.stop();
    }
    let engine = Arc::new(StoreEngine::open(&dir, 8, SyncMode::Virtual).unwrap());
    assert_eq!(engine.recovery().records, 650);
    let mut c = StoreClient::loopback(Arc::clone(&engine));
    assert_eq!(c.keys("ns:*").unwrap().len(), 400);
    assert_eq!(c.keys("done:*").unwrap().len(), 50);
    assert_eq!(
        c.get("ns:{k400}").unwrap().unwrap(),
        Bytes::from(vec![(400 % 251) as u8; 40])
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

struct Daemon {
    child: Child,
    addr: std::net::SocketAddr,
}

fn spawn_daemon(dir: &std::path::Path, shards: usize, sync: &str) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_storeserverd"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            dir.to_str().unwrap(),
            "--shards",
            &shards.to_string(),
            "--sync",
            sync,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn storeserverd");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read discovery line");
    let addr = line
        .trim()
        .strip_prefix("listening ")
        .expect("discovery line")
        .parse()
        .expect("addr parses");
    Daemon { child, addr }
}

/// The acceptance test: a real `storeserverd` process is SIGKILLed while
/// a pipelined write stream is in flight. The client records exactly
/// which writes were acknowledged (responses it actually read back).
/// After recovery, every acknowledged write must be present with the
/// right value — zero lost acknowledged writes.
#[test]
fn sigkill_mid_write_loses_no_acknowledged_write() {
    let dir = tmpdir("sigkill");
    let shards = 8;
    let daemon = spawn_daemon(&dir, shards, "real");

    let stream = std::net::TcpStream::connect(daemon.addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    let value_of = |i: u64| Bytes::from(vec![(i % 251) as u8; 128]);
    let mut acked: Vec<u64> = Vec::new();
    let mut seq = 0u64;
    let mut killed = false;
    let mut child = daemon.child;

    // Batches of pipelined puts. After batch 20, kill the server with a
    // fresh batch already on the wire, so writes are genuinely in
    // flight — some will be acked, some not, none half-acked.
    'outer: for batch in 0..200u64 {
        let first = seq;
        let mut wire = Vec::new();
        for i in 0..16u64 {
            let id = batch * 16 + i;
            let req = Request::Put {
                key: format!("w:{{k{id}}}"),
                value: value_of(id),
            };
            wire.extend_from_slice(&req.encode_frame(seq));
            seq += 1;
        }
        if writer
            .write_all(&wire)
            .and_then(|()| writer.flush())
            .is_err()
        {
            break 'outer; // server already gone
        }
        if batch == 20 {
            // The batch is on the wire but unread: kill mid-write.
            child.kill().expect("SIGKILL the daemon");
            killed = true;
        }
        for i in 0..16u64 {
            match read_frame(&mut reader) {
                Ok(Some((got_seq, st, body))) => {
                    assert_eq!(got_seq, first + i);
                    match Response::decode(st, &body).unwrap() {
                        Response::Bool(_) => acked.push(batch * 16 + i),
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                _ => break 'outer, // connection died: everything later is unacked
            }
        }
    }
    assert!(killed, "the kill point must have been reached");
    child.wait().expect("reap the killed daemon");
    assert!(
        acked.len() >= 16 * 20,
        "expected at least the pre-kill batches acked, got {}",
        acked.len()
    );

    // Recover the WAL directory in-process and audit: every acked write
    // is present with the right bytes.
    let engine = StoreEngine::open(&dir, shards, SyncMode::Virtual).expect("recover");
    let mut lost = 0;
    for &id in &acked {
        let key = format!("w:{{k{id}}}");
        match engine.handle(Request::Get { key: key.clone() }) {
            Response::Value(Some(v)) => assert_eq!(v, value_of(id), "{key} has wrong bytes"),
            Response::Value(None) => lost += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(
        lost,
        0,
        "{lost} acknowledged writes lost out of {}",
        acked.len()
    );
    eprintln!(
        "sigkill audit: {} acked writes, 0 lost, {} torn tail bytes discarded",
        acked.len(),
        engine.recovery().torn_bytes
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Restarting the daemon over a dirty directory replays the log: the
/// same contract, exercised through the real process boundary twice.
#[test]
fn daemon_restart_serves_recovered_state() {
    let dir = tmpdir("daemon-restart");
    {
        let daemon = spawn_daemon(&dir, 4, "real");
        let mut c = StoreClient::connect(daemon.addr).unwrap();
        let pairs: Vec<(String, Bytes)> = (0..100)
            .map(|i| (format!("ns:{{k{i}}}"), Bytes::from(vec![i as u8; 16])))
            .collect();
        c.put_many(pairs).unwrap();
        c.sync().unwrap();
        let mut child = daemon.child;
        child.kill().unwrap();
        child.wait().unwrap();
    }
    let daemon = spawn_daemon(&dir, 4, "real");
    let mut c = StoreClient::connect(daemon.addr).unwrap();
    assert_eq!(c.keys("ns:*").unwrap().len(), 100);
    assert_eq!(
        c.get("ns:{k7}").unwrap().unwrap(),
        Bytes::from(vec![7u8; 16])
    );
    let stats = c.stats().unwrap();
    assert_eq!(stats.wal_records, 100);
    let mut child = daemon.child;
    child.kill().unwrap();
    child.wait().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
